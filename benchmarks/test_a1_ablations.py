"""A1 — ablations of load-bearing design choices (DESIGN.md Sec. 5).

Not a paper figure: these sweeps justify the reproduction's own design
parameters by showing each one's failure mode at the extremes.

* **Guardian margin** — too small and *correct* (drifting) components
  get their frames blocked; the margin must cover clock-sync precision.
  Containment of off-slot babbling holds at every margin.
* **Gateway restart delay** — the paper names "restart of the gateway
  service" as error handling but fixes no delay.  Too short and a still-
  babbling sender trips the monitor again instantly (restart churn);
  longer delays trade availability (blocked healthy traffic after the
  fault clears) against churn.
"""

from __future__ import annotations

from repro.analysis import Series, Table
from repro.core_network import ClusterBuilder, NodeConfig
from repro.faults import BabblingIdiot, FaultInjector
from repro.sim import MS, SEC, Simulator


# ----------------------------------------------------------------------
# (a) guardian margin sweep
# ----------------------------------------------------------------------
def guardian_point(margin: int) -> dict:
    sim = Simulator(seed=21)
    builder = ClusterBuilder(sim, guardian_margin=margin)
    drifts = (150.0, -150.0, 80.0, -60.0)
    for i, d in enumerate(drifts):
        builder.add_node(NodeConfig(f"n{i}", slot_capacity_bytes=32,
                                    drift_ppm=d, reservations={"v": 20}))
    cluster = builder.build()
    cluster.start()
    babble = BabblingIdiot(name="babble", controller=cluster.controller("n0"),
                           burst_period=37_000)
    FaultInjector(sim).inject_at(babble, at=5 * MS)
    sim.run_until(200 * cluster.schedule.cycle_length)
    # Legit frames blocked: blocked transmissions of non-babbling nodes.
    legit_blocked = sum(cnt for sender, cnt in
                        cluster.guardian.blocked_by_sender.items()
                        if sender != "n0")
    foreign_corrupt = [
        r for r in sim.trace.records("frame.rx")
        if r.get("dropped") == "corrupt" and r["sender"] != "n0"
    ]
    return {
        "margin": margin,
        "legit_blocked": legit_blocked,
        "babbles_blocked": cluster.guardian.blocked_by_sender.get("n0", 0),
        "foreign_corrupted": len(foreign_corrupt),
    }


# ----------------------------------------------------------------------
# (b) gateway restart-delay sweep
# ----------------------------------------------------------------------
def _restart_point(restart_delay: int) -> dict:
    """Source babbles for 1 s, then behaves; measure restart churn and
    time-to-recovery of forwarding."""
    from repro.messaging import Namespace
    from repro.spec import ControlParadigm, Direction, ETTiming, LinkSpec, PortSpec
    from repro.gateway import GatewaySide, VirtualGateway
    from repro.vn import ETVirtualNetwork
    from test_e8_error_containment import (  # type: ignore
        event_type,
        monitor_automaton,
    )

    sim = Simulator(seed=22)
    builder = ClusterBuilder(sim)
    for node in ("src", "gwhost", "dst"):
        builder.add_node(NodeConfig(node, slot_capacity_bytes=64,
                                    reservations={"srcdas": 30, "dstdas": 30}))
    cluster = builder.build()
    cluster.start()
    ns_a = Namespace("srcdas")
    src = ns_a.register(event_type("msgSrc", 1))
    vn_a = ETVirtualNetwork(sim, "srcdas", cluster, ns_a, pending_limit=16384)
    vn_a.attach_gateway_producer("msgSrc", "src")
    vn_a.start()
    ns_b = Namespace("dstdas")
    vn_b = ETVirtualNetwork(sim, "dstdas", cluster, ns_b, pending_limit=16384)
    dst = ns_b.register(event_type("msgDst", 2))
    arrivals: list[int] = []
    vn_b.tap("msgDst", "dst", lambda m, i, t: arrivals.append(t))

    def emit_loop():
        in_fault = sim.now < 1 * SEC
        period = MS if in_fault else 10 * MS
        vn_a.send("msgSrc", src.instance(Change={"delta": 1, "at": 0}))
        sim.after(period, emit_loop)

    sim.at(10 * MS, emit_loop)

    link_a = LinkSpec(
        das="srcdas",
        ports=(PortSpec(message_type=event_type("msgSrc", 1),
                        direction=Direction.INPUT,
                        semantics=src.elements[1].semantics,
                        control=ControlParadigm.EVENT_TRIGGERED,
                        et=ETTiming(min_interarrival=4 * MS,
                                    max_interarrival=1 * SEC),
                        queue_depth=32),),
        automata=(monitor_automaton(),),
    )
    link_b = LinkSpec(das="dstdas", ports=(
        PortSpec(message_type=dst, direction=Direction.OUTPUT,
                 semantics=dst.elements[1].semantics,
                 control=ControlParadigm.EVENT_TRIGGERED, queue_depth=32),))
    gw = VirtualGateway(sim, "gw", "gwhost",
                        side_a=GatewaySide(vn=vn_a, link=link_a),
                        side_b=GatewaySide(vn=vn_b, link=link_b),
                        restart_delay=restart_delay)
    gw.add_rule("msgSrc", "msgDst", direction="a_to_b")
    gw.start()
    vn_b.start()
    sim.run_until(4 * SEC)

    post_fault = [t for t in arrivals if t >= 1 * SEC]
    recovery = (post_fault[0] - 1 * SEC) if post_fault else None
    return {
        "restart_delay": restart_delay,
        "restarts": gw.restarts,
        "recovery_ms": round(recovery / MS, 1) if recovery is not None else None,
        "post_fault_arrivals": len(post_fault),
    }


def run_experiment() -> dict:
    return {
        "guardian": [guardian_point(m)
                     for m in (0, 1_000, 5_000, 20_000)],
        "restart": [_restart_point(d)
                    for d in (10 * MS, 50 * MS, 200 * MS, 1 * SEC)],
    }


def test_a1_ablations(run_once):
    r = run_once(run_experiment)

    t1 = Table("A1a: guardian margin sweep (drifting cluster + babbler)",
               ["margin (us)", "legit frames blocked", "babbles blocked",
                "foreign frames corrupted"])
    for p in r["guardian"]:
        t1.add_row(p["margin"] / 1000, p["legit_blocked"],
                   p["babbles_blocked"], p["foreign_corrupted"])
    t1.print()

    t2 = Table("A1b: gateway restart-delay sweep (1 s babble, then healthy)",
               ["restart delay (ms)", "service restarts",
                "recovery after fault (ms)", "post-fault deliveries"])
    s2 = Series("A1b (figure): churn vs availability", "restart delay (ms)",
                "restarts / recovery ms")
    for p in r["restart"]:
        t2.add_row(p["restart_delay"] / MS, p["restarts"], p["recovery_ms"],
                   p["post_fault_arrivals"])
        s2.add("restarts", p["restart_delay"] / MS, p["restarts"])
        s2.add("recovery-ms", p["restart_delay"] / MS, p["recovery_ms"])
    t2.print()
    s2.print()

    # Guardian: both extremes fail — zero margin blocks correct
    # (drifting) nodes' frames; a margin wider than the inter-slot gap
    # admits babbles that overrun into foreign slots.  The safe band
    # (1..5 us here: above sync precision, below the 10 us gap) blocks
    # nothing legitimate and contains everything.
    assert r["guardian"][0]["legit_blocked"] > 0
    assert all(p["legit_blocked"] == 0 for p in r["guardian"][1:3])
    assert all(p["foreign_corrupted"] == 0 for p in r["guardian"][:3])
    assert r["guardian"][3]["foreign_corrupted"] > 0  # margin > gap: broken
    assert all(p["babbles_blocked"] > 0 for p in r["guardian"])

    # Restart delay: churn decreases monotonically with the delay, and
    # every setting eventually recovers once the fault clears.
    restarts = [p["restarts"] for p in r["restart"]]
    assert all(a >= b for a, b in zip(restarts, restarts[1:]))
    assert restarts[0] > restarts[-1]
    for p in r["restart"]:
        assert p["recovery_ms"] is not None
        assert p["post_fault_arrivals"] > 100
