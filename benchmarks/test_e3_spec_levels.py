"""E3 — Fig. 2's three specification levels, validated and enforced.

Paper claim (Sec. II-E): the operational specification of a DAS occurs
at three levels — port (local constraints), link (multi-port
constraints of one job), and virtual network (multi-job constraints,
e.g. the effect of bandwidth multiplexing on transmission jitter).

The regenerated figure: one row per level with a constraint that the
level *alone* can express, a conforming measurement, and a violation
detected at exactly that level.
"""

from __future__ import annotations

from repro.analysis import Table, jitter
from repro.core_network import ClusterBuilder, NodeConfig
from repro.messaging import (
    ElementDef,
    FieldDef,
    IntType,
    MessageType,
    Namespace,
    Semantics,
    UIntType,
)
from repro.sim import MS, Simulator
from repro.spec import (
    ETTiming,
    LinkSpec,
    MaxLatencyConstraint,
    PortSpec,
    TransmissionBound,
    TTTiming,
)
from repro.spec.port_spec import Direction


def msg(name: str, nid: int) -> MessageType:
    return MessageType(name, elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=nid),)),
        ElementDef("Data", convertible=True, semantics=Semantics.EVENT,
                   fields=(FieldDef("v", UIntType(16)),)),
    ))


def run_experiment() -> dict:
    r: dict = {}

    # ---------------- level 1: port specification -------------------
    tt = TTTiming(period=10 * MS, phase=2 * MS, jitter=100_000)
    r["port_tt_conform"] = tt.conforms(32 * MS + 50_000)
    r["port_tt_violation"] = not tt.conforms(35 * MS)
    et = ETTiming(min_interarrival=2 * MS, max_interarrival=50 * MS,
                  service_time=6 * MS)
    r["port_et_conform"] = et.conforms(5 * MS)
    r["port_et_violation"] = not et.conforms(1 * MS)
    r["port_et_queue_depth"] = et.suggested_queue_depth()

    # ---------------- level 2: link specification -------------------
    request, reply = msg("msgRequest", 1), msg("msgReply", 2)
    link = LinkSpec(
        das="diagnosis",
        ports=(
            PortSpec(message_type=request, direction=Direction.INPUT,
                     semantics=Semantics.EVENT, queue_depth=4),
            PortSpec(message_type=reply, direction=Direction.OUTPUT,
                     semantics=Semantics.EVENT, queue_depth=4),
        ),
        constraints=(MaxLatencyConstraint(
            input_port="msgRequest", output_port="msgReply",
            max_latency=5 * MS),),
    )
    c = link.constraints[0]
    r["link_conform"] = c.check(request_time=0, reply_time=4 * MS)
    r["link_violation"] = not c.check(request_time=0, reply_time=6 * MS)
    # The constraint is expressible ONLY at link level: neither port
    # alone mentions the other.
    r["link_spans_ports"] = c.ports() == ("msgRequest", "msgReply")

    # ---------------- level 3: virtual network spec -----------------
    # Two jobs of one DAS multiplex the same slot reservation; the
    # transmission jitter of the low-priority message depends on the
    # OTHER job's activity — measurable only across jobs.
    def measure(other_job_active: bool) -> int:
        sim = Simulator(seed=9)
        builder = ClusterBuilder(sim)
        builder.add_node(NodeConfig("a", slot_capacity_bytes=16,
                                    reservations={"das": 8}))
        builder.add_node(NodeConfig("b", slot_capacity_bytes=16,
                                    reservations={"das": 8}))
        cluster = builder.build()
        cluster.start()
        cyc = cluster.schedule.cycle_length
        from repro.vn import ETVirtualNetwork

        ns = Namespace("das")
        lo, hi = msg("msgLow", 3), msg("msgHigh", 4)
        ns.register(lo)
        ns.register(hi)
        vn = ETVirtualNetwork(sim, "das", cluster, ns)
        vn.attach_gateway_producer("msgLow", "a", priority=200)
        vn.attach_gateway_producer("msgHigh", "a", priority=10)
        arrivals: list[int] = []
        vn.tap("msgLow", "b", lambda m, i, t: arrivals.append(t - i.send_time))
        vn.start()
        # Low-priority job: cycle-aligned sends (zero jitter on its own).
        # The 8-byte reservation fits exactly one chunk per slot, so a
        # same-cycle high-priority send from the OTHER job defers the
        # low message by one full cycle — jitter only multiplexing can
        # produce.  73 is odd, so the collision parity alternates.
        sim.every(73 * cyc, lambda: vn.send(
            "msgLow", lo.instance(Data={"v": 1})), start=5 * cyc)
        if other_job_active:
            sim.every(2 * cyc, lambda: vn.send(
                "msgHigh", hi.instance(Data={"v": 2})), start=cyc)
        sim.run_until(100 * 73 * cyc)
        return jitter(arrivals)

    r["vn_jitter_alone"] = measure(other_job_active=False)
    r["vn_jitter_multiplexed"] = measure(other_job_active=True)
    bound = TransmissionBound(message="msgLow", max_duration=60 * MS,
                              max_jitter=r["vn_jitter_alone"] + 1000)
    r["vn_bound_violated_under_multiplexing"] = (
        r["vn_jitter_multiplexed"] > bound.max_jitter
    )
    return r


def test_e3_spec_levels(run_once):
    r = run_once(run_experiment)

    table = Table("E3: three-level operational specification (Fig. 2)",
                  ["level", "constraint", "conforming case", "violation detected"])
    table.add_row("port (local)", "TT instants +/- jitter",
                  r["port_tt_conform"], r["port_tt_violation"])
    table.add_row("port (local)", "ET interarrival in [tmin, tmax]",
                  r["port_et_conform"], r["port_et_violation"])
    table.add_row("port (local)",
                  f"queue sizing from service/interarrival = {r['port_et_queue_depth']}",
                  True, "-")
    table.add_row("link (job)", "request->reply latency <= 5 ms",
                  r["link_conform"], r["link_violation"])
    table.add_row("VN (multi-job)",
                  f"tx jitter alone={r['vn_jitter_alone']}ns vs "
                  f"multiplexed={r['vn_jitter_multiplexed']}ns",
                  True, r["vn_bound_violated_under_multiplexing"])
    table.print()

    assert r["port_tt_conform"] and r["port_tt_violation"]
    assert r["port_et_conform"] and r["port_et_violation"]
    assert r["port_et_queue_depth"] >= 3
    assert r["link_conform"] and r["link_violation"] and r["link_spans_ports"]
    # The level-3 property: multiplexing by ANOTHER job changes this
    # job's transmission jitter — invisible at port/link level.
    assert r["vn_jitter_multiplexed"] > r["vn_jitter_alone"]
