"""E10 — federated vs integrated resource inventories (Sec. I).

Paper claims: federated systems duplicate resources per DAS; integrated
systems promise "massive cost savings through the reduction of resource
duplication ... reliability improvements with respect to wiring and
connectors"; and virtual gateways unlock the *remaining* savings
(sensor sharing) without giving up encapsulation.

Regenerated table: the four architecture inventories for the paper's
own automotive suite (ABS, X-by-wire, navigation, Pre-Safe, comfort,
dashboard), with a connector-count reliability proxy.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.systems import (
    ArchitectureModel,
    DASRequirement,
    SystemRequirements,
)


def automotive_requirements() -> SystemRequirements:
    """The Sec. V-substitute car, as demand on hardware."""
    return SystemRequirements(
        dass=(
            DASRequirement("abs", jobs=4,
                           sensed_quantities=("wheel-speed", "yaw-rate",
                                              "brake-pressure")),
            DASRequirement("xbywire", jobs=4,
                           sensed_quantities=("pedal-position",),
                           importable=("wheel-speed",)),
            DASRequirement("navigation", jobs=3,
                           sensed_quantities=("gps",),
                           importable=("wheel-speed", "yaw-rate")),
            DASRequirement("presafe", jobs=2,
                           importable=("yaw-rate", "brake-pressure")),
            DASRequirement("comfort", jobs=4,
                           sensed_quantities=("roof-position",)),
            DASRequirement("dashboard", jobs=2,
                           importable=("roof-position", "wheel-speed")),
        ),
        jobs_per_ecu=4,
        sensors_per_quantity={"wheel-speed": 4, "gps": 1, "yaw-rate": 1,
                              "brake-pressure": 1, "pedal-position": 2,
                              "roof-position": 1},
    )


def run_experiment() -> list:
    model = ArchitectureModel(automotive_requirements())
    return model.all_inventories()


def test_e10_architectures(run_once):
    inventories = run_once(run_experiment)

    table = Table("E10: resource inventories of the four architectures",
                  ["architecture", "ECUs", "networks", "wires", "connectors",
                   "sensors", "gateways", "connector FIT proxy"])
    by_name = {}
    for inv in inventories:
        by_name[inv.architecture] = inv
        table.add_row(*inv.as_row(), round(inv.connector_failure_proxy(), 0))
    table.print()

    fed = by_name["federated"]
    strict = by_name["integrated (strict separation)"]
    gw = by_name["integrated + virtual gateways"]
    naive = by_name["integrated + naive bridges"]

    # Shape per the paper's argument:
    # 1. Integration alone slashes ECUs and networks.
    assert strict.ecus < fed.ecus
    assert strict.networks == 1 < fed.networks
    # 2. But without coupling, sensors stay duplicated.
    assert strict.sensors == fed.sensors
    # 3. Gateways eliminate the duplicated sensors...
    assert gw.sensors < strict.sensors
    # 4. ...without adding boxes (gateways are architectural services).
    assert gw.ecus == strict.ecus
    # 5. Wiring/connector reliability proxy improves monotonically.
    assert gw.connectors < strict.connectors < fed.connectors
    # 6. Naive bridges get the same part counts — the difference is E8's
    #    error propagation, not the shopping list.
    assert naive.sensors == gw.sensors and naive.ecus == gw.ecus

    print("\nThe integrated+gateways column keeps federated-style coupling")
    print("control (E8) at integrated-architecture part counts — the")
    print("combination the paper's introduction promises.")
