"""P1 — substrate performance (simulator throughput, not paper figures).

These are conventional pytest-benchmark microbenchmarks (multiple
rounds) so regressions in the hot paths — the event kernel, the bit
codec, the TDMA pipeline, the gateway pipeline — show up as wall-clock
changes.  They complement the E-experiments, which assert model
*behaviour* rather than speed.
"""

from __future__ import annotations

from repro.core_network import ClusterBuilder, FrameChunk, NodeConfig
from repro.messaging import Namespace
from repro.sim import MS, Simulator
from repro.spec import TTTiming
from repro.vn import TTVirtualNetwork


def test_perf_kernel_event_throughput(benchmark):
    """Schedule+execute 50k self-rescheduling events."""

    def run() -> int:
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 50_000:
                sim.after(10, tick)

        sim.at(0, tick)
        sim.run()
        return count["n"]

    assert benchmark(run) == 50_000


def test_perf_codec_roundtrip(benchmark):
    """Encode+decode 2000 instances of the Fig. 6 message."""
    from repro.spec import FIG6_CANONICAL, parse_link_spec

    mt = parse_link_spec(FIG6_CANONICAL).message_types()["msgSlidingRoof"]
    inst = mt.instance(MovementEvent={"ValueChange": 5, "EventTime": 123})

    def run() -> int:
        n = 0
        for _ in range(2000):
            out = mt.decode(mt.encode(inst))
            n += out.get("MovementEvent", "ValueChange")
        return n

    assert benchmark(run) == 10_000


def test_perf_tdma_cluster(benchmark):
    """One simulated second of a 4-node TT cluster with traffic."""

    def run() -> int:
        sim = Simulator()
        builder = ClusterBuilder(sim)
        for i in range(4):
            builder.add_node(NodeConfig(f"n{i}", slot_capacity_bytes=32,
                                        reservations={"v": 20}))
        cluster = builder.build()
        cluster.start()
        cluster.controller("n0").register_chunk_source(
            "v", lambda slot, budget: [FrameChunk(vn="v", message="m",
                                                  data=b"\x01\x02")])
        got = {"n": 0}
        cluster.controller("n1").register_receiver(
            "v", lambda c, t: got.__setitem__("n", got["n"] + 1))
        sim.run_until(1_000 * MS)
        return got["n"]

    assert benchmark(run) > 1_000


def test_perf_tt_vn_pipeline(benchmark):
    """One simulated second of a TT VN delivering through the stack."""

    def run() -> int:
        sim = Simulator()
        builder = ClusterBuilder(sim)
        builder.add_node(NodeConfig("a", slot_capacity_bytes=48,
                                    reservations={"das": 30}))
        builder.add_node(NodeConfig("b", slot_capacity_bytes=48,
                                    reservations={"das": 30}))
        cluster = builder.build()
        cluster.start()
        cyc = cluster.schedule.cycle_length
        from repro.messaging import ElementDef, FieldDef, IntType, MessageType, Semantics

        mt = MessageType("m", elements=(
            ElementDef("D", convertible=True, semantics=Semantics.STATE,
                       fields=(FieldDef("v", IntType(32)),)),
        ))
        ns = Namespace("das")
        ns.register(mt)
        vn = TTVirtualNetwork(sim, "das", cluster, ns)
        k = {"n": 0}
        vn.attach_gateway_producer(
            "m", "a", provider=lambda: mt.instance(D={"v": k["n"]}))
        vn.set_timing("m", TTTiming(period=cyc))
        vn.tap("m", "b", lambda m, i, t: k.__setitem__("n", k["n"] + 1))
        vn.start()
        sim.run_until(1_000 * MS)
        return k["n"]

    assert benchmark(run) > 1_000
