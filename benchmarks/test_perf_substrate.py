"""P1 — substrate performance (simulator throughput, not paper figures).

These are conventional pytest-benchmark microbenchmarks (multiple
rounds) so regressions in the hot paths — the event kernel, the bit
codec, the TDMA pipeline, the gateway pipeline — show up as wall-clock
changes.  They complement the E-experiments, which assert model
*behaviour* rather than speed.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from dataclasses import field as dc_field
from datetime import datetime, timezone
from pathlib import Path

from repro.core_network import ClusterBuilder, FrameChunk, NodeConfig
from repro.messaging import Namespace, Semantics
from repro.runner import provenance, update_bench_json
from repro.sim import MS, CounterSink, Simulator, TraceLog, make_trace
from repro.spec import (
    ControlParadigm,
    Direction,
    InteractionType,
    LinkSpec,
    PortSpec,
    TTTiming,
)
from repro.vn import TTVirtualNetwork


def test_perf_kernel_event_throughput(benchmark):
    """Schedule+execute 50k self-rescheduling events."""

    def run() -> int:
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] < 50_000:
                sim.after(10, tick)

        sim.at(0, tick)
        sim.run()
        return count["n"]

    assert benchmark(run) == 50_000


@dataclass(order=True, slots=True)
class _SeedEvent:
    """The seed's heap entry, field-for-field: a dataclass compared via
    its generated ``__lt__``, which builds two ``(time, priority, seq)``
    tuples per heap-sift comparison."""

    time: int
    priority: int
    seq: int
    callback: object = dc_field(compare=False)
    cancelled: bool = dc_field(default=False, compare=False)
    label: str = dc_field(default="", compare=False)
    _queue: object = dc_field(default=None, compare=False, repr=False)


class _SeedKernel:
    """Faithful replica of the seed's hot path, for comparison.

    Events sit directly in the heap (Python-level ``__lt__`` on every
    sift step), ``push`` constructs the full seven-field event with the
    queue backref, and ``run_until`` runs the seed's peek / bail /
    ``step()`` sequence — ``step()`` re-peeked, so every event cost two
    ``peek_time`` calls plus a ``pop``.
    """

    def __init__(self) -> None:
        self._heap: list[_SeedEvent] = []
        self._seq = 0
        self.now = 0
        self.events_executed = 0

    def _push(self, t: int, callback, priority: int, label: str) -> _SeedEvent:
        if t < 0:
            raise ValueError(t)
        ev = _SeedEvent(time=t, priority=priority, seq=self._seq,
                        callback=callback, label=label, _queue=self)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def at(self, t: int, callback, priority: int = 30, label: str = "") -> _SeedEvent:
        if t < self.now:
            raise ValueError(t)
        return self._push(t, callback, priority, label)

    def after(self, delay: int, callback, priority: int = 30,
              label: str = "") -> _SeedEvent:
        if delay < 0:
            raise ValueError(delay)
        return self._push(self.now + delay, callback, priority, label)

    def _peek_time(self) -> int | None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    def _step(self) -> None:
        self._peek_time()  # the seed's step() re-peeked before popping
        ev = heapq.heappop(self._heap)
        ev._queue = None
        self.now = ev.time
        self.events_executed += 1
        ev.callback()

    def run_until(self, t: int) -> None:
        while True:
            nxt = self._peek_time()
            if nxt is None or nxt > t:
                break
            self._step()
        if self.now < t:
            self.now = t


def test_perf_kernel_batched_drain(run_once):
    """The batched tuple-heap ``run_until`` vs the seed's peek/pop loop.

    The baseline (:class:`_SeedKernel`) replicates what the kernel did
    before the optimization: dataclass events compared by a generated
    ``__lt__`` inside the heap, and a peek+peek+pop round-trip per
    event.  The optimized side is the real :class:`Simulator`, whose
    queue stores ``(time, priority, seq, event)`` int-tuples (C-level
    heap compares) and drains ready events in batches.  The workload is
    a burst shape — 128 aligned self-rescheduling chains, so every
    instant offers a deep batch — which is where the E-experiment
    models spend their time (TDMA rounds dispatch many events per slot
    boundary).  Batched must be at least 1.2x faster; numbers land in
    the ``kernel`` section of ``BENCH_substrate.json``.
    """
    CHAINS = 128
    PERIOD = 10_000  # 10 us
    HORIZON = 4 * MS  # -> ~400 bursts of 128 events

    def build(kernel) -> dict:
        count = {"n": 0}

        def tick():
            count["n"] += 1
            kernel.after(PERIOD, tick)

        for _ in range(CHAINS):
            kernel.at(0, tick)
        return count

    REPS = 5

    def best_of(make_kernel) -> tuple[float, int]:
        best = float("inf")
        events = 0
        for _ in range(REPS):
            kernel = make_kernel()
            count = build(kernel)
            t0 = time.perf_counter()
            kernel.run_until(HORIZON)
            best = min(best, time.perf_counter() - t0)
            events = count["n"]
        return best, events

    def run() -> dict:
        batched_s, batched_n = best_of(Simulator)
        seed_s, seed_n = best_of(_SeedKernel)
        assert batched_n == seed_n  # identical workload either way
        return {
            "workload": f"{CHAINS} aligned chains, {batched_n} events",
            "events": batched_n,
            "batched_s": round(batched_s, 6),
            "seed_loop_s": round(seed_s, 6),
            "batched_speedup": round(seed_s / batched_s, 3),
            "provenance": provenance(
                timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
                iterations=REPS),
        }

    result = run_once(run)
    out = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    update_bench_json(out, "kernel", result)
    assert result["batched_speedup"] >= 1.2, result


def test_perf_codec_roundtrip(benchmark):
    """Encode+decode 2000 instances of the Fig. 6 message."""
    from repro.spec import FIG6_CANONICAL, parse_link_spec

    mt = parse_link_spec(FIG6_CANONICAL).message_types()["msgSlidingRoof"]
    inst = mt.instance(MovementEvent={"ValueChange": 5, "EventTime": 123})

    def run() -> int:
        n = 0
        for _ in range(2000):
            out = mt.decode(mt.encode(inst))
            n += out.get("MovementEvent", "ValueChange")
        return n

    assert benchmark(run) == 10_000


def test_perf_tdma_cluster(benchmark):
    """One simulated second of a 4-node TT cluster with traffic."""

    def run() -> int:
        sim = Simulator()
        builder = ClusterBuilder(sim)
        for i in range(4):
            builder.add_node(NodeConfig(f"n{i}", slot_capacity_bytes=32,
                                        reservations={"v": 20}))
        cluster = builder.build()
        cluster.start()
        cluster.controller("n0").register_chunk_source(
            "v", lambda slot, budget: [FrameChunk(vn="v", message="m",
                                                  data=b"\x01\x02")])
        got = {"n": 0}
        cluster.controller("n1").register_receiver(
            "v", lambda c, t: got.__setitem__("n", got["n"] + 1))
        sim.run_until(1_000 * MS)
        return got["n"]

    assert benchmark(run) > 1_000


def test_perf_tt_vn_pipeline(benchmark):
    """One simulated second of a TT VN delivering through the stack."""

    def run() -> int:
        sim = Simulator()
        builder = ClusterBuilder(sim)
        builder.add_node(NodeConfig("a", slot_capacity_bytes=48,
                                    reservations={"das": 30}))
        builder.add_node(NodeConfig("b", slot_capacity_bytes=48,
                                    reservations={"das": 30}))
        cluster = builder.build()
        cluster.start()
        cyc = cluster.schedule.cycle_length
        from repro.messaging import ElementDef, FieldDef, IntType, MessageType, Semantics

        mt = MessageType("m", elements=(
            ElementDef("D", convertible=True, semantics=Semantics.STATE,
                       fields=(FieldDef("v", IntType(32)),)),
        ))
        ns = Namespace("das")
        ns.register(mt)
        vn = TTVirtualNetwork(sim, "das", cluster, ns)
        k = {"n": 0}
        vn.attach_gateway_producer(
            "m", "a", provider=lambda: mt.instance(D={"v": k["n"]}))
        vn.set_timing("m", TTTiming(period=cyc))
        vn.tap("m", "b", lambda m, i, t: k.__setitem__("n", k["n"] + 1))
        vn.start()
        sim.run_until(1_000 * MS)
        return k["n"]

    assert benchmark(run) > 1_000


# ----------------------------------------------------------------------
# trace-mode overhead on the gateway pipeline
# ----------------------------------------------------------------------
def _build_gateway_pipeline(sim: Simulator):
    """The E5 shape (ET sensor DAS -> hidden gateway -> TT climate DAS)
    on a caller-supplied simulator, so trace modes can be compared."""
    from repro.systems import GatewayDecl, SystemBuilder
    from test_e5_gateway_pipeline import BundleSender, ViewConsumer, dst_type, src_type

    dst_period = 20 * MS
    builder = SystemBuilder(sim=sim)
    builder.add_node("src-ecu").add_node("gw-ecu").add_node("dst-ecu")
    builder.add_das("sensors", ControlParadigm.EVENT_TRIGGERED)
    builder.add_das("climate", ControlParadigm.TIME_TRIGGERED)
    builder.add_job(
        "sender", "sensors", "src-ecu",
        lambda s, n, d, p: BundleSender(s, n, d, p),
        ports=(PortSpec(message_type=src_type(), direction=Direction.OUTPUT,
                        semantics=Semantics.EVENT,
                        control=ControlParadigm.EVENT_TRIGGERED, queue_depth=32),),
    )
    builder.add_job(
        "viewer", "climate", "dst-ecu",
        lambda s, n, d, p: ViewConsumer(s, n, d, p),
        ports=(PortSpec(message_type=dst_type(), direction=Direction.INPUT,
                        semantics=Semantics.STATE,
                        control=ControlParadigm.TIME_TRIGGERED,
                        tt=TTTiming(period=dst_period),
                        interaction=InteractionType.PUSH,
                        temporal_accuracy=500 * MS),),
    )
    builder.add_gateway(GatewayDecl(
        name="gw", host="gw-ecu", das_a="sensors", das_b="climate",
        link_a=LinkSpec(das="sensors", ports=(PortSpec(
            message_type=src_type(), direction=Direction.INPUT,
            semantics=Semantics.EVENT, control=ControlParadigm.EVENT_TRIGGERED,
            queue_depth=32,
        ),)),
        link_b=LinkSpec(das="climate", ports=(PortSpec(
            message_type=dst_type(), direction=Direction.OUTPUT,
            semantics=Semantics.STATE, control=ControlParadigm.TIME_TRIGGERED,
            tt=TTTiming(period=dst_period), temporal_accuracy=500 * MS,
        ),)),
        rules=[("msgSensorBundle", "msgClimateView", "a_to_b", None)],
    ))
    system = builder.build()
    system.start()
    system.job("sender").vn = system.vn("sensors")
    return system


def test_perf_gateway_trace_modes(run_once):
    """Counters-only tracing vs full tracing on the gateway pipeline.

    Captures the instrumentation workload (every record the pipeline
    emits in 500 simulated ms), then replays it against the two trace
    front-ends: the full path builds and stores a ``TraceRecord`` per
    call, the counters path takes the ``wants()``/``tick()`` fast path.
    Counters-only must be at least 25% faster.  End-to-end run times per
    mode are also measured (informational: there the whole model runs,
    so tracing is a minor share).  Everything lands in
    ``BENCH_substrate.json``.
    """

    def capture_ops() -> list:
        sim = Simulator(seed=5)
        system = _build_gateway_pipeline(sim)
        system.run_for(500 * MS)
        return [(r.time, r.category, r.source, dict(r.detail))
                for r in sim.trace.records()]

    def replay_full(ops) -> float:
        best = float("inf")
        for _ in range(5):
            tr = TraceLog()
            t0 = time.perf_counter()
            for t, cat, srcname, detail in ops:
                tr.record(t, cat, srcname, **detail)
            best = min(best, time.perf_counter() - t0)
            assert len(tr) == len(ops)
        return best

    def replay_counters(ops) -> float:
        best = float("inf")
        for _ in range(5):
            tr = TraceLog(sinks=[CounterSink()])
            t0 = time.perf_counter()
            for t, cat, srcname, detail in ops:
                if tr.wants(cat):
                    tr.record(t, cat, srcname, **detail)
                else:
                    tr.tick(cat)
            best = min(best, time.perf_counter() - t0)
            assert sum(tr.category_counts().values()) == len(ops)
        return best

    def end_to_end(mode: str) -> float:
        sim = Simulator(seed=5, trace=make_trace(mode))
        system = _build_gateway_pipeline(sim)
        t0 = time.perf_counter()
        system.run_for(500 * MS)
        return time.perf_counter() - t0

    def run() -> dict:
        ops = capture_ops()
        full_s = replay_full(ops)
        counters_s = replay_counters(ops)
        return {
            "trace_ops": len(ops),
            "replay_full_s": round(full_s, 6),
            "replay_counters_s": round(counters_s, 6),
            "counters_speedup": round(full_s / counters_s, 3),
            "end_to_end_full_s": round(end_to_end("full"), 6),
            "end_to_end_counters_s": round(end_to_end("counters"), 6),
            "provenance": provenance(
                timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
                iterations=5),
        }

    gp = run_once(run)
    out = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    update_bench_json(out, "gateway_pipeline", gp)
    assert gp["trace_ops"] > 10_000
    # Counters-only skips record construction entirely: >= 25% faster.
    assert gp["replay_counters_s"] <= 0.75 * gp["replay_full_s"], gp


# ----------------------------------------------------------------------
# round-template steady-state fast-forward
# ----------------------------------------------------------------------
def test_perf_round_template_fast_forward(run_once):
    """Compiled-round replay vs exact event-by-event execution.

    The two pure-TT sweep scenarios run twice each: once with the
    round-template engine (the sweep default) and once with
    ``round_template: False`` (the ``--no-round-template`` escape
    hatch).  Both sides produce byte-identical trace digests — that is
    asserted here, and proven scenario-by-scenario in
    ``tests/test_round_template.py`` — so the speedup is pure
    fast-forward, not behavioural drift.  Each pure-TT scenario must be
    at least 3x faster; numbers land in the ``round_template`` section
    of ``BENCH_substrate.json``.
    """
    from repro.runner.executor import run_scenario
    from repro.runner.scenarios import build_scenario, default_registry

    SCENARIOS = ("tdma-cluster", "tt-vn-pipeline")
    REPS = 3
    registry = default_registry()

    def best_of(spec) -> tuple[float, dict]:
        best = float("inf")
        result: dict = {}
        for _ in range(REPS):
            t0 = time.perf_counter()
            result = run_scenario(spec)
            best = min(best, time.perf_counter() - t0)
        assert "error" not in result, result
        return best, result

    def run() -> dict:
        section: dict = {}
        for name in SCENARIOS:
            spec = registry[name]
            fast_s, fast = best_of(spec)
            slow_s, slow = best_of(spec.with_param("round_template", False))
            assert fast["digest"] == slow["digest"], name
            sim = build_scenario(spec)
            sim.run_until(spec.horizon_ns)
            sim.trace.close()
            stats = sim.round_template.stats()
            assert stats["rounds_replayed"] > 0, name
            section[name.replace("-", "_")] = {
                "fast_forward_s": round(fast_s, 6),
                "event_by_event_s": round(slow_s, 6),
                "speedup": round(slow_s / fast_s, 3),
                "rounds_replayed": stats["rounds_replayed"],
                "round_length_ns": stats["round_length_ns"],
                "digests_identical": True,
            }
        section["provenance"] = provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            iterations=REPS)
        return section

    rt = run_once(run)
    out = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    update_bench_json(out, "round_template", rt)
    for name in SCENARIOS:
        entry = rt[name.replace("-", "_")]
        assert entry["speedup"] >= 3.0, (name, entry)


# ----------------------------------------------------------------------
# round-template v2: quasi-periodic arming + persistent template bank
# ----------------------------------------------------------------------
def test_perf_round_template_v2(run_once, tmp_path):
    """Quasi-periodic fast path and warm starts on the car scenario.

    ``car-baseline`` mixes TT rounds with ET chunk traffic, GPS bursts
    and partition-guard windows, so strict mode disarms and v1 ran it
    entirely live.  The quasi-periodic engine replays the recurring
    round classes between those live punctuations.  Three configurations
    run, all byte-identical by digest:

    - *event_by_event* — ``round_template: False``, the honest baseline;
    - *cold* — quasi-periodic arming, empty template store (compiles
      templates while running, persists the bank);
    - *warm* — same spec again, templates loaded from the persisted
      bank, so replay starts from the first recurrence.

    The speedups here are bounded by structure, not implementation: the
    partition-guard windows fire every 2 ms against a 224.4 us round, so
    ~96% of replay spans cap at 1-4 rounds and the live-event share is
    irreducible.  The recorded numbers are the measured reality (about
    1.5x cold / 1.6x warm on the 1-CPU CI box), and the floors assert
    against regression, not against an aspirational 10x.
    """
    from repro.runner.executor import run_scenario
    from repro.runner.scenarios import default_registry

    REPS = 3
    spec = default_registry()["car-baseline"]
    root = str(tmp_path / "tpl")

    def best_of(spec, template_root=None) -> tuple[float, dict]:
        best = float("inf")
        result: dict = {}
        for _ in range(REPS):
            t0 = time.perf_counter()
            result = run_scenario(spec, template_root=template_root)
            best = min(best, time.perf_counter() - t0)
        assert "error" not in result, result
        return best, result

    def run() -> dict:
        slow_s, slow = best_of(spec.with_param("round_template", False))
        # Populate the store once (not timed), then time cold and warm.
        seed = run_scenario(spec, template_root=root)
        assert seed["template_cache"]["stored"], seed["template_cache"]
        cold_s, cold = best_of(spec)
        warm_s, warm = best_of(spec, template_root=root)
        assert cold["digest"] == slow["digest"]
        assert warm["digest"] == slow["digest"]
        assert warm["template_cache"]["hit"]
        assert warm["template_cache"]["templates_loaded"] >= 1
        assert warm["template_cache"]["load_failures"] == 0
        return {
            "scenario": spec.name,
            "event_by_event_s": round(slow_s, 6),
            "cold_s": round(cold_s, 6),
            "warm_s": round(warm_s, 6),
            "cold_speedup": round(slow_s / cold_s, 3),
            "warm_speedup": round(slow_s / warm_s, 3),
            "warm_load_speedup": round(cold_s / warm_s, 3),
            "rounds_replayed_cold": cold["round_template"]["rounds_replayed"],
            "rounds_replayed_warm": warm["round_template"]["rounds_replayed"],
            "templates_loaded_warm":
                warm["template_cache"]["templates_loaded"],
            "digests_identical": True,
            "provenance": provenance(
                timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
                iterations=REPS),
        }

    v2 = run_once(run)
    out = Path(__file__).resolve().parent.parent / "BENCH_substrate.json"
    update_bench_json(out, "round_template_v2", v2)
    # Measured: ~1.5x cold, ~1.6x warm.  Floors are regression guards;
    # the warm run re-parses the persisted bank each rep, so its edge
    # over cold is real but thin (~7%) — assert it is not a slowdown.
    assert v2["cold_speedup"] >= 1.2, v2
    assert v2["warm_speedup"] >= 1.3, v2
    assert v2["warm_load_speedup"] >= 0.95, v2
    assert v2["rounds_replayed_warm"] >= v2["rounds_replayed_cold"]
