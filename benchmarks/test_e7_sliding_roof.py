"""E7 — Fig. 6 executed: the XML link specification drives the gateway.

Paper claim (Sec. IV-B / Fig. 6): the link specification — syntactic
part, deterministic timed automaton, transfer semantics — expressed in
XML parameterizes the generic gateway service.  We parse the paper's
printed XML verbatim (structure only) and the canonical reconstruction
(runnable), then drive the msgSlidingRoof scenario end to end purely
from the parsed specification: accumulation of ValueChange into
StateValue, interarrival monitoring with tmin/tmax, and error handling.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.automata import AutomatonRuntime, SimpleEnvironment
from repro.sim import MS
from repro.spec import (
    FIG6_CANONICAL,
    FIG6_TMAX,
    FIG6_TMIN,
    FIG6_VERBATIM,
    parse_link_spec,
    serialize_link_spec,
)


def run_experiment() -> dict:
    r: dict = {}

    # -------- the printed figure parses verbatim --------------------
    verbatim = parse_link_spec(FIG6_VERBATIM,
                               parameters={"tmin": FIG6_TMIN, "tmax": FIG6_TMAX})
    mt = verbatim.message_types()["msgslidingroof"]
    r["verbatim_das"] = verbatim.das
    r["verbatim_bits"] = mt.bit_width()
    r["verbatim_elements"] = len(mt.elements)
    r["verbatim_convertible"] = [e.name for e in mt.convertible_elements()]
    r["verbatim_transitions"] = len(
        verbatim.automaton("msgslidingroofreception").transitions)
    r["verbatim_transfer"] = verbatim.transfer.names()

    # -------- canonical spec round-trips ----------------------------
    link = parse_link_spec(FIG6_CANONICAL)
    again = parse_link_spec(serialize_link_spec(link))
    r["roundtrip_structure_equal"] = (
        again.message_types()["msgSlidingRoof"].elements
        == link.message_types()["msgSlidingRoof"].elements
    )
    r["spec_consistent"] = link.validate_against_automata() == []

    # -------- the parsed automaton detects every failure class ------
    auto = link.automaton("msgSlidingRoofReception")

    def drive(interarrivals: list[int]) -> tuple[int, bool]:
        env = SimpleEnvironment()
        rt = AutomatonRuntime(auto, env)
        accepted = 0
        for gap in interarrivals:
            env.time += gap
            if rt.on_message("msgSlidingRoof"):
                accepted += 1
                rt.poll()
        return accepted, rt.in_error

    legal = drive([5 * MS] * 10)
    early = drive([5 * MS, 5 * MS, FIG6_TMIN // 2])
    r["legal_accepted"], r["legal_error"] = legal
    r["early_accepted"], r["early_error"] = early

    env = SimpleEnvironment()
    rt = AutomatonRuntime(auto, env)
    env.time = FIG6_TMAX  # nothing ever arrives
    rt.poll()
    r["omission_error"] = rt.in_error

    # -------- transfer semantics: the roof's closing sequence -------
    state = link.transfer.new_state("MovementState")
    deltas = [30, 25, -10, -45]  # open to 55%, then fully close
    for i, d in enumerate(deltas):
        state.apply({"ValueChange": d, "EventTime": i * 5})
    r["state_value"] = state.values["StateValue"]
    r["observation_time"] = state.values["ObservationTime"]
    r["applications"] = state.applications
    return r


def test_e7_sliding_roof(run_once):
    r = run_once(run_experiment)

    table = Table("E7: Fig. 6 link specification, parsed and executed",
                  ["aspect", "measured", "expected"])
    table.add_row("verbatim XML parses (DAS)", r["verbatim_das"], "X-by-wire")
    table.add_row("verbatim message width (bits)", r["verbatim_bits"],
                  "49 (16+16+16+1)")
    table.add_row("verbatim elements / convertible",
                  f"{r['verbatim_elements']} / {r['verbatim_convertible']}",
                  "3 / movementevent")
    table.add_row("verbatim automaton transitions", r["verbatim_transitions"], 6)
    table.add_row("verbatim transfer rules", str(r["verbatim_transfer"]),
                  "movementstate")
    table.add_row("canonical spec self-consistent", r["spec_consistent"], True)
    table.add_row("serialize->parse round trip", r["roundtrip_structure_equal"], True)
    table.add_row("legal traffic accepted", f"{r['legal_accepted']}/10, "
                  f"error={r['legal_error']}", "10/10, no error")
    table.add_row("too-early reception", f"accepted={r['early_accepted']}, "
                  f"error={r['early_error']}", "2 accepted, error")
    table.add_row("omission (tmax timeout)", r["omission_error"], True)
    table.add_row("event->state accumulation",
                  f"StateValue={r['state_value']} after {r['applications']} events",
                  "0 (roof closed)")
    table.print()

    assert r["verbatim_bits"] == 49
    assert r["verbatim_convertible"] == ["movementevent"]
    assert r["verbatim_transitions"] == 6
    assert r["spec_consistent"] and r["roundtrip_structure_equal"]
    assert (r["legal_accepted"], r["legal_error"]) == (10, False)
    assert (r["early_accepted"], r["early_error"]) == (2, True)
    assert r["omission_error"]
    assert r["state_value"] == 0 and r["observation_time"] == 15
