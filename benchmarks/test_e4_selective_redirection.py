"""E4 — Fig. 3's encapsulation purposes: selective redirection.

Paper claim (Sec. III-B): "By restricting the redirection through the
gateway to the information actually required by the jobs of the other
DAS, the gateway not only improves resource efficiency by saving
bandwidth of unnecessary messages, but also facilitates complexity
control" — for understanding a DAS, only its own messages plus what
passes the gateway must be considered.

Setup: the comfort DAS chats on five messages; the dashboard DAS needs
one convertible element of one of them.  We couple the DASs three ways
and regenerate the figure as exported bandwidth + visible-message
counts:

* naive bridge forwarding everything,
* virtual gateway redirecting the one message (whole),
* virtual gateway with value + rate filters on top.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.gateway import FilterChain, MinIntervalFilter, ValueFilter
from repro.messaging import (
    ElementDef,
    FieldDef,
    IntType,
    MessageType,
    Namespace,
    Semantics,
    StringType,
    UIntType,
)
from repro.core_network import ClusterBuilder, NodeConfig
from repro.sim import MS, SEC, Simulator
from repro.spec import ControlParadigm, Direction, LinkSpec, PortSpec
from repro.systems import NaiveBridge
from repro.vn import ETVirtualNetwork
from repro.gateway import GatewaySide, VirtualGateway


def needed_type() -> MessageType:
    return MessageType("msgClimate", elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=1),)),
        ElementDef("Temp", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("celsius", IntType(16)),)),
        ElementDef("Internals", fields=(FieldDef("debug", StringType(16)),)),
    ))


def chatter_types() -> list[MessageType]:
    out = []
    for i in range(2, 6):
        out.append(MessageType(f"msgChatter{i}", elements=(
            ElementDef("Name", key=True,
                       fields=(FieldDef("ID", IntType(16), static=True, static_value=i),)),
            ElementDef("Blob", convertible=True, semantics=Semantics.EVENT,
                       fields=(FieldDef("data", UIntType(64)),
                               FieldDef("more", UIntType(64)),)),
        )))
    return out


def build_world(sim: Simulator):
    builder = ClusterBuilder(sim)
    builder.add_node(NodeConfig("src", slot_capacity_bytes=96,
                                reservations={"comfort": 64, "dashboard": 24}))
    builder.add_node(NodeConfig("gw", slot_capacity_bytes=96,
                                reservations={"comfort": 64, "dashboard": 24}))
    builder.add_node(NodeConfig("dst", slot_capacity_bytes=96,
                                reservations={"comfort": 64, "dashboard": 24}))
    cluster = builder.build()
    cluster.start()

    ns_a = Namespace("comfort")
    needed = ns_a.register(needed_type())
    chatter = [ns_a.register(t) for t in chatter_types()]
    vn_a = ETVirtualNetwork(sim, "comfort", cluster, ns_a, pending_limit=8192)
    for t in [needed, *chatter]:
        vn_a.attach_gateway_producer(t.name, "src")
    vn_a.start()

    ns_b = Namespace("dashboard")
    vn_b = ETVirtualNetwork(sim, "dashboard", cluster, ns_b, pending_limit=8192)

    def workload():
        vn_a.send("msgClimate", needed.instance(
            Temp={"celsius": (sim.now // MS) % 50 - 5},
            Internals={"debug": "x" * 10}))
        for t in chatter:
            vn_a.send(t.name, t.instance(Blob={"data": 1, "more": 2}))

    sim.every(5 * MS, workload, start=5 * MS)
    return cluster, vn_a, vn_b, needed


def measure_dst_bytes(sim: Simulator, vn_b: ETVirtualNetwork) -> dict:
    state = {"bytes": 0, "msgs": 0}

    def count(message, instance, arrival):
        state["msgs"] += 1
        state["bytes"] += vn_b.namespace.lookup(message).byte_width()

    for name in vn_b.namespace.names():
        vn_b.tap(name, "dst", lambda m, i, t: count(m, i, t))
    return state


def run_bridge() -> dict:
    sim = Simulator(seed=11)
    cluster, vn_a, vn_b, needed = build_world(sim)
    # Naive bridge: every comfort message exists verbatim on dashboard.
    for t in vn_a.namespace.types():
        vn_b.namespace.register(t)
    state = measure_dst_bytes(sim, vn_b)
    bridge = NaiveBridge(sim, "bridge", "gw", vn_a, vn_b,
                         messages=tuple(vn_a.namespace.names()))
    bridge.start()
    vn_b.start()
    sim.run_until(2 * SEC)
    return {"msgs": state["msgs"], "bytes": state["bytes"],
            "visible_types": len(vn_b.namespace)}


def run_gateway(filters: FilterChain | None) -> dict:
    sim = Simulator(seed=11)
    cluster, vn_a, vn_b, needed = build_world(sim)
    dst_type = MessageType("msgCabinTemp", elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=9),)),
        ElementDef("Temp", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("celsius", IntType(16)),)),
    ))
    vn_b.namespace.register(dst_type)
    state = measure_dst_bytes(sim, vn_b)
    gw = VirtualGateway(
        sim, "gw", "gw",
        side_a=GatewaySide(vn=vn_a, link=LinkSpec(das="comfort", ports=(PortSpec(
            message_type=needed_type(), direction=Direction.INPUT,
            semantics=Semantics.STATE, control=ControlParadigm.EVENT_TRIGGERED,
            temporal_accuracy=200 * MS,
        ),))),
        side_b=GatewaySide(vn=vn_b, link=LinkSpec(das="dashboard", ports=(PortSpec(
            message_type=dst_type, direction=Direction.OUTPUT,
            semantics=Semantics.STATE, control=ControlParadigm.EVENT_TRIGGERED,
            temporal_accuracy=200 * MS,
        ),))),
    )
    gw.add_rule("msgClimate", "msgCabinTemp", direction="a_to_b",
                filters=filters)
    gw.start()
    vn_b.start()
    sim.run_until(2 * SEC)
    return {"msgs": state["msgs"], "bytes": state["bytes"],
            "visible_types": len(vn_b.namespace)}


def run_experiment() -> dict:
    return {
        "bridge": run_bridge(),
        "gateway": run_gateway(None),
        "gateway_filtered": run_gateway(FilterChain(
            ValueFilter("Temp", "celsius >= 0"),
            MinIntervalFilter(50 * MS),
        )),
    }


def test_e4_selective_redirection(run_once):
    r = run_once(run_experiment)

    table = Table("E4: selective redirection vs naive bridging (Fig. 3)",
                  ["coupling", "msgs into dst DAS", "payload bytes",
                   "message types visible in dst"])
    table.add_row("naive bridge (everything)", r["bridge"]["msgs"],
                  r["bridge"]["bytes"], r["bridge"]["visible_types"])
    table.add_row("virtual gateway (selected message)", r["gateway"]["msgs"],
                  r["gateway"]["bytes"], r["gateway"]["visible_types"])
    table.add_row("virtual gateway + value/rate filters",
                  r["gateway_filtered"]["msgs"], r["gateway_filtered"]["bytes"],
                  r["gateway_filtered"]["visible_types"])
    table.print()

    # Shape: bridge >> gateway >> filtered gateway, and complexity
    # (visible types) collapses from 5 to 1.
    assert r["bridge"]["bytes"] > r["gateway"]["bytes"] * 3
    assert r["gateway"]["msgs"] > r["gateway_filtered"]["msgs"] * 2
    assert r["bridge"]["visible_types"] == 5
    assert r["gateway"]["visible_types"] == 1
