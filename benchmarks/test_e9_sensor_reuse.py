"""E9 — sensor reuse across DASs: ABS wheel speeds → navigation.

Paper claim (Sec. I): "the speed sensors from the factory installed
Antilock Braking System (ABS) can be exploited to estimate the car's
heading for the navigation system during periods of GPS unavailability.
The redundant sensors can be eliminated in one of the DASs leading to
reduced resource consumption."

Regenerated figure: position error during a GPS outage, swept over
outage duration, with and without the abs→navigation gateway — plus
the sensor count the import eliminates.
"""

from __future__ import annotations

from repro.analysis import Series, Table
from repro.apps import CarConfig, Phase, VehicleModel, build_car
from repro.sim import SEC


def run_point(outage_s: int, nav_import: bool) -> dict:
    vehicle = VehicleModel([
        Phase(duration=5 * SEC, accel=3.0),
        Phase(duration=25 * SEC, yaw_rate=0.05),
    ])
    start = 8 * SEC
    cfg = CarConfig(
        vehicle=vehicle,
        gps_outages=[(start, start + outage_s * SEC)],
        nav_import=nav_import,
        presafe_import=False, roof_command_export=False,
        dashboard_import=False, roof_motion_plan=[],
    )
    car = build_car(cfg)
    car.run_for(start + outage_s * SEC + 2 * SEC)
    errs = car.navigator.error_during(start + SEC, start + outage_s * SEC)
    return {
        "max_err": max(errs),
        "mean_err": sum(errs) / len(errs),
        "dr_steps": car.navigator.dead_reckoning_steps,
    }


def run_experiment() -> dict:
    outages = (2, 5, 10, 15)
    return {
        "with": {o: run_point(o, True) for o in outages},
        "without": {o: run_point(o, False) for o in outages},
    }


def test_e9_sensor_reuse(run_once):
    r = run_once(run_experiment)

    table = Table("E9: navigation error during GPS outage (ABS import vs none)",
                  ["outage (s)", "max err WITH import (m)",
                   "max err WITHOUT (m)", "improvement factor"])
    series = Series("E9 (figure): position error vs outage duration",
                    "outage (s)", "max position error (m)")
    for o in r["with"]:
        w, wo = r["with"][o]["max_err"], r["without"][o]["max_err"]
        table.add_row(o, round(w, 2), round(wo, 2),
                      round(wo / max(w, 1e-9), 1))
        series.add("with-gateway", o, round(w, 2))
        series.add("strict-separation", o, round(wo, 2))
    table.print()
    series.print()
    print("\nResource consequence: the navigation DAS needs 0 own wheel-speed")
    print("sensors with the import; 4 duplicated sensors without sharing.")

    for o in r["with"]:
        w, wo = r["with"][o]["max_err"], r["without"][o]["max_err"]
        assert w < wo / 3, f"import must dominate at outage {o}s"
        assert r["with"][o]["dr_steps"] > 0
    # Error grows with outage duration in BOTH modes (dead reckoning
    # drifts too, just far slower).
    wo_errs = [r["without"][o]["max_err"] for o in r["without"]]
    assert wo_errs == sorted(wo_errs)
    w_errs = [r["with"][o]["max_err"] for o in r["with"]]
    assert w_errs[-1] >= w_errs[0]
