"""E12 — the interaction-type matrix and the b_req request protocol.

Paper claims (Sec. II-E, IV-A): ports refine into push/pull inputs and
outputs by the orientation of control vs data flow; the gateway
repository carries a boolean request variable ``b_req`` per convertible
element so "the gateway side sending messages to an event-triggered
virtual network can request convertible element instances from the
other virtual network" and "the gateway side receiving messages from an
event-triggered virtual network can initiate receptions conditionally,
based on the value of the request variable."

Regenerated table: each of the four interaction types exercised across
one gateway, plus the b_req cycle (construction fails → request set →
element arrives → construction fires → request cleared).
"""

from __future__ import annotations

from repro.analysis import Table
from repro.gateway import GatewayRepository
from repro.messaging import (
    ElementDef,
    FieldDef,
    IntType,
    MessageType,
    Semantics,
)
from repro.platform import Partition, PartitionWindow, Job
from repro.sim import MS, Simulator
from repro.spec import Direction, InteractionType, PortSpec
from repro.vn import EventPort, StatePort, make_port


def mtype(name="msgX", semantics=Semantics.STATE) -> MessageType:
    return MessageType(name, elements=(
        ElementDef("Data", convertible=True, semantics=semantics,
                   fields=(FieldDef("v", IntType(16)),)),
    ))


def spec(direction, interaction, semantics=Semantics.STATE):
    return PortSpec(message_type=mtype(semantics=semantics),
                    direction=direction, semantics=semantics,
                    interaction=interaction, queue_depth=8)


def run_experiment() -> dict:
    r: dict = {}
    sim = Simulator()
    part = Partition(sim, "p", "d", PartitionWindow(offset=0, duration=MS))

    pushed: list[str] = []

    class PushJob(Job):
        def on_message(self, port_name, instance, arrival):
            pushed.append(port_name)

    job = PushJob(sim, "j", "d", part)

    # receiver-push: delivery notifies the owner job through its window.
    push_in = make_port(sim, spec(Direction.INPUT, InteractionType.PUSH))
    job.bind_port(push_in)
    push_in.deliver_from_network(mtype().instance(Data={"v": 1}), 0)
    before = list(pushed)
    part.execute_window()
    r["receiver_push"] = (before == [] and pushed == ["msgX"])

    # receiver-pull: delivery stays in the port until the consumer asks.
    pull_in = make_port(sim, spec(Direction.INPUT, InteractionType.PULL))
    pull_in.deliver_from_network(mtype().instance(Data={"v": 2}), 0)
    val, _ = pull_in.read()
    r["receiver_pull"] = val.get("Data", "v") == 2 and isinstance(pull_in, StatePort)

    # sender-push: the job hands the instance over on its own request.
    push_out = make_port(sim, spec(Direction.OUTPUT, InteractionType.PUSH,
                                   semantics=Semantics.EVENT))
    assert isinstance(push_out, EventPort)
    push_out.enqueue(mtype(semantics=Semantics.EVENT).instance(Data={"v": 3}))
    r["sender_push"] = push_out.collect().get("Data", "v") == 3

    # sender-pull: the communication system samples the output state at
    # ITS instants (the TT dispatch discipline).
    pull_out = make_port(sim, spec(Direction.OUTPUT, InteractionType.PULL))
    assert isinstance(pull_out, StatePort)
    pull_out.write(mtype().instance(Data={"v": 4}))
    sample, t = pull_out.sample()
    r["sender_pull"] = sample.get("Data", "v") == 4

    # ---------------- the b_req protocol ----------------------------
    repo = GatewayRepository()
    repo.declare("A", Semantics.STATE, d_acc=50 * MS)
    repo.declare("B", Semantics.EVENT, depth=4)
    repo.store("A", {"v": 1}, now=0)
    r["breq_initially_clear"] = repo.requested() == []
    # Construction attempt: B missing -> its request variable is set.
    ok = repo.all_available(["A", "B"], now=1 * MS)
    r["breq_set_on_missing"] = (not ok) and repo.is_requested("B") \
        and not repo.is_requested("A")
    # The receiving side polls b_req and conditionally imports B.
    imported = False
    if repo.is_requested("B"):
        repo.store("B", {"delta": 5}, now=2 * MS)
        imported = True
    r["breq_conditional_import"] = imported
    # Now the construction fires and consumes B exactly once, clearing
    # the request.
    ok2 = repo.all_available(["A", "B"], now=3 * MS)
    taken = repo.take("B", now=3 * MS)
    r["breq_cleared_after_take"] = ok2 and taken == {"delta": 5} \
        and not repo.is_requested("B")
    return r


def test_e12_interaction_types(run_once):
    r = run_once(run_experiment)

    table = Table("E12: interaction types (Sec. II-E) and b_req (Sec. IV-A)",
                  ["mechanism", "behaviour verified"])
    rows = [
        ("push input port (receiver-push)", "receiver_push"),
        ("pull input port (receiver-pull)", "receiver_pull"),
        ("push output port (sender-push)", "sender_push"),
        ("pull output port (sender-pull)", "sender_pull"),
        ("b_req initially clear", "breq_initially_clear"),
        ("b_req set on failed construction", "breq_set_on_missing"),
        ("conditional import on b_req", "breq_conditional_import"),
        ("b_req cleared after exactly-once take", "breq_cleared_after_take"),
    ]
    for label, key in rows:
        table.add_row(label, r[key])
    table.print()

    for _, key in rows:
        assert r[key], key
