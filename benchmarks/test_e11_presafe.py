"""E11 — tactic coordination: the Pre-Safe causal chain (Sec. I).

Paper claim: "Virtual gateways permit tactic coordination and
exploitation of redundancy without having to fuse different control
functions into a single DAS" — the Mercedes Pre-Safe example correlates
existing dynamics sensors and actuates across subsystem boundaries.

Regenerated figure: the skid→detection→belt→roof-closed latency chain
through two gateways, swept over the dynamics-import temporal accuracy
(the coordination degrades gracefully as the imported state is allowed
to age), plus the strict-separation control (the function vanishes).
"""

from __future__ import annotations

from repro.analysis import Series, Table
from repro.apps import CarConfig, build_car
from repro.sim import MS, SEC


def run_point(d_acc_dynamics: int, presafe_import: bool = True) -> dict:
    cfg = CarConfig(presafe_import=presafe_import,
                    d_acc_dynamics=d_acc_dynamics,
                    dashboard_import=False, nav_import=False)
    car = build_car(cfg)
    car.run_for(18 * SEC)
    onset = car.vehicle.skid_onsets()[0]
    out: dict = {"detected": bool(car.presafe.detections)}
    if car.presafe.detections:
        detect = car.presafe.detections[0]
        out["detect_latency"] = detect - onset
        belts = car.belt.reception_times("msgBeltCommand")
        out["belt_latency"] = belts[0] - onset if belts else None
        cmds = car.roof.close_commands_received
        out["roof_cmd_latency"] = cmds[0] - onset if cmds else None
        out["roof_closed_latency"] = (car.roof.closed_at - onset
                                      if car.roof.closed_at else None)
    return out


def run_experiment() -> dict:
    sweep = {d: run_point(d * MS) for d in (20, 50, 100, 400)}
    return {"sweep": sweep, "separated": run_point(100 * MS, presafe_import=False)}


def test_e11_presafe(run_once):
    r = run_once(run_experiment)

    table = Table("E11: Pre-Safe reaction chain through two gateways",
                  ["d_acc dynamics (ms)", "detected", "detect (ms)",
                   "belt (ms)", "roof cmd (ms)", "roof closed (ms)"])
    series = Series("E11 (figure): detection latency vs import accuracy",
                    "d_acc (ms)", "skid->detect latency (ms)")
    for d, p in r["sweep"].items():
        table.add_row(
            d, p["detected"],
            round(p["detect_latency"] / MS, 1),
            round(p["belt_latency"] / MS, 1) if p["belt_latency"] else "-",
            round(p["roof_cmd_latency"] / MS, 1) if p["roof_cmd_latency"] else "-",
            round(p["roof_closed_latency"] / MS, 1) if p["roof_closed_latency"] else "-",
        )
        series.add("detect", d, round(p["detect_latency"] / MS, 1))
    table.add_row("strict separation", r["separated"]["detected"],
                  "-", "-", "-", "-")
    table.print()
    series.print()

    # Shape: detection within tens of ms at every accuracy setting; the
    # full chain (roof closed) inside a second; and without the import
    # the coordinated function simply does not exist.
    for d, p in r["sweep"].items():
        assert p["detected"]
        assert p["detect_latency"] <= 50 * MS
        assert p["belt_latency"] is not None and p["belt_latency"] <= 100 * MS
        assert p["roof_closed_latency"] is not None
        assert p["roof_closed_latency"] <= 1 * SEC
    assert r["separated"]["detected"] is False
