"""E8 — error containment: virtual gateway vs naive bridge (Sec. III-B.3).

Paper claim: "gateways perform error detection to control the
forwarding of information and prevent the propagation of timing message
failures"; Sec. IV realizes this with temporal specifications
(deterministic timed automata) controlling the selective redirection.

Fault campaign: the source DAS's producer suffers a software timing
failure (burst emission at ~10x the specified rate) during a window of
the run.  Couplings compared:

* naive bridge — every instance re-sent verbatim into the destination,
* virtual gateway, monitor ablated — filtering/semantics but no
  temporal error detection (the ablation DESIGN.md calls out),
* virtual gateway with the Fig. 6 interarrival monitor.

Metric: instances entering the destination DAS during the fault window
(normalized to the healthy rate), plus consumer queue drops there.
"""

from __future__ import annotations

from repro.analysis import Table
from repro.messaging import (
    ElementDef,
    FieldDef,
    IntType,
    MessageType,
    Namespace,
    Semantics,
    TimestampType,
)
from repro.automata import AutomatonBuilder
from repro.core_network import ClusterBuilder, NodeConfig
from repro.gateway import GatewaySide, VirtualGateway
from repro.sim import MS, SEC, Simulator
from repro.spec import ControlParadigm, Direction, ETTiming, LinkSpec, PortSpec
from repro.systems import NaiveBridge
from repro.vn import ETVirtualNetwork

TMIN = 4 * MS
TMAX = 1 * SEC
HEALTHY_PERIOD = 10 * MS
FAULT_PERIOD = 1 * MS  # 10x too fast
FAULT_WINDOW = (2 * SEC, 4 * SEC)
RUN = 6 * SEC


def event_type(name: str, nid: int) -> MessageType:
    return MessageType(name, elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=nid),)),
        ElementDef("Change", convertible=True, semantics=Semantics.EVENT,
                   fields=(FieldDef("delta", IntType(16)),
                           FieldDef("at", TimestampType(32)),)),
    ))


def monitor_automaton():
    return (
        AutomatonBuilder("srcReception")
        .parameter("tmin", TMIN)
        .parameter("tmax", TMAX)
        .location("statePassive", initial=True)
        .location("stateActive")
        .location("stateError", error=True)
        .on_receive("msgSrc", "statePassive", "stateActive",
                    guard="x >= tmin", assign="x := 0")
        .on_receive("msgSrc", "statePassive", "stateError", guard="x < tmin")
        .transition("stateActive", "statePassive", guard="x < tmax")
        .transition("statePassive", "stateError", guard="x >= tmax")
        .build()
    )


def build_world(sim: Simulator):
    builder = ClusterBuilder(sim)
    for node in ("src", "gwhost", "dst"):
        builder.add_node(NodeConfig(node, slot_capacity_bytes=64,
                                    reservations={"srcdas": 30, "dstdas": 30}))
    cluster = builder.build()
    cluster.start()
    ns_a = Namespace("srcdas")
    src = ns_a.register(event_type("msgSrc", 1))
    vn_a = ETVirtualNetwork(sim, "srcdas", cluster, ns_a, pending_limit=16384)
    vn_a.attach_gateway_producer("msgSrc", "src")
    vn_a.start()
    ns_b = Namespace("dstdas")
    vn_b = ETVirtualNetwork(sim, "dstdas", cluster, ns_b, pending_limit=16384)

    # Faulty producer: bursts during the fault window.
    counter = {"n": 0}

    def emit():
        counter["n"] += 1
        vn_a.send("msgSrc", src.instance(Change={
            "delta": 1, "at": (sim.now // 1000) % 2**32}))

    def pump():
        in_fault = FAULT_WINDOW[0] <= sim.now < FAULT_WINDOW[1]
        period = FAULT_PERIOD if in_fault else HEALTHY_PERIOD
        emit()
        sim.after(period, pump)

    sim.at(HEALTHY_PERIOD, pump)
    return cluster, vn_a, vn_b, counter


def arrivals_in_window(times: list[int]) -> tuple[int, int]:
    fault = sum(1 for t in times if FAULT_WINDOW[0] <= t < FAULT_WINDOW[1] + 200 * MS)
    healthy = sum(1 for t in times if t < FAULT_WINDOW[0])
    return healthy, fault


def run_bridge() -> dict:
    sim = Simulator(seed=8)
    cluster, vn_a, vn_b, counter = build_world(sim)
    vn_b.namespace.register(event_type("msgSrc", 1))
    times: list[int] = []
    vn_b.tap("msgSrc", "dst", lambda m, i, t: times.append(t))
    NaiveBridge(sim, "bridge", "gwhost", vn_a, vn_b, messages=("msgSrc",)).start()
    vn_b.start()
    sim.run_until(RUN)
    healthy, fault = arrivals_in_window(times)
    return {"sent": counter["n"], "healthy": healthy, "fault": fault}


def run_gateway(with_monitor: bool) -> dict:
    sim = Simulator(seed=8)
    cluster, vn_a, vn_b, counter = build_world(sim)
    dst = vn_b.namespace.register(event_type("msgDst", 2))
    times: list[int] = []
    vn_b.tap("msgDst", "dst", lambda m, i, t: times.append(t))
    link_a = LinkSpec(
        das="srcdas",
        ports=(PortSpec(message_type=event_type("msgSrc", 1),
                        direction=Direction.INPUT, semantics=Semantics.EVENT,
                        control=ControlParadigm.EVENT_TRIGGERED,
                        et=ETTiming(min_interarrival=TMIN, max_interarrival=TMAX),
                        queue_depth=32),),
        automata=(monitor_automaton(),) if with_monitor else (),
    )
    link_b = LinkSpec(
        das="dstdas",
        ports=(PortSpec(message_type=dst, direction=Direction.OUTPUT,
                        semantics=Semantics.EVENT,
                        control=ControlParadigm.EVENT_TRIGGERED, queue_depth=32),),
    )
    gw = VirtualGateway(sim, "gw", "gwhost",
                        side_a=GatewaySide(vn=vn_a, link=link_a),
                        side_b=GatewaySide(vn=vn_b, link=link_b),
                        restart_delay=100 * MS)
    gw.add_rule("msgSrc", "msgDst", direction="a_to_b")
    gw.start()
    vn_b.start()
    sim.run_until(RUN)
    healthy, fault = arrivals_in_window(times)
    monitor = gw.monitor_for("msgSrc")
    return {
        "sent": counter["n"], "healthy": healthy, "fault": fault,
        "violations": monitor.violations if monitor else 0,
        "restarts": gw.restarts,
        "blocked": gw.instances_blocked,
    }


def run_experiment() -> dict:
    return {
        "bridge": run_bridge(),
        "gateway_no_monitor": run_gateway(with_monitor=False),
        "gateway": run_gateway(with_monitor=True),
    }


def test_e8_error_containment(run_once):
    r = run_once(run_experiment)

    # Healthy-window baseline rate (arrivals per second).
    healthy_rate = r["bridge"]["healthy"] / (FAULT_WINDOW[0] / SEC)
    fault_secs = (FAULT_WINDOW[1] - FAULT_WINDOW[0]) / SEC

    table = Table("E8: timing-failure propagation into the destination DAS",
                  ["coupling", "arrivals in fault window",
                   "x of healthy rate", "violations detected",
                   "service restarts", "blocked at gateway"])

    def ratio(d):
        return round(d["fault"] / (healthy_rate * fault_secs), 2)

    table.add_row("naive bridge", r["bridge"]["fault"], ratio(r["bridge"]),
                  "-", "-", "-")
    g0 = r["gateway_no_monitor"]
    table.add_row("gateway, monitor ablated", g0["fault"], ratio(g0),
                  g0["violations"], g0["restarts"], g0["blocked"])
    g1 = r["gateway"]
    table.add_row("gateway + timed-automata monitor", g1["fault"], ratio(g1),
                  g1["violations"], g1["restarts"], g1["blocked"])
    table.print()

    # Shape: the bridge amplifies ~10x; the monitored gateway stays at
    # (or below) the healthy rate; the ablation sits in between (it
    # forwards everything but at least preserves structure).
    assert ratio(r["bridge"]) > 5.0
    assert ratio(g1) <= 1.2
    assert g1["violations"] > 0 and g1["blocked"] > 0
    assert ratio(g0) > ratio(g1) * 3  # the monitor is the load-bearing part
