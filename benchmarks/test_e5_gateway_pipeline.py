"""E5 — Fig. 4's gateway operation pipeline, measured end to end.

Paper claims (Sec. III/IV): the gateway temporally decouples the two
virtual networks (different periods/phases force buffering in the
repository); messages at the two sides need not consist of the same
convertible elements (dissect → recombine); and a *hidden* gateway —
being an architectural service — avoids the application-level latency
a *visible* gateway job pays (its partition window).

The regenerated figure: per-stage counts of the Fig. 4 pipeline, the
redirection latency distribution across TT destination periods, and
the hidden-vs-visible latency comparison.
"""

from __future__ import annotations

from repro.analysis import Series, Table, summarize
from repro.messaging import (
    ElementDef,
    FieldDef,
    IntType,
    MessageType,
    Semantics,
    TimestampType,
)
from repro.sim import MS, SEC, TraceCategory
from repro.spec import (
    ControlParadigm,
    Direction,
    InteractionType,
    LinkSpec,
    PortSpec,
    TTTiming,
)
from repro.systems import GatewayDecl, SystemBuilder
from repro.platform import Job


def src_type() -> MessageType:
    """Three convertible elements plus one local element."""
    return MessageType("msgSensorBundle", elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=1),)),
        ElementDef("Temp", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("c", IntType(16)),
                           FieldDef("t_src", TimestampType(32)),)),
        ElementDef("Pressure", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("kpa", IntType(16)),)),
        ElementDef("Humidity", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("pct", IntType(16)),)),
        ElementDef("Local", fields=(FieldDef("debug", IntType(32)),)),
    ))


def dst_type() -> MessageType:
    """Needs only two of the three elements, in a different message."""
    return MessageType("msgClimateView", elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=2),)),
        ElementDef("Temp", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("c", IntType(16)),
                           FieldDef("t_src", TimestampType(32)),)),
        ElementDef("Humidity", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("pct", IntType(16)),)),
    ))


class BundleSender(Job):
    def __init__(self, sim, name, das, partition, period=7 * MS):
        super().__init__(sim, name, das, partition)
        self.vn = None
        self.period = period
        self._last = None
        self.sent = 0

    def on_step(self):
        now = self.sim.now
        if self.vn is None:
            return
        if self._last is not None and now - self._last < self.period:
            return
        self._last = now
        self.sent += 1
        self.vn.send("msgSensorBundle", src_type().instance(
            Temp={"c": self.sent % 40, "t_src": (now // 1000) % 2**32},
            Pressure={"kpa": 100},
            Humidity={"pct": 50},
            Local={"debug": self.sent},
        ), sender_job=self.name)


class ViewConsumer(Job):
    def __init__(self, sim, name, das, partition):
        super().__init__(sim, name, das, partition)
        self.latencies: list[int] = []
        self._seen: set[int] = set()

    def on_message(self, port_name, instance, arrival):
        # End-to-end latency of each source event's FIRST appearance:
        # original sensor emission (carried in the Temp element,
        # microsecond wire units) -> first delivery at this job.  With
        # update-in-place state semantics a slow TT destination may
        # never show some updates at all — that is the semantics, so
        # only first appearances count.
        t_src = instance.get("Temp", "t_src")
        if t_src in self._seen:
            return
        self._seen.add(t_src)
        self.latencies.append(self.sim.now - t_src * 1_000)


def run_point(dst_period: int, visible: bool) -> dict:
    builder = SystemBuilder(seed=5)
    builder.add_node("src-ecu").add_node("gw-ecu").add_node("dst-ecu")
    builder.add_das("sensors", ControlParadigm.EVENT_TRIGGERED)
    builder.add_das("climate", ControlParadigm.TIME_TRIGGERED)
    builder.add_job(
        "sender", "sensors", "src-ecu",
        lambda sim, n, d, p: BundleSender(sim, n, d, p),
        ports=(PortSpec(message_type=src_type(), direction=Direction.OUTPUT,
                        semantics=Semantics.EVENT,
                        control=ControlParadigm.EVENT_TRIGGERED, queue_depth=32),),
    )
    builder.add_job(
        "viewer", "climate", "dst-ecu",
        lambda sim, n, d, p: ViewConsumer(sim, n, d, p),
        ports=(PortSpec(message_type=dst_type(), direction=Direction.INPUT,
                        semantics=Semantics.STATE,
                        control=ControlParadigm.TIME_TRIGGERED,
                        tt=TTTiming(period=dst_period),
                        interaction=InteractionType.PUSH,
                        temporal_accuracy=500 * MS),),
    )
    builder.add_gateway(GatewayDecl(
        name="gw", host="gw-ecu", das_a="sensors", das_b="climate",
        link_a=LinkSpec(das="sensors", ports=(PortSpec(
            message_type=src_type(), direction=Direction.INPUT,
            semantics=Semantics.EVENT, control=ControlParadigm.EVENT_TRIGGERED,
            queue_depth=32,
        ),)),
        link_b=LinkSpec(das="climate", ports=(PortSpec(
            message_type=dst_type(), direction=Direction.OUTPUT,
            semantics=Semantics.STATE, control=ControlParadigm.TIME_TRIGGERED,
            tt=TTTiming(period=dst_period), temporal_accuracy=500 * MS,
        ),)),
        rules=[("msgSensorBundle", "msgClimateView", "a_to_b", None)],
        partition="gw" if visible else None,
    ))
    system = builder.build()
    system.start()
    sender = system.job("sender")
    sender.vn = system.vn("sensors")
    system.run_for(3 * SEC)
    gw = system.gateway("gw")
    viewer = system.job("viewer")
    stored = len([r for r in system.sim.trace.records(TraceCategory.GATEWAY_FORWARD)
                  if r.get("stage") == "stored"])
    return {
        "sent": sender.sent,
        "received_by_gw": gw.instances_received,
        "stored": stored,
        "constructed": gw.instances_forwarded,
        "delivered": len(viewer.latencies),
        "latency": summarize(viewer.latencies),
        "repo_elements": gw.repository.names(),
    }


def run_experiment() -> dict:
    return {
        "periods": {p: run_point(p, visible=False)
                    for p in (5 * MS, 20 * MS, 80 * MS)},
        "hidden": run_point(20 * MS, visible=False),
        "visible": run_point(20 * MS, visible=True),
    }


def test_e5_gateway_pipeline(run_once):
    r = run_once(run_experiment)

    table = Table("E5: Fig. 4 pipeline stages (ET source -> TT destination)",
                  ["dst period", "sent", "gw received", "dissected+stored",
                   "constructed", "delivered", "p50 latency (ms)"])
    series = Series("E5 (figure): redirection latency vs destination period",
                    "TT destination period (ms)", "p50 latency (ms)")
    for period, d in r["periods"].items():
        table.add_row(f"{period / MS:.0f} ms", d["sent"], d["received_by_gw"],
                      d["stored"], d["constructed"], d["delivered"],
                      round(d["latency"].p50 / MS, 2))
        series.add("p50", period / MS, round(d["latency"].p50 / MS, 2))
    table.print()
    series.print()

    t2 = Table("E5: hidden vs visible gateway (Sec. III)",
               ["construction", "mean latency (ms)", "p95 latency (ms)"])
    for kind in ("hidden", "visible"):
        t2.add_row(kind, round(r[kind]["latency"].mean / MS, 3),
                   round(r[kind]["latency"].p95 / MS, 2))
    t2.print()

    base = r["periods"][5 * MS]
    # Dissection kept only convertible elements; 'Local' never stored.
    assert set(base["repo_elements"]) == {"Temp", "Pressure", "Humidity"}
    # Every sent instance reached the gateway and was stored (the last
    # one may still be in flight when the run stops).
    assert base["sent"] - base["received_by_gw"] <= 2
    assert base["received_by_gw"] == base["stored"]
    # Latency grows with the destination period (temporal decoupling).
    p50s = [d["latency"].p50 for d in r["periods"].values()]
    assert p50s[0] < p50s[1] < p50s[2]
    # Hidden gateway beats the visible gateway job (the visible one
    # waits for its partition window before processing each reception).
    assert r["hidden"]["latency"].mean < r["visible"]["latency"].mean
