"""E1 — Fig. 1's core services, measured (C1–C4).

Paper claim (Sec. II-C): the base architecture provides predictable
time-triggered transport, fault-tolerant clock synchronization, strong
fault isolation, and consistent diagnosis of failing nodes.  This
benchmark regenerates the figure's core-service level as numbers:

* C1 — TT transport latency is a schedule constant (zero jitter),
* C2 — synchronized precision stays bounded by ~drift-per-cycle while
  free-running clocks diverge linearly,
* C3 — a babbling component disturbs no other component's slots,
* C4 — a crash is detected within the membership threshold by every
  correct node, and all views agree.
"""

from __future__ import annotations

from repro.analysis import Table, jitter
from repro.core_network import ClusterBuilder, FrameChunk, NodeConfig
from repro.faults import BabblingIdiot, ComponentCrash, FaultInjector
from repro.sim import MS, Simulator


def build(sim: Simulator, drifts=(120.0, -80.0, 40.0, -150.0), sync_k=1,
          guardian=True):
    builder = ClusterBuilder(sim, guardian_enabled=guardian, sync_k=sync_k)
    for i, d in enumerate(drifts):
        builder.add_node(NodeConfig(name=f"n{i}", slot_capacity_bytes=32,
                                    drift_ppm=d, reservations={"vn": 24}))
    cluster = builder.build()
    cluster.start()
    return cluster


def run_experiment() -> dict:
    results: dict = {}

    # ---------------- C1: predictable transport --------------------
    def measure_c1(drifts) -> tuple[int, int, int]:
        sim = Simulator(seed=1)
        cluster = build(sim, drifts=drifts)
        cyc = cluster.schedule.cycle_length
        latencies: list[int] = []
        cluster.controller("n2").register_receiver(
            "vn", lambda c, t: latencies.append(t - c.meta["enq"]))

        def enqueue():
            cluster.controller("n0").enqueue_chunk(
                FrameChunk(vn="vn", message="m", data=b"\x01",
                           meta={"enq": sim.now}))

        for k in range(200):
            sim.at(k * cyc, enqueue)
        sim.run_until(202 * cyc)
        return len(latencies), latencies[0], jitter(latencies)

    n, lat, jit = measure_c1((0.0, 0.0, 0.0, 0.0))
    results["c1_deliveries"] = n
    results["c1_latency_ns"] = lat
    results["c1_jitter_ns"] = jit
    _, _, jit_drift = measure_c1((120.0, -80.0, 40.0, -150.0))
    results["c1_jitter_under_drift_ns"] = jit_drift

    # ---------------- C2: clock sync precision ---------------------
    sim2 = Simulator(seed=2)
    synced = build(sim2)
    sim2.run_until(200 * synced.schedule.cycle_length)
    results["c2_synced_precision_ns"] = synced.clock_precision()

    sim3 = Simulator(seed=3)
    free = build(sim3)
    for ctrl in free.controllers.values():
        ctrl.sync.resynchronize = lambda ref_now: 0  # type: ignore[assignment]
    sim3.run_until(200 * free.schedule.cycle_length)
    results["c2_free_precision_ns"] = free.clock_precision()
    results["c2_cycle_ns"] = synced.schedule.cycle_length

    # ---------------- C3: strong fault isolation -------------------
    sim4 = Simulator(seed=4)
    guarded = build(sim4)
    babble = BabblingIdiot(name="babble", controller=guarded.controller("n0"),
                           burst_period=20_000)
    FaultInjector(sim4).inject_at(babble, at=MS)
    sim4.run_until(50 * guarded.schedule.cycle_length)
    foreign_corrupt = [
        r for r in sim4.trace.records("frame.rx")
        if r.get("dropped") == "corrupt" and r["sender"] != "n0"
    ]
    results["c3_babbles_attempted"] = babble.transmissions_attempted
    results["c3_babbles_blocked"] = guarded.guardian.blocked_count
    results["c3_foreign_frames_corrupted"] = len(foreign_corrupt)

    sim5 = Simulator(seed=5)
    unguarded = build(sim5, guardian=False)
    babble2 = BabblingIdiot(name="babble", controller=unguarded.controller("n0"),
                            burst_period=20_000)
    FaultInjector(sim5).inject_at(babble2, at=MS)
    sim5.run_until(50 * unguarded.schedule.cycle_length)
    results["c3_collisions_without_guardian"] = unguarded.bus.collisions

    # ---------------- C4: consistent diagnosis ---------------------
    sim6 = Simulator(seed=6)
    cluster6 = build(sim6)
    cyc6 = cluster6.schedule.cycle_length
    crash_at = 20 * cyc6 + 1
    from repro.platform import Component

    comp3 = Component(sim6, "n3", cluster6.controller("n3"))
    FaultInjector(sim6).inject_at(ComponentCrash(name="crash", component=comp3),
                                  at=crash_at)
    sim6.run_until(40 * cyc6)
    detections = []
    for name, ctrl in cluster6.controllers.items():
        if name == "n3":
            continue
        down = [t for t, c, alive in ctrl.membership.changes
                if c == "n3" and not alive]
        detections.append(down[0] - crash_at if down else None)
    results["c4_detection_latencies_cycles"] = [
        round(d / cyc6, 2) if d is not None else None for d in detections
    ]
    views = [tuple(sorted(c.membership.vector().items()))
             for n, c in cluster6.controllers.items() if n != "n3"]
    results["c4_views_consistent"] = len(set(views)) == 1
    return results


def test_e1_core_services(run_once):
    r = run_once(run_experiment)

    table = Table("E1: core services of the base architecture (Fig. 1)",
                  ["service", "metric", "measured", "paper claim"])
    table.add_row("C1 transport", "deliveries", r["c1_deliveries"], "every cycle")
    table.add_row("C1 transport", "latency (ns, constant)", r["c1_latency_ns"],
                  "a-priori known")
    table.add_row("C1 transport", "jitter, perfect clocks (ns)", r["c1_jitter_ns"], "0")
    table.add_row("C1 transport", "jitter under drift (ns)",
                  r["c1_jitter_under_drift_ns"], "<< inter-slot gap")
    table.add_row("C2 clock sync", "precision synced (ns)",
                  r["c2_synced_precision_ns"], "bounded")
    table.add_row("C2 clock sync", "precision free-running (ns)",
                  r["c2_free_precision_ns"], "diverges")
    table.add_row("C3 isolation", "babbles attempted", r["c3_babbles_attempted"], "-")
    table.add_row("C3 isolation", "babbles blocked", r["c3_babbles_blocked"],
                  "all off-slot")
    table.add_row("C3 isolation", "foreign frames corrupted",
                  r["c3_foreign_frames_corrupted"], "0")
    table.add_row("C3 isolation", "collisions w/o guardian",
                  r["c3_collisions_without_guardian"], "> 0")
    table.add_row("C4 membership", "detection latency (cycles)",
                  str(r["c4_detection_latencies_cycles"]), "<= threshold+1")
    table.add_row("C4 membership", "views consistent", r["c4_views_consistent"], "yes")
    table.print()

    # Shape assertions: who wins / what holds, per the paper.
    assert r["c1_jitter_ns"] == 0
    # Under drift, jitter must stay well below the inter-slot gap (10 us)
    # or the TDMA slots of drifting nodes would collide.
    assert r["c1_jitter_under_drift_ns"] < 10_000
    assert r["c2_synced_precision_ns"] < r["c2_free_precision_ns"] / 10
    assert r["c2_synced_precision_ns"] <= int(300e-6 * r["c2_cycle_ns"]) + 2_000
    assert r["c3_foreign_frames_corrupted"] == 0
    assert r["c3_collisions_without_guardian"] > 0
    assert all(d is not None and d <= 3.0 for d in r["c4_detection_latencies_cycles"])
    assert r["c4_views_consistent"]
