"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once under pytest-benchmark
(``rounds=1``): the interesting output is the *model* metrics printed as
tables (the paper's figures regenerated), with wall-clock time as a
secondary signal.  Run with ``pytest benchmarks/ --benchmark-only -s``
to see the tables.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run ``fn`` once under the benchmark timer and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return runner
