"""E2 — Fig. 1's two virtual networks: temporal independence.

Paper claim (Sec. II-A): "a virtual network exhibits specified temporal
properties, which are independent from the communication activities in
other virtual networks."

We run a TT virtual network (safety-critical DAS) and an ET virtual
network (non-safety-critical DAS) over one physical bus and sweep the
ET offered load from idle to far beyond its reservation.  The figure
regenerated: TT latency/jitter flat across the sweep; ET latency grows
and its delivery ratio collapses once the load exceeds the reserved
bandwidth (the paper's "timing failures ... during worst-case
scenarios in favor of more cost-effective solutions").
"""

from __future__ import annotations

from repro.analysis import Series, Table, jitter, summarize
from repro.core_network import ClusterBuilder, NodeConfig
from repro.messaging import (
    ElementDef,
    FieldDef,
    IntType,
    MessageType,
    Namespace,
    Semantics,
    UIntType,
)
from repro.sim import SEC, Simulator
from repro.spec import TTTiming
from repro.vn import ETVirtualNetwork, TTVirtualNetwork


def control_type() -> MessageType:
    return MessageType("msgControl", elements=(
        ElementDef("Cmd", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("u", IntType(32)),)),
    ))


def chatter_type() -> MessageType:
    return MessageType("msgChatter", elements=(
        ElementDef("Blob", convertible=True, semantics=Semantics.EVENT,
                   fields=(FieldDef("seq", UIntType(32)),)),
    ))


def run_point(et_rate_hz: int, seconds: int = 2) -> dict:
    sim = Simulator(seed=42)
    builder = ClusterBuilder(sim)
    builder.add_node(NodeConfig("ctrl-ecu", slot_capacity_bytes=48,
                                reservations={"tt": 20, "et": 20}))
    builder.add_node(NodeConfig("sink-ecu", slot_capacity_bytes=48,
                                reservations={"tt": 20, "et": 20}))
    cluster = builder.build()
    cluster.start()
    cyc = cluster.schedule.cycle_length

    ns_tt = Namespace("tt")
    ns_tt.register(control_type())
    vn_tt = TTVirtualNetwork(sim, "tt", cluster, ns_tt)
    counter = {"k": 0}

    def provider():
        counter["k"] += 1
        return control_type().instance(Cmd={"u": counter["k"]})

    vn_tt.attach_gateway_producer("msgControl", "ctrl-ecu", provider=provider)
    vn_tt.set_timing("msgControl", TTTiming(period=cyc))
    tt_arrivals: list[int] = []
    vn_tt.tap("msgControl", "sink-ecu", lambda m, i, t: tt_arrivals.append(t))
    vn_tt.start()

    ns_et = Namespace("et")
    ns_et.register(chatter_type())
    vn_et = ETVirtualNetwork(sim, "et", cluster, ns_et, pending_limit=256)
    vn_et.attach_gateway_producer("msgChatter", "ctrl-ecu")
    et_latencies: list[int] = []
    vn_et.tap("msgChatter", "sink-ecu",
              lambda m, i, t: et_latencies.append(t - i.send_time))
    vn_et.start()
    sent = {"n": 0}
    if et_rate_hz > 0:
        period = SEC // et_rate_hz

        def chat():
            sent["n"] += 1
            vn_et.send("msgChatter",
                       chatter_type().instance(Blob={"seq": sent["n"] % 2**32}))

        sim.every(period, chat, start=period)

    sim.run_until(seconds * SEC)
    tt_intervals = [b - a for a, b in zip(tt_arrivals, tt_arrivals[1:])]
    return {
        "tt_deliveries": len(tt_arrivals),
        "tt_jitter": jitter(tt_intervals),
        "et_sent": sent["n"],
        "et_delivered": len(et_latencies),
        "et_p95_latency": summarize(et_latencies).p95 if et_latencies else 0.0,
        "et_drops": vn_et.send_drops,
    }


def run_experiment() -> list[tuple[int, dict]]:
    rates = (0, 100, 1_000, 5_000, 20_000, 60_000)
    return [(r, run_point(r)) for r in rates]


def test_e2_virtual_networks(run_once):
    points = run_once(run_experiment)

    table = Table("E2: TT vs ET virtual networks on one physical bus",
                  ["ET load (msg/s)", "TT deliveries", "TT jitter (ns)",
                   "ET delivered/sent", "ET p95 latency (us)", "ET queue drops"])
    series = Series("E2 (figure): temporal independence sweep",
                    "ET offered load (msg/s)", "TT jitter (ns) / ET p95 (us)")
    for rate, r in points:
        ratio = (f"{r['et_delivered']}/{r['et_sent']}"
                 if r["et_sent"] else "-")
        table.add_row(rate, r["tt_deliveries"], r["tt_jitter"], ratio,
                      round(r["et_p95_latency"] / 1000, 1), r["et_drops"])
        series.add("tt-jitter", rate, r["tt_jitter"])
        series.add("et-p95-us", rate, round(r["et_p95_latency"] / 1000, 1))
    table.print()
    series.print()

    # Shape: TT untouched at every load; ET degrades beyond its share.
    for rate, r in points:
        assert r["tt_jitter"] == 0, f"TT jitter nonzero at ET load {rate}"
    idle_tt = points[0][1]["tt_deliveries"]
    for rate, r in points:
        assert r["tt_deliveries"] == idle_tt
    # ET latency at overload >> ET latency at light load.
    light = points[1][1]["et_p95_latency"]
    heavy = points[-1][1]["et_p95_latency"]
    assert heavy > light * 5
    # Overload loses messages (drops or undelivered backlog).
    last = points[-1][1]
    assert last["et_drops"] > 0 or last["et_delivered"] < last["et_sent"]
