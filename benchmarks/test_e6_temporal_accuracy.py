"""E6 — Fig. 5's repository semantics: temporal accuracy and queues.

Paper claims (Sec. IV-A): state elements carry ``d_acc``/``t_update``
meta information "to ensure that only temporally accurate real-time
images are forwarded by the gateway" (Eq. 1, direction-corrected — see
repro.gateway.repository); ``horizon(m)`` (Eq. 2) is the minimum
remaining validity; event elements are consumed exactly once from
queues whose size derives from the interarrival/service relationship.

Regenerated figures: (a) forwarded fraction vs. d_acc for a producer
that goes quiet — the gateway must stop forwarding stale images at
exactly the configured horizon; (b) event loss vs. queue depth under an
interarrival/service imbalance, compared against the analytic sizing
rule.
"""

from __future__ import annotations

from repro.analysis import Series, Table
from repro.gateway import GatewayRepository
from repro.messaging import Semantics
from repro.sim import MS, SEC
from repro.spec import ETTiming


# ----------------------------------------------------------------------
# (a) temporal accuracy sweep
# ----------------------------------------------------------------------
def accuracy_sweep(d_acc_values) -> list[dict]:
    """Producer updates every 10 ms for 1 s, then goes silent; a TT
    consumer samples every 10 ms for 3 s.  Count forwarded samples."""
    out = []
    for d_acc in d_acc_values:
        repo = GatewayRepository()
        repo.declare("Image", Semantics.STATE, d_acc=d_acc)
        forwarded = 0
        attempts = 0
        t = 0
        while t < 3 * SEC:
            if t <= 1 * SEC:
                repo.store("Image", {"v": t}, t)
            attempts += 1
            if repo.available("Image", t):
                forwarded += 1
            t += 10 * MS
        # Analytic expectation: forwards until 1 s + d_acc.
        expected = min(3 * SEC, 1 * SEC + d_acc) // (10 * MS)
        out.append({"d_acc": d_acc, "forwarded": forwarded,
                    "attempts": attempts, "expected": expected})
    return out


# ----------------------------------------------------------------------
# (b) event queue sizing
# ----------------------------------------------------------------------
def queue_sweep(depths, bursts=50, burst_size=6) -> list[dict]:
    """Temporary imbalance (Sec. IV): bursts of ``burst_size`` arrivals
    1 ms apart every 100 ms; the consumer services one instance every
    3 ms continuously.  Loss vs. queue depth, against ETTiming's
    analytic sizing (margin 2 covers the burst tail)."""
    et = ETTiming(min_interarrival=1 * MS, service_time=3 * MS)
    suggestion = et.suggested_queue_depth(margin=2.0)
    out = []
    total = bursts * burst_size
    for depth in depths:
        repo = GatewayRepository()
        repo.declare("Ev", Semantics.EVENT, depth=depth)
        lost = 0
        next_service = 0
        for k in range(bursts):
            for j in range(burst_size):
                t = k * 100 * MS + j * 1 * MS
                while next_service <= t:
                    repo.take("Ev", next_service)
                    next_service += 3 * MS
                if not repo.store("Ev", {"n": (k, j)}, t):
                    lost += 1
        out.append({"depth": depth, "lost": lost, "stored": total - lost,
                    "suggested": suggestion})
    return out


# ----------------------------------------------------------------------
# (c) horizon (Eq. 2)
# ----------------------------------------------------------------------
def horizon_check() -> dict:
    repo = GatewayRepository()
    repo.declare("A", Semantics.STATE, d_acc=50 * MS)
    repo.declare("B", Semantics.STATE, d_acc=20 * MS)
    repo.declare("E", Semantics.EVENT)
    repo.store("A", {"v": 1}, 0)
    repo.store("B", {"v": 2}, 10 * MS)
    now = 15 * MS
    h = repo.horizon(["A", "B", "E"], now)
    return {"horizon": h, "expected": min(50 * MS - now, 10 * MS + 20 * MS - now)}


def run_experiment() -> dict:
    return {
        "accuracy": accuracy_sweep([20 * MS, 100 * MS, 500 * MS, 2 * SEC]),
        "queues": queue_sweep([1, 2, 3, 4, 8]),
        "horizon": horizon_check(),
    }


def test_e6_temporal_accuracy(run_once):
    r = run_once(run_experiment)

    t1 = Table("E6a: stale-image gating vs d_acc (Eq. 1; producer stops at 1 s)",
               ["d_acc (ms)", "samples forwarded", "analytic expectation",
                "sampling attempts"])
    s1 = Series("E6a (figure): forwarded samples vs d_acc",
                "d_acc (ms)", "forwarded")
    for row in r["accuracy"]:
        t1.add_row(row["d_acc"] // MS, row["forwarded"], row["expected"],
                   row["attempts"])
        s1.add("forwarded", row["d_acc"] // MS, row["forwarded"])
    t1.print()
    s1.print()

    t2 = Table("E6b: event loss vs queue depth (1 ms arrivals, 3 ms service)",
               ["queue depth", "events lost", "events kept",
                "analytic minimum depth"])
    for row in r["queues"]:
        t2.add_row(row["depth"], row["lost"], row["stored"], row["suggested"])
    t2.print()

    print(f"\nE6c: horizon(m) = {r['horizon']['horizon'] / MS:.0f} ms "
          f"(expected {r['horizon']['expected'] / MS:.0f} ms, Eq. 2)")

    # Shape assertions.
    for row in r["accuracy"]:
        assert abs(row["forwarded"] - row["expected"]) <= 1
    # Loss decreases monotonically with depth and hits ~0 at the
    # analytic sizing.
    losses = [row["lost"] for row in r["queues"]]
    assert all(a >= b for a, b in zip(losses, losses[1:]))
    assert losses[0] > 0  # depth 1 cannot absorb the burst
    at_suggested = next(row for row in r["queues"]
                        if row["depth"] >= row["suggested"])
    assert at_suggested["lost"] == 0  # the analytic sizing suffices
    assert r["horizon"]["horizon"] == r["horizon"]["expected"]
