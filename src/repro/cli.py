"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user one-command access to the headline scenarios
without writing any code:

* ``car``        — run the full automotive system (skid trip) and print
  the cross-DAS event timeline plus per-gateway statistics.
* ``roof``       — the Fig. 6 sliding-roof gateway demo (XML-driven).
* ``audit``      — build the car and print its encapsulation audit.
* ``inventory``  — print the E10 architecture resource table.
* ``version``    — print the package version.
"""

from __future__ import annotations

import argparse
import os
import sys

from .sim import MS, RUNTIME_NAMES, SEC


def _cmd_car(args: argparse.Namespace) -> int:
    from .apps import CarConfig, build_car
    from .errors import ConfigurationError

    if args.trace_mode == "stream" and not args.trace_file:
        print("error: --trace-mode stream requires --trace-file",
              file=sys.stderr)
        return 2
    car = build_car(CarConfig(seed=args.seed, trace_mode=args.trace_mode,
                              trace_stream=args.trace_file,
                              flow_tracing=args.flow_tracing,
                              profile=args.profile,
                              round_template=args.round_template))
    if args.runtime != "sim" or args.pace is not None:
        from .sim import make_runtime

        try:
            car.sim.set_runtime(make_runtime(args.runtime, pace=args.pace))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    horizon = int(args.seconds * SEC)
    # The trace is a context manager: stream / flight-recorder sinks are
    # flushed and closed on every exit path, exceptions included.
    with car.sim.trace as trace:
        car.run_for(horizon)
        print(f"ran the integrated car for {args.seconds:.1f} simulated seconds "
              f"(trace mode: {args.trace_mode})")
        onsets = car.vehicle.skid_onsets()
        if onsets and car.presafe.detections:
            latency = (car.presafe.detections[0] - onsets[0]) / MS
            print(f"  skid at {onsets[0] / SEC:.1f}s detected by presafe "
                  f"+{latency:.1f}ms later")
        if car.roof.closed_at is not None:
            print(f"  sliding roof closed at {car.roof.closed_at / SEC:.2f}s")
        print(f"  navigation max position error: {car.navigator.max_error():.2f} m")
        for name, gw in sorted(car.system.gateways.items()):
            print(f"  {name}: received={gw.instances_received} "
                  f"forwarded={gw.instances_forwarded} "
                  f"blocked={gw.instances_blocked} restarts={gw.restarts}")
        counts = trace.category_counts()
        if counts:
            total = sum(counts.values())
            print(f"  trace: {total:,} records in {len(counts)} categories")
        if args.runtime != "sim":
            stats = car.sim.runtime.stats()
            line = f"  runtime {stats['name']}"
            if stats.get("pace") is not None:
                line += f" (pace {stats['pace']:g}x)"
            if "deadline_misses" in stats:
                line += (f": deadline misses={stats['deadline_misses']} "
                         f"max lag={stats['max_lag_ns'] / MS:.2f}ms "
                         f"slept={stats['slept_ns'] / SEC:.2f}s")
            print(line)
        if args.flow_tracing and trace.memory is not None:
            from .analysis import FlowSet

            summary = FlowSet.from_trace(trace).summary()
            print(f"  flows: {summary['flows']} traced, outcomes "
                  + ", ".join(f"{k}={v}" for k, v in summary["outcomes"].items() if v))
        if args.metrics:
            from .analysis import metrics_table

            metrics_table(car.sim.metrics, title="car metrics").print()
        if args.metrics_json:
            from .analysis import write_metrics_json

            write_metrics_json(car.sim.metrics, args.metrics_json)
            print(f"  metrics snapshot written to {args.metrics_json}")
        if args.metrics_prom:
            from .analysis import write_prometheus

            write_prometheus(car.sim.metrics, args.metrics_prom)
            print(f"  prometheus exposition written to {args.metrics_prom}")
    if args.trace_file and args.trace_mode == "stream":
        print(f"  trace stream written to {args.trace_file}")
    return 0


def _cmd_roof(args: argparse.Namespace) -> int:
    from examples import sliding_roof_xml  # type: ignore[import-not-found]

    sliding_roof_xml.main()
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .apps import CarConfig, build_car
    from .systems import EncapsulationAudit

    car = build_car(CarConfig(seed=args.seed))
    audit = EncapsulationAudit(car.system)
    audit.run()
    print(audit.report())
    return 0 if audit.clean else 1


def _cmd_inventory(args: argparse.Namespace) -> int:
    from .analysis import Table
    from .systems import ArchitectureModel

    # Import the E10 demand model lazily; fall back to a local copy so
    # the CLI works without the benchmarks directory installed.
    try:
        sys.path.insert(0, "benchmarks")
        from test_e10_architectures import automotive_requirements  # type: ignore
        req = automotive_requirements()
    except Exception:
        from .systems import DASRequirement, SystemRequirements

        req = SystemRequirements(
            dass=(
                DASRequirement("abs", jobs=4, sensed_quantities=("wheel-speed",)),
                DASRequirement("navigation", jobs=3, sensed_quantities=("gps",),
                               importable=("wheel-speed",)),
            ),
            sensors_per_quantity={"wheel-speed": 4, "gps": 1},
        )
    table = Table("architecture resource inventories",
                  ["architecture", "ECUs", "networks", "wires", "connectors",
                   "sensors", "gateways"])
    for inv in ArchitectureModel(req).all_inventories():
        table.add_row(*inv.as_row())
    table.print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .errors import PreflightError
    from .runner import SweepRunner, default_registry, filter_scenarios, sweep_table

    admission = None
    if args.generated:
        from .generate import admit, generate_candidates
        from .runner.cache import CheckCache

        candidates = generate_candidates(args.generated, args.gen_profile,
                                         base_seed=args.base_seed)
        check_cache = None if args.no_cache else CheckCache(args.cache_dir)
        specs, summary = admit(candidates, check_cache)
        admission = summary.as_dict()
        rules = ", ".join(f"{r}x{n}"
                          for r, n in admission["rejected_rules"].items())
        print(f"generated {summary.total} candidates "
              f"(profile={args.gen_profile}, base_seed={args.base_seed}): "
              f"{summary.admitted} admitted, {summary.rejected} rejected "
              f"({summary.rejection_rate:.0%})"
              + (f" [{rules}]" if rules else ""), file=sys.stderr)
    else:
        registry = default_registry(base_seed=args.base_seed)
        tokens = [t for expr in (args.filter or [])
                  for t in expr.split(",") if t]
        specs = filter_scenarios(registry, tokens)
    if args.list:
        for spec in specs:
            tags = ",".join(spec.tags)
            print(f"{spec.name:28s} builder={spec.builder:18s} "
                  f"horizon={spec.horizon_ns / SEC:g}s seed={spec.seed} [{tags}]")
        return 0
    if not specs:
        if args.generated:
            print("error: every generated candidate was rejected by "
                  "admission", file=sys.stderr)
        else:
            print(f"error: no scenarios match filter {tokens!r}",
                  file=sys.stderr)
        return 2
    if not args.round_template:
        specs = [spec.with_param("round_template", False) for spec in specs]
    if args.pace is not None and args.runtime == "sim":
        print("error: --pace requires --runtime realtime or asyncio",
              file=sys.stderr)
        return 2
    if args.runtime != "sim":
        # Recorded in the spec params, so cache keys (and worker-side
        # construction) carry the runtime choice.
        specs = [spec.with_param("runtime", args.runtime) for spec in specs]
        if args.pace is not None:
            specs = [spec.with_param("pace", args.pace) for spec in specs]

    if args.bench_compare:
        return _sweep_bench_compare(args, specs)

    monitor = None
    if args.progress or args.events:
        from .runner import SweepMonitor

        monitor = SweepMonitor(events_path=args.events, render=args.progress)
    runner = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                         use_cache=not args.no_cache, strict=args.strict,
                         use_ledger=not args.no_ledger, monitor=monitor)
    try:
        report = runner.run(specs)
    except PreflightError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if admission is not None:
        report["generated"] = admission
    if args.events:
        print(f"telemetry events streamed to {args.events}", file=sys.stderr)
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    elif args.generated and report["count"] > 50:
        # A thousand-row table helps nobody; campaigns get a summary.
        print(f"campaign: {report['count']} scenarios, "
              f"{report['executed']} executed, "
              f"{report['cache_hits']} warm, "
              f"{len(report['errors'])} errors, "
              f"{report['wall_s']:.2f}s "
              f"({report['count'] / report['wall_s']:.1f} runs/s)")
        for name in report["errors"][:10]:
            result = next(r for r in report["scenarios"] if r["name"] == name)
            print(f"--- {name} failed ---\n{result['error']}", file=sys.stderr)
    else:
        sweep_table(report).print()
        for name in report["errors"]:
            result = next(r for r in report["scenarios"] if r["name"] == name)
            print(f"--- {name} failed ---\n{result['error']}", file=sys.stderr)
    return 1 if report["errors"] else 0


def _sweep_bench_compare(args: argparse.Namespace, specs) -> int:
    """Serial-cold vs parallel-cold vs warm-cache comparison, recorded
    as the ``sweep`` section of BENCH_substrate.json.

    On a single-core host a "parallel" pool can only time-slice one CPU,
    so the parallel comparison would be noise presented as signal — it
    is skipped and the section says so, instead of recording a
    sub-1.0x "speedup" with a straight face.
    """
    import json
    from datetime import datetime, timezone

    from .runner import SweepRunner, provenance, update_bench_json

    cpu_count = os.cpu_count() or 1
    names = [s.name for s in specs]
    print(f"bench-compare over {len(specs)} scenarios: {', '.join(names)}")
    serial = SweepRunner(workers=1, cache_dir=args.cache_dir,
                         use_cache=False).run(specs)
    print(f"  serial cold   ({serial['workers']} worker):  {serial['wall_s']:.2f}s")
    compare_parallel = cpu_count > 1 and args.workers > 1
    if compare_parallel:
        parallel = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                               use_cache=False).run(specs)
        print(f"  parallel cold ({parallel['workers']} workers): "
              f"{parallel['wall_s']:.2f}s")
    else:
        parallel = None
        print(f"  parallel cold: skipped (cpu_count={cpu_count}, "
              f"workers={args.workers} — no real parallelism to measure)")
    warm = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                       use_cache=True).run(specs)
    print(f"  warm cache    ({warm['workers']} workers): {warm['wall_s']:.2f}s "
          f"({warm['cache_hits']} hits)")

    reports = [serial, warm] if parallel is None else [serial, parallel, warm]
    digests = [[r.get("digest") for r in report["scenarios"]]
               for report in reports]
    identical = all(d == digests[0] for d in digests)
    errors = any(report["errors"] for report in reports)
    cold_s = serial["wall_s"] if parallel is None else parallel["wall_s"]

    def tpl_hits(report: dict) -> int:
        return sum(1 for r in report["scenarios"]
                   if r.get("template_cache", {}).get("hit"))

    section = {
        "scenarios": names,
        "cpu_count": cpu_count,
        "round_template": bool(args.round_template),
        "template_hits_serial": tpl_hits(serial),
        "template_hits_warm": tpl_hits(warm),
        "serial_s": serial["wall_s"],
        "parallel_s": None if parallel is None else parallel["wall_s"],
        "parallel_workers": None if parallel is None else parallel["workers"],
        "parallel_speedup": None if parallel is None else round(
            serial["wall_s"] / parallel["wall_s"], 3),
        "parallel_skipped": parallel is None,
        "warm_s": warm["wall_s"],
        "warm_speedup_vs_cold": round(cold_s / warm["wall_s"], 3),
        "warm_cache_hits": warm["cache_hits"],
        "digests_identical": identical,
        "provenance": provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds")),
    }
    update_bench_json(args.bench_out, "sweep", section)
    if parallel is None:
        print(f"  warm speedup {section['warm_speedup_vs_cold']}x vs serial "
              f"cold, digests identical: {identical}")
    else:
        print(f"  parallel speedup {section['parallel_speedup']}x, "
              f"warm speedup {section['warm_speedup_vs_cold']}x, "
              f"digests identical: {identical}")
    print(f"  wrote sweep section to {args.bench_out}")
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    return 1 if (errors or not identical) else 0


# ----------------------------------------------------------------------
# repro obs — observability: flow journeys, aggregation, comparison
# ----------------------------------------------------------------------
def _cmd_obs_flows(args: argparse.Namespace) -> int:
    """Run the car with flow tracing and reconstruct cross-VN journeys."""
    from .analysis import FlowSet
    from .apps import CarConfig, build_car
    from .gateway.filters import FilterChain, MinIntervalFilter

    filters = None
    if args.block_demo:
        # Deterministic block demonstration: wheel speeds arrive at the
        # abs->navigation gateway every sensor period (10 ms); a
        # min-interval filter of 25 ms forwards ~1 in 3 and blocks the
        # rest, so the journey set always contains both outcomes.
        filters = FilterChain(MinIntervalFilter(min_interval=25 * MS))
    car = build_car(CarConfig(seed=args.seed, flow_tracing=True,
                              nav_import_filters=filters))
    with car.sim.trace as trace:
        car.run_for(int(args.seconds * SEC))
        flows = FlowSet.from_trace(trace)
    summary = flows.summary()
    print(f"reconstructed {summary['flows']} flows from "
          f"{args.seconds:g}s of the integrated car")
    print("  outcomes: " + ", ".join(
        f"{k}={v}" for k, v in summary["outcomes"].items() if v))
    if summary["block_reasons"]:
        print("  block reasons: " + ", ".join(
            f"{k}={v}" for k, v in summary["block_reasons"].items()))
    print(f"  complete cross-VN journeys (stored at a gateway, child "
          f"delivered): {summary['cross_vn_complete']}")
    for name, stats in summary["legs"].items():
        print(f"  leg {name:28s} n={stats['count']:<6d} "
              f"min={stats['min']:>9d}ns mean={stats['mean']:>12.1f}ns "
              f"max={stats['max']:>9d}ns")
    if summary["end_to_end"]:
        e = summary["end_to_end"]
        print(f"  end-to-end            n={e['count']:<6d} "
              f"min={e['min']}ns mean={e['mean']:.1f}ns max={e['max']}ns")

    shown = 0
    for outcome in ("forwarded", "blocked"):
        example = flows.example(outcome)
        if example is not None:
            print(f"\nexample {outcome} journey:")
            print(flows.timeline(example.flow, indent="  "))
            shown += 1
    if args.out:
        flows.to_ndjson(args.out)
        print(f"\njourneys exported to {args.out}")
    if args.json:
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
    complete = summary["cross_vn_complete"]
    blocked = summary["outcomes"].get("blocked", 0)
    if complete < 1 or (args.block_demo and blocked < 1):
        print("error: expected at least one complete cross-VN flow "
              "(and a blocked one with --block-demo)", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_aggregate(args: argparse.Namespace) -> int:
    """Aggregate metrics/flow stats across a sweep's cached results."""
    from .runner import aggregate_results, load_cached_results, observability_report

    results = load_cached_results(args.cache_dir, names=args.scenario or None)
    if not results:
        print(f"error: no cached results under {args.cache_dir!r} "
              "(run `repro sweep` first)", file=sys.stderr)
        return 2
    aggregate = aggregate_results(results)
    report = observability_report(
        aggregate, title=f"Observability report — {args.cache_dir}")
    if args.json:
        import json

        print(json.dumps(aggregate, indent=2, sort_keys=True))
    else:
        print(report)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report)
        print(f"report written to {args.out}")
    return 0


def _load_snapshot(path: str) -> dict:
    """A metrics snapshot from a file: either a bare snapshot (as written
    by ``write_metrics_json``/``car --metrics-json``) or any JSON object
    with a ``metrics`` key (an aggregate or a cached sweep result)."""
    import json

    data = json.loads(open(path).read())
    if isinstance(data, dict) and "metrics" in data and isinstance(data["metrics"], dict):
        return data["metrics"]
    return data if isinstance(data, dict) else {}


def _cmd_obs_compare(args: argparse.Namespace) -> int:
    """Counter deltas and histogram shifts between two runs."""
    from .runner import compare_snapshots

    comparison = compare_snapshots(_load_snapshot(args.base),
                                   _load_snapshot(args.other))
    if args.json:
        import json

        print(json.dumps(comparison, indent=2, sort_keys=True))
        return 0
    changed = {n: row for n, row in comparison["counters"].items() if row["delta"]}
    print(f"compared {args.base} -> {args.other}: "
          f"{len(changed)}/{len(comparison['counters'])} counters changed")
    for name, row in changed.items():
        print(f"  {name:36s} {row['base']:>12d} -> {row['other']:>12d} "
              f"({row['delta']:+d})")
    for name, row in comparison["histograms"].items():
        if row["count_delta"] or row["mean_shift"]:
            print(f"  {name:36s} count {row['count_delta']:+d}, "
                  f"mean shift {row['mean_shift']:+.1f}, "
                  f"p95 shift {row['p95_shift']}")
    return 0


def _cmd_obs_bench_overhead(args: argparse.Namespace) -> int:
    """Trace-overhead guard: counters mode and counters+flow-tracing must
    stay within ``--budget``x of the trace-off wall time."""
    import json
    import time
    from datetime import datetime, timezone

    from .apps import CarConfig, build_car
    from .runner import provenance, update_bench_json

    horizon = int(args.seconds * SEC)

    def measure(label: str, **cfg_kwargs) -> float:
        best = float("inf")
        for _ in range(args.repeat):
            car = build_car(CarConfig(seed=0, **cfg_kwargs))
            t0 = time.perf_counter()
            car.run_for(horizon)
            best = min(best, time.perf_counter() - t0)
            car.sim.trace.close()
        print(f"  {label:24s} {best:.3f}s (best of {args.repeat})")
        return best

    print(f"trace-overhead guard over {args.seconds:g}s of the car:")
    off = measure("trace off", trace_mode="off")
    counters = measure("counters", trace_mode="counters")
    flow = measure("counters + flow", trace_mode="counters", flow_tracing=True)

    counters_x = counters / off
    flow_x = flow / off
    ok = counters_x <= args.budget and flow_x <= args.budget
    section = {
        "horizon_s": args.seconds,
        "off_s": round(off, 6),
        "counters_s": round(counters, 6),
        "flow_s": round(flow, 6),
        "counters_overhead_x": round(counters_x, 3),
        "flow_overhead_x": round(flow_x, 3),
        "budget_x": args.budget,
        "within_budget": ok,
        "provenance": provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            iterations=args.repeat),
    }
    update_bench_json(args.bench_out, "observability", section)
    print(f"  counters {counters_x:.2f}x, flow {flow_x:.2f}x of trace-off "
          f"(budget {args.budget:.2f}x) -> {'OK' if ok else 'OVER BUDGET'}")
    print(f"  wrote observability section to {args.bench_out}")
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    return 0 if ok else 1


def _cmd_bench_runtime(args: argparse.Namespace) -> int:
    """Paced-runtime overhead guard: the paced dispatch loop (at a high
    pacing ratio, so sleeping is negligible and the loop itself is what
    gets measured) must stay within a small factor of the simulated
    runtime on the same scenario, with byte-identical digests."""
    import json
    from datetime import datetime, timezone

    from .runner import default_registry, provenance, run_scenario, update_bench_json

    registry = default_registry()
    spec = registry.get(args.scenario)
    if spec is None:
        print(f"error: unknown scenario {args.scenario!r} "
              f"(see `repro sweep --list`)", file=sys.stderr)
        return 2

    def measure(label: str, s):
        best = None
        for _ in range(args.repeat):
            result = run_scenario(s)
            if best is None or result["wall_s"] < best["wall_s"]:
                best = result
        print(f"  {label:24s} {best['wall_s']:.3f}s (best of {args.repeat})")
        return best

    print(f"runtime-overhead guard over scenario {spec.name!r}:")
    base = measure("simulated", spec)
    paced_spec = (spec.with_param("runtime", "realtime")
                      .with_param("pace", args.pace))
    paced = measure(f"paced {args.pace:g}x", paced_spec)

    overhead_x = paced["wall_s"] / base["wall_s"] if base["wall_s"] else 1.0
    digest_match = paced["digest"] == base["digest"]
    stats = paced.get("runtime_stats", {})
    section = {
        "scenario": spec.name,
        "pace": args.pace,
        "sim_s": base["wall_s"],
        "paced_s": paced["wall_s"],
        "paced_overhead_x": round(overhead_x, 3),
        "digest_match": digest_match,
        "deadline_misses": stats.get("deadline_misses"),
        "max_lag_ms": round(stats.get("max_lag_ns", 0) / MS, 3),
        "slept_s": round(stats.get("slept_ns", 0) / SEC, 6),
        "provenance": provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            iterations=args.repeat),
    }
    update_bench_json(args.bench_out, "runtime", section)
    print(f"  paced overhead {overhead_x:.2f}x vs simulated, "
          f"digests identical: {digest_match}, "
          f"deadline misses: {stats.get('deadline_misses')}")
    print(f"  wrote runtime section to {args.bench_out}")
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    return 0 if digest_match else 1


# ----------------------------------------------------------------------
# repro check — the pre-simulation static verifier
# ----------------------------------------------------------------------
def _select_rules(expr: str) -> tuple[set[str], list[str]]:
    """Resolve a ``--rules`` expression to rule ids.

    Comma-separated tokens, each an exact rule id or a family prefix
    (``FLOW``, ``SCHED``); returns (selected ids, unknown tokens).
    """
    from .check import RULES

    selected: set[str] = set()
    unknown: list[str] = []
    for token in (t.strip() for t in expr.split(",")):
        if not token:
            continue
        matches = {rid for rid in RULES if rid == token or rid.startswith(token)}
        if matches:
            selected |= matches
        else:
            unknown.append(token)
    return selected, unknown


def _cmd_check_bounds(args: argparse.Namespace) -> int:
    """``repro check bounds`` — empirical soundness cross-validation of
    the static flow bounds (FLOW family) against traced scenario runs."""
    import json
    from datetime import datetime, timezone

    from .check.validate import validate_registry
    from .runner import provenance, update_bench_json

    tokens = [t for expr in args.paths[1:] for t in expr.split(",") if t]
    summary = validate_registry(None if args.all or not tokens else tokens)

    for name, result in summary["scenarios"].items():
        tight = result["min_tightness"]
        print(f"  {name:28s} flows={result['flows']:6d} "
              f"violations={len(result['violations'])} "
              f"min_tightness={'-' if tight is None else f'{tight:.2f}x'}")
        for v in result["violations"]:
            print(f"    VIOLATION {v['kind']} {v['name']}: observed "
                  f"{v['observed_ns']}ns > bound {v['bound_ns']}ns")

    section = {
        "scenario_count": summary["scenario_count"],
        "compared": summary["compared"],
        "violations": summary["violations"],
        "min_tightness": summary["min_tightness"],
        "per_scenario": {
            name: result["min_tightness"]
            for name, result in summary["scenarios"].items()
        },
        "provenance": provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds")),
    }
    update_bench_json(args.bench_out, "flow_bounds", section)
    ok = summary["violations"] == 0
    tight = summary["min_tightness"]
    print(f"  {summary['compared']} bounds compared over "
          f"{summary['scenario_count']} scenarios: "
          f"{summary['violations']} violation"
          f"{'' if summary['violations'] == 1 else 's'}, min tightness "
          f"{'-' if tight is None else f'{tight:.2f}x'} -> "
          f"{'SOUND' if ok else 'UNSOUND'}")
    print(f"  wrote flow_bounds section to {args.bench_out}")
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if ok else 1


def _cmd_check(args: argparse.Namespace) -> int:
    """Run the static analyzers (spec / automata / schedule families)
    and the determinism lint without executing any scenario."""
    import sys

    from .check import (
        RULES,
        Baseline,
        CheckReport,
        builtin_targets,
        gather_targets,
        lint_paths,
        render_json,
        render_text,
        scenario_targets,
    )

    if args.rules == "":
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0
    selected: set[str] | None = None
    if args.rules is not None:
        selected, unknown = _select_rules(args.rules)
        if unknown:
            known = ", ".join(sorted(RULES))
            print(f"repro check: unknown rule or family "
                  f"{', '.join(repr(t) for t in unknown)} (known: {known})",
                  file=sys.stderr)
            return 2

    if args.paths and args.paths[0] == "bounds":
        return _cmd_check_bounds(args)

    cache = None
    if not args.no_cache:
        from .runner.cache import CheckCache

        cache = CheckCache(args.cache_dir)

    targets = []
    if args.paths:
        targets.extend(gather_targets(args.paths))
    if args.scenarios is not None:
        tokens = [t for expr in args.scenarios for t in expr.split(",") if t]
        targets.extend(scenario_targets(tokens or None, cache=cache))
    if not args.paths and args.scenarios is None and not args.self:
        targets.extend(builtin_targets())
        targets.extend(scenario_targets(cache=cache))

    report = CheckReport()
    for target in targets:
        report.extend(target.diagnostics())
        report.targets_checked += 1
    if args.self:
        report.extend(lint_paths())
        report.targets_checked += 1

    if selected is not None:
        report.diagnostics = [d for d in report.diagnostics
                              if d.rule in selected]

    if args.update_baseline:
        Baseline.load(args.update_baseline).record(report).save(args.update_baseline)
        print(f"baseline updated: {args.update_baseline}")
    elif args.baseline:
        Baseline.load(args.baseline).apply(report)

    render = render_json if args.format == "json" else render_text
    print(render(report))
    if not report.ok:
        return 1
    if args.strict and report.warnings():
        return 1
    return 0


# ----------------------------------------------------------------------
# repro ledger — provenance ledger: history, trends, replay-parity audit
# ----------------------------------------------------------------------
def _ledger(args: argparse.Namespace):
    from pathlib import Path

    from .ledger import RunLedger
    from .runner import LEDGER_FILENAME

    return RunLedger(Path(args.cache_dir) / LEDGER_FILENAME)


def _cmd_ledger_show(args: argparse.Namespace) -> int:
    """Print recorded runs (newest last), or the ledger stats summary."""
    import json

    ledger = _ledger(args)
    entries = ledger.entries(name=args.scenario, include_rotated=True)
    if args.last:
        entries = entries[-args.last:]
    if args.json:
        print(json.dumps({"stats": ledger.stats(), "entries": entries},
                         indent=2, sort_keys=True))
        return 0
    stats = ledger.stats()
    print(f"ledger {stats['path']}: {stats['entries']} entries, "
          f"{stats['total_bytes']:,} bytes in {len(stats['files'])} file"
          f"{'' if len(stats['files']) == 1 else 's'}"
          + (f", {stats['skipped_lines']} unparseable line"
             f"{'' if stats['skipped_lines'] == 1 else 's'} skipped"
             if stats["skipped_lines"] else ""))
    if not entries:
        print("  (no matching entries — run `repro sweep` to record some)")
        return 0
    for e in entries:
        tpl = e.get("round_template") or {}
        print(f"  {e.get('ts', '?'):25s} {e['name']:28s} "
              f"digest={e['digest'][:12]} code={e.get('code_digest', '?')[:8]} "
              f"wall={e.get('wall_s', 0):.3f}s runtime={e.get('runtime', 'sim')}"
              + (f" ff={tpl.get('events_fast_forwarded', 0):,}" if tpl else ""))
    return 0


def _cmd_ledger_trends(args: argparse.Namespace) -> int:
    """Per-scenario history roll-up: wall-time trend, digest stability."""
    import json

    from .ledger import ledger_trends

    ledger = _ledger(args)
    trends = ledger_trends(ledger.entries(include_rotated=True))
    if args.json:
        print(json.dumps(trends, indent=2, sort_keys=True))
        return 0
    if not trends["scenarios"]:
        print("ledger is empty — run `repro sweep` to record some runs")
        return 0
    print(f"ledger trends over {trends['entries']} entries:")
    for name, row in trends["scenarios"].items():
        wall = row["wall_s"]
        print(f"  {name:28s} n={row['entries']:<4d} "
              f"wall min={wall['min']}s last={wall['last']}s "
              f"codes={row['codes']} digests={row['digests']} "
              f"stable={'yes' if row['digest_stable'] else 'NO'}")
    print(f"  digest-stable across all recorded configurations: "
          f"{'yes' if trends['all_stable'] else 'NO'}")
    return 0


def _cmd_ledger_verify(args: argparse.Namespace) -> int:
    """Replay-parity audit: re-run recorded entries, compare digests."""
    import json

    from .ledger import verify_entries
    from .runner import code_digest

    ledger = _ledger(args)
    entries = ledger.entries(name=args.scenario, include_rotated=True)
    if not entries:
        print(f"error: no ledger entries under {args.cache_dir!r} "
              "(run `repro sweep` first)", file=sys.stderr)
        return 2

    def progress(outcome: dict) -> None:
        if not args.json:
            print(f"  {outcome['name']:28s} {outcome['verdict']:8s} "
                  f"recorded={outcome['recorded_digest'][:12]} "
                  f"replayed={outcome['replayed_digest'][:12]} "
                  f"({outcome['wall_s']:.3f}s)")

    sample = None if args.all else args.sample
    if not args.json:
        scope = "all" if sample is None else f"newest {sample}"
        print(f"replay-parity audit ({scope} distinct configurations, "
              f"{len(entries)} entries on record):")
    report = verify_entries(entries, code_digest(), sample=sample,
                            strict=args.strict, progress=progress)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"  checked {report['checked']}/{report['distinct']} distinct: "
              f"{report['parity']} parity, {report['drift']} drift, "
              f"{report['mismatch']} mismatch -> "
              f"{'OK' if report['ok'] else 'FAIL'}")
        if report["drift"] and not args.strict:
            print("  (drift is attributed to a code-digest change; "
                  "--strict makes it a failure)")
    return 0 if report["ok"] else 1


def _cmd_ledger_bench(args: argparse.Namespace) -> int:
    """Ledger-overhead guard: running scenarios with the durable ledger
    enabled must stay within ``--budget``x of running them without it."""
    import json
    import tempfile
    import time
    from datetime import datetime, timezone
    from pathlib import Path

    from .ledger import RunLedger, record_from_result
    from .runner import (
        code_digest,
        default_registry,
        filter_scenarios,
        provenance,
        run_scenario,
        update_bench_json,
    )

    registry = default_registry()
    specs = filter_scenarios(registry, [args.filter])
    if not specs:
        print(f"error: no scenarios match filter {args.filter!r}",
              file=sys.stderr)
        return 2
    specs = [s.with_param("round_template", False) for s in specs]
    names = [s.name for s in specs]
    print(f"ledger-overhead guard over {len(specs)} scenarios: "
          f"{', '.join(names)}")

    with tempfile.TemporaryDirectory() as tmp:
        ledger_path = str(Path(tmp) / "bench-ledger.ndjsonl")

        def leg(path: str | None) -> float:
            t0 = time.perf_counter()
            for spec in specs:
                run_scenario(spec, ledger_path=path)
            return time.perf_counter() - t0

        # Warm-up (imports, first model build), then interleave the two
        # legs so machine-state drift hits both equally: the measured
        # ratio isolates the ledger append, not the benchmark's weather.
        leg(None)
        off = on = float("inf")
        for _ in range(args.repeat):
            off = min(off, leg(None))
            on = min(on, leg(ledger_path))
        print(f"  {'ledger off':24s} {off:.3f}s (best of {args.repeat})")
        print(f"  {'ledger on':24s} {on:.3f}s (best of {args.repeat})")

        # Micro append rate: serialize + O_APPEND + fsync for one record.
        sample = run_scenario(specs[0])
        record = record_from_result(specs[0], sample, code_digest())
        micro = RunLedger(Path(tmp) / "micro.ndjsonl")
        appends = 64
        t0 = time.perf_counter()
        for _ in range(appends):
            micro.append(record)
        append_s = (time.perf_counter() - t0) / appends

    overhead_x = on / off if off else 1.0
    ok = overhead_x <= args.budget
    section = {
        "scenarios": names,
        "off_s": round(off, 6),
        "on_s": round(on, 6),
        "append_overhead_x": round(overhead_x, 3),
        "append_ms": round(append_s * 1e3, 3),
        "appends_per_s": round(1.0 / append_s, 1) if append_s else None,
        "budget_x": args.budget,
        "within_budget": ok,
        "provenance": provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            iterations=args.repeat),
    }
    update_bench_json(args.bench_out, "ledger", section)
    print(f"  ledger overhead {overhead_x:.3f}x of ledger-off "
          f"(budget {args.budget:.2f}x), one fsync'd append "
          f"{section['append_ms']:.2f}ms -> {'OK' if ok else 'OVER BUDGET'}")
    print(f"  wrote ledger section to {args.bench_out}")
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    return 0 if ok else 1


def _cmd_campaign_bench(args: argparse.Namespace) -> int:
    """Campaign throughput guard: cold and warm generated-sweep rates
    plus the batched-durability overhead vs a persistence-free baseline."""
    import json
    import tempfile
    import time
    from datetime import datetime, timezone
    from pathlib import Path

    from .generate import admit, generate_candidates
    from .runner import SweepRunner, provenance, run_scenario, update_bench_json

    t0 = time.perf_counter()
    candidates = generate_candidates(args.n, args.profile,
                                     base_seed=args.base_seed)
    specs, summary = admit(candidates)
    admission_s = time.perf_counter() - t0
    if not specs:
        print("error: every generated candidate was rejected by admission",
              file=sys.stderr)
        return 2
    print(f"campaign bench: {args.n} candidates (profile={args.profile}), "
          f"{len(specs)} admitted in {admission_s:.2f}s "
          f"({summary.rejection_rate:.0%} rejected)")

    with tempfile.TemporaryDirectory() as tmp:
        # Warm-up (imports, first model build, template bank), then
        # interleave the two legs so machine-state drift hits both
        # equally — the measured ratio isolates the batched durability
        # machinery (result cache + ledger), not the benchmark weather.
        # The bare leg runs the same executions with no result cache
        # and no ledger but the same (orthogonal, pre-existing)
        # template-bank persistence; every leg repetition gets fresh
        # directories so both start cold.
        for spec in specs[:8]:
            run_scenario(spec, ledger_path=None)
        off_s = cold_s = float("inf")
        bare: list = []
        cold: dict = {}
        for rep in range(args.repeat):
            bare_tpl = str(Path(tmp) / f"bare{rep}")
            t0 = time.perf_counter()
            bare = [run_scenario(spec, template_root=bare_tpl,
                                 ledger_path=None) for spec in specs]
            off_s = min(off_s, time.perf_counter() - t0)
            runner = SweepRunner(workers=args.workers,
                                 cache_dir=str(Path(tmp) / f"cache{rep}"))
            t0 = time.perf_counter()
            cold = runner.run(specs)
            cold_s = min(cold_s, time.perf_counter() - t0)
        print(f"  {'no persistence':24s} {off_s:.3f}s "
              f"({len(specs) / off_s:.1f} runs/s, best of {args.repeat})")
        print(f"  {'cold (cache+ledger)':24s} {cold_s:.3f}s "
              f"({len(specs) / cold_s:.1f} runs/s, best of {args.repeat})")
        t0 = time.perf_counter()
        warm = runner.run(specs)
        warm_s = time.perf_counter() - t0
        print(f"  {'warm (all cached)':24s} {warm_s:.3f}s "
              f"({len(specs) / warm_s:.1f} runs/s)")
        chunk = runner._chunk_size_for(len(specs))

    digests_identical = (
        [r["digest"] for r in bare]
        == [r.get("digest") for r in cold["scenarios"]]
        == [r.get("digest") for r in warm["scenarios"]])
    overhead_x = cold_s / off_s if off_s else 1.0
    ok = overhead_x <= args.budget and digests_identical and not cold["errors"]
    section = {
        "n_candidates": args.n,
        "profile": args.profile,
        "admitted": len(specs),
        "rejection_rate": round(summary.rejection_rate, 4),
        "admission_s": round(admission_s, 3),
        "off_s": round(off_s, 3),
        "cold_s": round(cold_s, 3),
        "warm_s": round(warm_s, 3),
        "cold_runs_per_s": round(len(specs) / cold_s, 2) if cold_s else None,
        "warm_runs_per_s": round(len(specs) / warm_s, 2) if warm_s else None,
        "batch_overhead_x": round(overhead_x, 3),
        "chunk_size": chunk,
        "workers": args.workers,
        "digests_identical": digests_identical,
        "budget_x": args.budget,
        "within_budget": ok,
        "provenance": provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds"),
            iterations=args.repeat),
    }
    update_bench_json(args.bench_out, "campaign", section)
    print(f"  durability overhead {overhead_x:.3f}x of persistence-free "
          f"(budget {args.budget:.2f}x), digests "
          f"{'identical' if digests_identical else 'DIVERGED'} "
          f"-> {'OK' if ok else 'FAIL'}")
    print(f"  wrote campaign section to {args.bench_out}")
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    return 0 if ok else 1


def _cmd_campaign_faults(args: argparse.Namespace) -> int:
    """Run a Monte-Carlo fault campaign and fold it into survival and
    containment rates per fault kind (the EXPERIMENTS table source)."""
    import json

    from .generate import admit, fault_summary, generate_candidates
    from .runner import SweepRunner
    from .runner.cache import CheckCache

    candidates = generate_candidates(args.seeds, "faults",
                                     base_seed=args.base_seed)
    specs, summary = admit(candidates, CheckCache(args.cache_dir))
    print(f"fault campaign: {args.seeds} seeds, {len(specs)} admitted, "
          f"{summary.rejected} rejected "
          f"({summary.rejection_rate:.0%})", file=sys.stderr)
    if not specs:
        print("error: every generated candidate was rejected by admission",
              file=sys.stderr)
        return 2
    runner = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                         strict=True)
    report = runner.run(specs)
    table = fault_summary(report["scenarios"], specs)
    out = {"seeds": args.seeds, "base_seed": args.base_seed,
           "admission": summary.as_dict(), "wall_s": report["wall_s"],
           "errors": report["errors"], "faults": table}
    if args.json:
        print(json.dumps(out, indent=2, sort_keys=True))
        return 1 if report["errors"] else 0
    header = (f"{'fault':10s} {'runs':>5s} {'survived':>9s} "
              f"{'delivering':>11s} {'survival':>9s} {'containment':>12s}")
    print(header)
    print("-" * len(header))
    for kind, row in table.items():
        contain = (f"{row['containment_rate']:.2f}"
                   if row["containment_rate"] is not None else "n/a")
        print(f"{kind:10s} {row['runs']:>5d} {row['survived']:>9d} "
              f"{row['delivering']:>11d} {row['survival_rate']:>9.2f} "
              f"{contain:>12s}")
    print(f"({report['executed']} executed, {report['cache_hits']} warm, "
          f"{report['wall_s']:.1f}s)")
    return 1 if report["errors"] else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or empty the sweep result + template + check caches."""
    import json

    from .runner.cache import CheckCache, ResultCache, TemplateStore

    cache = ResultCache(args.cache_dir, max_bytes=args.max_bytes)
    store = TemplateStore(args.cache_dir, max_bytes=args.max_bytes)
    checks = CheckCache(args.cache_dir, max_bytes=args.max_bytes)
    if args.cache_command == "clear":
        if getattr(args, "templates", False):
            removed = store.clear()
            print(f"removed {removed} template bank"
                  f"{'' if removed == 1 else 's'} from {store.root}")
            return 0
        removed = cache.clear()
        removed_tpl = store.clear()
        removed_chk = checks.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}, "
              f"{removed_tpl} template bank"
              f"{'' if removed_tpl == 1 else 's'}, and {removed_chk} check "
              f"report{'' if removed_chk == 1 else 's'} from {args.cache_dir}")
        return 0
    stats = {"results": cache.stats(), "templates": store.stats(),
             "checks": checks.stats()}
    # One-document campaign rollup: a thousand-scenario sweep wants a
    # single set of totals, not three lists to re-aggregate.
    stats["totals"] = {
        "entries": sum(s["entries"] for s in
                       (stats["results"], stats["templates"],
                        stats["checks"])),
        "total_bytes": sum(s["total_bytes"] for s in
                           (stats["results"], stats["templates"],
                            stats["checks"])),
        "evictions": sum(s["evictions"] for s in
                         (stats["results"], stats["templates"],
                          stats["checks"])),
        "check_hits": stats["checks"].get("hits", 0),
        "check_misses": stats["checks"].get("misses", 0),
        "scenarios": len(set().union(*(s["scenarios"]
                                       for s in (stats["results"],
                                                 stats["templates"],
                                                 stats["checks"])))),
    }
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    for label in ("results", "templates", "checks"):
        s = stats[label]
        print(f"{label} {s['root']}: {s['entries']} entries, "
              f"{s['total_bytes']:,} bytes "
              f"(cap {s['max_bytes']:,} bytes, "
              f"{s['evictions']} eviction{'' if s['evictions'] == 1 else 's'})"
              + (f", {s['hits']} hit{'' if s['hits'] == 1 else 's'} / "
                 f"{s['misses']} miss{'' if s['misses'] == 1 else 'es'}"
                 if "hits" in s else ""))
        shown = list(s["scenarios"].items())
        omitted = len(shown) - 12
        if omitted > 1:  # campaigns: don't print a thousand lines
            shown = shown[:12]
        for name, count in shown:
            print(f"  {name:28s} {count} entr{'y' if count == 1 else 'ies'}")
        if omitted > 1:
            print(f"  ... and {omitted} more scenarios")
        if s["oldest"]:
            print(f"  oldest: {s['oldest']}")
            print(f"  newest: {s['newest']}")
    t = stats["totals"]
    print(f"totals: {t['entries']} entries, {t['total_bytes']:,} bytes, "
          f"{t['evictions']} eviction{'' if t['evictions'] == 1 else 's'}, "
          f"{t['scenarios']} scenario{'' if t['scenarios'] == 1 else 's'}, "
          f"check {t['check_hits']} hit{'' if t['check_hits'] == 1 else 's'} "
          f"/ {t['check_misses']} "
          f"miss{'' if t['check_misses'] == 1 else 'es'}")
    return 0


def _cmd_version(args: argparse.Namespace) -> int:
    from . import __version__

    print(__version__)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DECOS virtual-gateways reproduction (IPPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .sim import TRACE_MODES

    p_car = sub.add_parser("car", help="run the integrated automotive system")
    p_car.add_argument("--seconds", type=float, default=20.0)
    p_car.add_argument("--seed", type=int, default=0)
    p_car.add_argument("--trace-mode", choices=TRACE_MODES, default="full",
                       help="trace sink configuration (default: full)")
    p_car.add_argument("--trace-file", default=None, metavar="PATH",
                       help="NDJSON output path for --trace-mode stream")
    p_car.add_argument("--metrics", action="store_true",
                       help="print the metrics registry after the run")
    p_car.add_argument("--metrics-json", default=None, metavar="PATH",
                       help="write the metrics snapshot as JSON")
    p_car.add_argument("--metrics-prom", default=None, metavar="PATH",
                       help="write the metrics registry in Prometheus "
                            "text exposition format")
    p_car.add_argument("--flow-tracing", action="store_true",
                       help="assign causal flow ids and emit flow.* records")
    p_car.add_argument("--profile", action="store_true",
                       help="profile wall-clock handler time into profile.* "
                            "histograms (nondeterministic; never digested)")
    p_car.add_argument("--no-round-template", dest="round_template",
                       action="store_false",
                       help="disable round-template fast-forward (exact "
                            "event-by-event execution)")
    p_car.add_argument("--runtime", choices=RUNTIME_NAMES, default="sim",
                       help="execution runtime: sim (fast as possible), "
                            "realtime (paced against the wall clock), or "
                            "asyncio (event-loop bridged)")
    p_car.add_argument("--pace", type=float, default=None,
                       help="simulated-to-wall time ratio for realtime/"
                            "asyncio (e.g. 100 = 100x faster than real "
                            "time; realtime default: 1.0)")
    p_car.set_defaults(func=_cmd_car)

    p_roof = sub.add_parser("roof", help="Fig. 6 sliding-roof XML demo")
    p_roof.set_defaults(func=_cmd_roof)

    p_audit = sub.add_parser("audit", help="encapsulation audit of the car")
    p_audit.add_argument("--seed", type=int, default=0)
    p_audit.set_defaults(func=_cmd_audit)

    p_inv = sub.add_parser("inventory", help="E10 resource inventories")
    p_inv.set_defaults(func=_cmd_inventory)

    p_sweep = sub.add_parser(
        "sweep", help="run the scenario registry (parallel, cached)")
    p_sweep.add_argument("--workers", type=int,
                         default=max(1, os.cpu_count() or 1),
                         help="process-pool size; 1 = serial "
                              "(default: the host's cpu count)")
    p_sweep.add_argument("--filter", action="append", metavar="EXPR",
                         help="select scenarios by tag or name glob "
                              "(comma-separated, repeatable, OR-ed)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="ignore cached results (still refreshes them)")
    p_sweep.add_argument("--cache-dir", default=".repro_cache", metavar="PATH",
                         help="result cache directory (default: .repro_cache)")
    p_sweep.add_argument("--base-seed", type=int, default=0,
                         help="re-derive hash-derived scenario seeds")
    p_sweep.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of a table")
    p_sweep.add_argument("--list", action="store_true",
                         help="list matching scenarios without running")
    p_sweep.add_argument("--bench-compare", action="store_true",
                         help="measure serial vs parallel vs warm-cache and "
                              "record the sweep section of BENCH_substrate.json")
    p_sweep.add_argument("--bench-out", default="BENCH_substrate.json",
                         metavar="PATH", help="BENCH file for --bench-compare")
    p_sweep.add_argument("--strict", action="store_true",
                         help="pre-flight every scenario statically and "
                              "refuse the sweep if any has errors")
    p_sweep.add_argument("--no-round-template", dest="round_template",
                         action="store_false",
                         help="run every scenario without round-template "
                              "fast-forward (exact event-by-event execution)")
    p_sweep.add_argument("--runtime", choices=RUNTIME_NAMES, default="sim",
                         help="execution runtime for every selected scenario "
                              "(default: sim)")
    p_sweep.add_argument("--pace", type=float, default=None,
                         help="simulated-to-wall time ratio for "
                              "--runtime realtime/asyncio")
    p_sweep.add_argument("--progress", action="store_true",
                         help="render a live one-line fleet status to "
                              "stderr while the sweep runs")
    p_sweep.add_argument("--events", default=None, metavar="PATH",
                         help="stream worker telemetry events to PATH as "
                              "NDJSON (start/heartbeat/finish/cache_hit)")
    p_sweep.add_argument("--no-ledger", action="store_true",
                         help="skip the durable run-ledger append for "
                              "this sweep's executions")
    p_sweep.add_argument("--generated", type=int, default=0, metavar="N",
                         help="run N seeded generated scenarios instead of "
                              "the registry (admission-gated before any run)")
    p_sweep.add_argument("--gen-profile", default="mixed", metavar="NAME",
                         help="generator profile for --generated "
                              "(mixed/small/large/faults/bench; "
                              "default: mixed)")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_ledger = sub.add_parser(
        "ledger", help="provenance ledger: history, trends, replay audit")
    ledger_sub = p_ledger.add_subparsers(dest="ledger_command", required=True)

    p_lshow = ledger_sub.add_parser(
        "show", help="list recorded runs (newest last)")
    p_lshow.add_argument("--cache-dir", default=".repro_cache", metavar="PATH")
    p_lshow.add_argument("--scenario", default=None, metavar="NAME",
                         help="restrict to one scenario name")
    p_lshow.add_argument("--last", type=int, default=None, metavar="N",
                         help="only the N most recent entries")
    p_lshow.add_argument("--json", action="store_true")
    p_lshow.set_defaults(func=_cmd_ledger_show)

    p_ltr = ledger_sub.add_parser(
        "trends", help="per-scenario wall-time trend and digest stability")
    p_ltr.add_argument("--cache-dir", default=".repro_cache", metavar="PATH")
    p_ltr.add_argument("--json", action="store_true")
    p_ltr.set_defaults(func=_cmd_ledger_trends)

    p_lver = ledger_sub.add_parser(
        "verify",
        help="replay-parity audit: re-run recorded entries, compare digests")
    p_lver.add_argument("--cache-dir", default=".repro_cache", metavar="PATH")
    p_lver.add_argument("--scenario", default=None, metavar="NAME",
                        help="restrict the audit to one scenario name")
    p_lver.add_argument("--sample", type=int, default=5, metavar="N",
                        help="audit the N most recent distinct "
                             "configurations (default: 5)")
    p_lver.add_argument("--all", action="store_true",
                        help="audit every distinct configuration on record")
    p_lver.add_argument("--strict", action="store_true",
                        help="fail on drift too (mismatches always fail); "
                             "demands full-history parity")
    p_lver.add_argument("--json", action="store_true")
    p_lver.set_defaults(func=_cmd_ledger_verify)

    p_lbench = ledger_sub.add_parser(
        "bench", help="guard: ledger-append overhead vs ledger-off wall time")
    p_lbench.add_argument("--filter", default="smoke", metavar="EXPR",
                          help="scenario filter to measure (default: smoke)")
    p_lbench.add_argument("--repeat", type=int, default=3,
                          help="best-of-N timing (default: 3)")
    p_lbench.add_argument("--budget", type=float, default=1.05,
                          help="max allowed overhead factor (default: 1.05)")
    p_lbench.add_argument("--bench-out", default="BENCH_substrate.json",
                          metavar="PATH")
    p_lbench.add_argument("--json", action="store_true")
    p_lbench.set_defaults(func=_cmd_ledger_bench)

    p_campaign = sub.add_parser(
        "campaign", help="generated campaigns: throughput bench, fault sweeps")
    campaign_sub = p_campaign.add_subparsers(dest="campaign_command",
                                             required=True)
    p_cbench = campaign_sub.add_parser(
        "bench", help="guard: campaign throughput (cold/warm runs per "
                      "second, batched-durability overhead)")
    p_cbench.add_argument("--n", type=int, default=1000, metavar="N",
                          help="generated candidates to run (default: 1000)")
    p_cbench.add_argument("--profile", default="bench",
                          help="generator profile (default: bench)")
    p_cbench.add_argument("--base-seed", type=int, default=0)
    p_cbench.add_argument("--workers", type=int, default=1,
                          help="sweep worker processes (default: 1)")
    p_cbench.add_argument("--repeat", type=int, default=3,
                          help="best-of-N interleaved timing (default: 3)")
    p_cbench.add_argument("--budget", type=float, default=1.05,
                          help="max allowed cold-vs-bare overhead factor "
                               "(default: 1.05)")
    p_cbench.add_argument("--bench-out", default="BENCH_substrate.json",
                          metavar="PATH")
    p_cbench.add_argument("--json", action="store_true")
    p_cbench.set_defaults(func=_cmd_campaign_bench)

    p_cfaults = campaign_sub.add_parser(
        "faults", help="Monte-Carlo fault campaign: survival/containment "
                       "rates per fault kind")
    p_cfaults.add_argument("--seeds", type=int, default=200, metavar="N",
                           help="fault-profile candidates (default: 200)")
    p_cfaults.add_argument("--base-seed", type=int, default=0)
    p_cfaults.add_argument("--workers", type=int, default=1)
    p_cfaults.add_argument("--cache-dir", default=".repro_cache",
                           metavar="PATH")
    p_cfaults.add_argument("--json", action="store_true")
    p_cfaults.set_defaults(func=_cmd_campaign_faults)

    p_brt = sub.add_parser(
        "bench-runtime",
        help="guard: paced-runtime dispatch overhead vs the simulated runtime")
    p_brt.add_argument("--scenario", default="car-smoke",
                       help="registry scenario to measure (default: car-smoke)")
    p_brt.add_argument("--pace", type=float, default=1e6,
                       help="pacing ratio for the paced leg; high so the "
                            "loop, not sleeping, is measured (default: 1e6)")
    p_brt.add_argument("--repeat", type=int, default=3,
                       help="best-of-N timing (default: 3)")
    p_brt.add_argument("--bench-out", default="BENCH_substrate.json",
                       metavar="PATH")
    p_brt.add_argument("--json", action="store_true")
    p_brt.set_defaults(func=_cmd_bench_runtime)

    p_check = sub.add_parser(
        "check", help="static verifier: specs, automata, schedules, lint")
    p_check.add_argument("paths", nargs="*", metavar="PATH",
                         help="XML specs, python sources, or directories "
                              "(e.g. examples/); the special first path "
                              "'bounds' cross-validates the static flow "
                              "bounds against traced runs")
    p_check.add_argument("--scenarios", action="append", nargs="?", const="",
                         metavar="EXPR",
                         help="check registered sweep scenarios (optionally "
                              "filtered by tag/name; repeatable)")
    p_check.add_argument("--self", action="store_true",
                         help="run the determinism lint over the simulator core")
    p_check.add_argument("--format", choices=("text", "json"), default="text")
    p_check.add_argument("--rules", nargs="?", const="", default=None,
                         metavar="EXPR",
                         help="bare: list every rule id; with a comma-"
                              "separated expression of rule ids or family "
                              "prefixes (FLOW, SCHED001): report only those")
    p_check.add_argument("--no-cache", action="store_true",
                         help="bypass the incremental check-report cache")
    p_check.add_argument("--cache-dir", default=".repro_cache", metavar="PATH",
                         help="check-report cache root (default: .repro_cache)")
    p_check.add_argument("--all", action="store_true",
                         help="with 'bounds': validate every registry "
                              "scenario (also the default with no filter)")
    p_check.add_argument("--bench-out", default="BENCH_substrate.json",
                         metavar="PATH",
                         help="with 'bounds': where the flow_bounds section "
                              "is recorded")
    p_check.add_argument("--baseline", default=None, metavar="FILE",
                         help="accepted-warning baseline: recorded warnings "
                              "pass, new warnings still show")
    p_check.add_argument("--update-baseline", default=None, metavar="FILE",
                         help="record current non-error findings as accepted")
    p_check.add_argument("--strict", action="store_true",
                         help="exit nonzero on warnings too, not just errors")
    p_check.set_defaults(func=_cmd_check)

    p_obs = sub.add_parser(
        "obs", help="observability: flow journeys, aggregation, comparison")
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    p_flows = obs_sub.add_parser(
        "flows", help="reconstruct cross-VN message journeys in the car")
    p_flows.add_argument("--seconds", type=float, default=2.0)
    p_flows.add_argument("--seed", type=int, default=0)
    p_flows.add_argument("--no-block-demo", dest="block_demo",
                         action="store_false",
                         help="skip the min-interval filter that guarantees "
                              "blocked journeys at gw-nav")
    p_flows.add_argument("--out", default=None, metavar="PATH",
                         help="export all journeys as NDJSON")
    p_flows.add_argument("--json", action="store_true",
                         help="also print the summary as JSON")
    p_flows.set_defaults(func=_cmd_obs_flows)

    p_agg = obs_sub.add_parser(
        "aggregate", help="merge metrics across a sweep's cached results")
    p_agg.add_argument("--cache-dir", default=".repro_cache", metavar="PATH")
    p_agg.add_argument("--scenario", action="append", metavar="NAME",
                       help="restrict to specific scenario names (repeatable)")
    p_agg.add_argument("--out", default=None, metavar="PATH",
                       help="write the markdown report to a file")
    p_agg.add_argument("--json", action="store_true",
                       help="print the aggregate as JSON instead of markdown")
    p_agg.set_defaults(func=_cmd_obs_aggregate)

    p_cmp = obs_sub.add_parser(
        "compare", help="diff two metrics snapshots (counters + histograms)")
    p_cmp.add_argument("base", help="baseline snapshot JSON "
                                    "(from car --metrics-json or obs aggregate --json)")
    p_cmp.add_argument("other", help="snapshot JSON to compare against the baseline")
    p_cmp.add_argument("--json", action="store_true")
    p_cmp.set_defaults(func=_cmd_obs_compare)

    p_bench = obs_sub.add_parser(
        "bench-overhead", help="guard: tracing overhead vs trace-off wall time")
    p_bench.add_argument("--seconds", type=float, default=2.0)
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="best-of-N timing (default: 3)")
    p_bench.add_argument("--budget", type=float, default=1.5,
                         help="max allowed overhead factor (default: 1.5)")
    p_bench.add_argument("--bench-out", default="BENCH_substrate.json",
                         metavar="PATH")
    p_bench.add_argument("--json", action="store_true")
    p_bench.set_defaults(func=_cmd_obs_bench_overhead)

    p_cache = sub.add_parser(
        "cache", help="inspect or empty the sweep result cache")
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    from .runner.cache import DEFAULT_CACHE_MAX_BYTES

    p_cstats = cache_sub.add_parser("stats", help="cache size and contents")
    p_cstats.add_argument("--cache-dir", default=".repro_cache", metavar="PATH")
    p_cstats.add_argument("--max-bytes", type=int,
                          default=DEFAULT_CACHE_MAX_BYTES,
                          help="size cap shown in the report")
    p_cstats.add_argument("--json", action="store_true")
    p_cstats.set_defaults(func=_cmd_cache)

    p_cclear = cache_sub.add_parser(
        "clear", help="delete every cache entry (results and templates)")
    p_cclear.add_argument("--cache-dir", default=".repro_cache", metavar="PATH")
    p_cclear.add_argument("--max-bytes", type=int,
                          default=DEFAULT_CACHE_MAX_BYTES)
    p_cclear.add_argument("--templates", action="store_true",
                          help="clear only the persistent template banks")
    p_cclear.add_argument("--json", action="store_true")
    p_cclear.set_defaults(func=_cmd_cache)

    p_ver = sub.add_parser("version", help="print the package version")
    p_ver.set_defaults(func=_cmd_version)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
