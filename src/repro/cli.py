"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user one-command access to the headline scenarios
without writing any code:

* ``car``        — run the full automotive system (skid trip) and print
  the cross-DAS event timeline plus per-gateway statistics.
* ``roof``       — the Fig. 6 sliding-roof gateway demo (XML-driven).
* ``audit``      — build the car and print its encapsulation audit.
* ``inventory``  — print the E10 architecture resource table.
* ``version``    — print the package version.
"""

from __future__ import annotations

import argparse
import sys

from .sim import MS, SEC


def _cmd_car(args: argparse.Namespace) -> int:
    from .apps import CarConfig, build_car

    if args.trace_mode == "stream" and not args.trace_file:
        print("error: --trace-mode stream requires --trace-file",
              file=sys.stderr)
        return 2
    car = build_car(CarConfig(seed=args.seed, trace_mode=args.trace_mode,
                              trace_stream=args.trace_file))
    horizon = int(args.seconds * SEC)
    car.run_for(horizon)
    print(f"ran the integrated car for {args.seconds:.1f} simulated seconds "
          f"(trace mode: {args.trace_mode})")
    onsets = car.vehicle.skid_onsets()
    if onsets and car.presafe.detections:
        latency = (car.presafe.detections[0] - onsets[0]) / MS
        print(f"  skid at {onsets[0] / SEC:.1f}s detected by presafe "
              f"+{latency:.1f}ms later")
    if car.roof.closed_at is not None:
        print(f"  sliding roof closed at {car.roof.closed_at / SEC:.2f}s")
    print(f"  navigation max position error: {car.navigator.max_error():.2f} m")
    for name, gw in sorted(car.system.gateways.items()):
        print(f"  {name}: received={gw.instances_received} "
              f"forwarded={gw.instances_forwarded} "
              f"blocked={gw.instances_blocked} restarts={gw.restarts}")
    trace = car.sim.trace
    counts = trace.category_counts()
    if counts:
        total = sum(counts.values())
        print(f"  trace: {total:,} records in {len(counts)} categories")
    if args.metrics:
        from .analysis import metrics_table

        metrics_table(car.sim.metrics, title="car metrics").print()
    if args.trace_file and args.trace_mode == "stream":
        trace.close()
        print(f"  trace stream written to {args.trace_file}")
    return 0


def _cmd_roof(args: argparse.Namespace) -> int:
    from examples import sliding_roof_xml  # type: ignore[import-not-found]

    sliding_roof_xml.main()
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .apps import CarConfig, build_car
    from .systems import EncapsulationAudit

    car = build_car(CarConfig(seed=args.seed))
    audit = EncapsulationAudit(car.system)
    audit.run()
    print(audit.report())
    return 0 if audit.clean else 1


def _cmd_inventory(args: argparse.Namespace) -> int:
    from .analysis import Table
    from .systems import ArchitectureModel

    # Import the E10 demand model lazily; fall back to a local copy so
    # the CLI works without the benchmarks directory installed.
    try:
        sys.path.insert(0, "benchmarks")
        from test_e10_architectures import automotive_requirements  # type: ignore
        req = automotive_requirements()
    except Exception:
        from .systems import DASRequirement, SystemRequirements

        req = SystemRequirements(
            dass=(
                DASRequirement("abs", jobs=4, sensed_quantities=("wheel-speed",)),
                DASRequirement("navigation", jobs=3, sensed_quantities=("gps",),
                               importable=("wheel-speed",)),
            ),
            sensors_per_quantity={"wheel-speed": 4, "gps": 1},
        )
    table = Table("architecture resource inventories",
                  ["architecture", "ECUs", "networks", "wires", "connectors",
                   "sensors", "gateways"])
    for inv in ArchitectureModel(req).all_inventories():
        table.add_row(*inv.as_row())
    table.print()
    return 0


def _cmd_version(args: argparse.Namespace) -> int:
    from . import __version__

    print(__version__)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DECOS virtual-gateways reproduction (IPPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .sim import TRACE_MODES

    p_car = sub.add_parser("car", help="run the integrated automotive system")
    p_car.add_argument("--seconds", type=float, default=20.0)
    p_car.add_argument("--seed", type=int, default=0)
    p_car.add_argument("--trace-mode", choices=TRACE_MODES, default="full",
                       help="trace sink configuration (default: full)")
    p_car.add_argument("--trace-file", default=None, metavar="PATH",
                       help="NDJSON output path for --trace-mode stream")
    p_car.add_argument("--metrics", action="store_true",
                       help="print the metrics registry after the run")
    p_car.set_defaults(func=_cmd_car)

    p_roof = sub.add_parser("roof", help="Fig. 6 sliding-roof XML demo")
    p_roof.set_defaults(func=_cmd_roof)

    p_audit = sub.add_parser("audit", help="encapsulation audit of the car")
    p_audit.add_argument("--seed", type=int, default=0)
    p_audit.set_defaults(func=_cmd_audit)

    p_inv = sub.add_parser("inventory", help="E10 resource inventories")
    p_inv.set_defaults(func=_cmd_inventory)

    p_ver = sub.add_parser("version", help="print the package version")
    p_ver.set_defaults(func=_cmd_version)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
