"""Command-line interface: ``python -m repro <command>``.

Gives a downstream user one-command access to the headline scenarios
without writing any code:

* ``car``        — run the full automotive system (skid trip) and print
  the cross-DAS event timeline plus per-gateway statistics.
* ``roof``       — the Fig. 6 sliding-roof gateway demo (XML-driven).
* ``audit``      — build the car and print its encapsulation audit.
* ``inventory``  — print the E10 architecture resource table.
* ``version``    — print the package version.
"""

from __future__ import annotations

import argparse
import sys

from .sim import MS, SEC


def _cmd_car(args: argparse.Namespace) -> int:
    from .apps import CarConfig, build_car

    if args.trace_mode == "stream" and not args.trace_file:
        print("error: --trace-mode stream requires --trace-file",
              file=sys.stderr)
        return 2
    car = build_car(CarConfig(seed=args.seed, trace_mode=args.trace_mode,
                              trace_stream=args.trace_file))
    horizon = int(args.seconds * SEC)
    car.run_for(horizon)
    print(f"ran the integrated car for {args.seconds:.1f} simulated seconds "
          f"(trace mode: {args.trace_mode})")
    onsets = car.vehicle.skid_onsets()
    if onsets and car.presafe.detections:
        latency = (car.presafe.detections[0] - onsets[0]) / MS
        print(f"  skid at {onsets[0] / SEC:.1f}s detected by presafe "
              f"+{latency:.1f}ms later")
    if car.roof.closed_at is not None:
        print(f"  sliding roof closed at {car.roof.closed_at / SEC:.2f}s")
    print(f"  navigation max position error: {car.navigator.max_error():.2f} m")
    for name, gw in sorted(car.system.gateways.items()):
        print(f"  {name}: received={gw.instances_received} "
              f"forwarded={gw.instances_forwarded} "
              f"blocked={gw.instances_blocked} restarts={gw.restarts}")
    trace = car.sim.trace
    counts = trace.category_counts()
    if counts:
        total = sum(counts.values())
        print(f"  trace: {total:,} records in {len(counts)} categories")
    if args.metrics:
        from .analysis import metrics_table

        metrics_table(car.sim.metrics, title="car metrics").print()
    if args.trace_file and args.trace_mode == "stream":
        trace.close()
        print(f"  trace stream written to {args.trace_file}")
    return 0


def _cmd_roof(args: argparse.Namespace) -> int:
    from examples import sliding_roof_xml  # type: ignore[import-not-found]

    sliding_roof_xml.main()
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from .apps import CarConfig, build_car
    from .systems import EncapsulationAudit

    car = build_car(CarConfig(seed=args.seed))
    audit = EncapsulationAudit(car.system)
    audit.run()
    print(audit.report())
    return 0 if audit.clean else 1


def _cmd_inventory(args: argparse.Namespace) -> int:
    from .analysis import Table
    from .systems import ArchitectureModel

    # Import the E10 demand model lazily; fall back to a local copy so
    # the CLI works without the benchmarks directory installed.
    try:
        sys.path.insert(0, "benchmarks")
        from test_e10_architectures import automotive_requirements  # type: ignore
        req = automotive_requirements()
    except Exception:
        from .systems import DASRequirement, SystemRequirements

        req = SystemRequirements(
            dass=(
                DASRequirement("abs", jobs=4, sensed_quantities=("wheel-speed",)),
                DASRequirement("navigation", jobs=3, sensed_quantities=("gps",),
                               importable=("wheel-speed",)),
            ),
            sensors_per_quantity={"wheel-speed": 4, "gps": 1},
        )
    table = Table("architecture resource inventories",
                  ["architecture", "ECUs", "networks", "wires", "connectors",
                   "sensors", "gateways"])
    for inv in ArchitectureModel(req).all_inventories():
        table.add_row(*inv.as_row())
    table.print()
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .runner import SweepRunner, default_registry, filter_scenarios, sweep_table

    registry = default_registry(base_seed=args.base_seed)
    tokens = [t for expr in (args.filter or []) for t in expr.split(",") if t]
    specs = filter_scenarios(registry, tokens)
    if args.list:
        for spec in specs:
            tags = ",".join(spec.tags)
            print(f"{spec.name:28s} builder={spec.builder:18s} "
                  f"horizon={spec.horizon_ns / SEC:g}s seed={spec.seed} [{tags}]")
        return 0
    if not specs:
        print(f"error: no scenarios match filter {tokens!r}", file=sys.stderr)
        return 2

    if args.bench_compare:
        return _sweep_bench_compare(args, specs)

    runner = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                         use_cache=not args.no_cache)
    report = runner.run(specs)
    if args.json:
        import json

        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        sweep_table(report).print()
        for name in report["errors"]:
            result = next(r for r in report["scenarios"] if r["name"] == name)
            print(f"--- {name} failed ---\n{result['error']}", file=sys.stderr)
    return 1 if report["errors"] else 0


def _sweep_bench_compare(args: argparse.Namespace, specs) -> int:
    """Serial-cold vs parallel-cold vs warm-cache comparison, recorded
    as the ``sweep`` section of BENCH_substrate.json."""
    import json
    from datetime import datetime, timezone

    from .runner import SweepRunner, provenance, update_bench_json

    names = [s.name for s in specs]
    print(f"bench-compare over {len(specs)} scenarios: {', '.join(names)}")
    serial = SweepRunner(workers=1, cache_dir=args.cache_dir,
                         use_cache=False).run(specs)
    print(f"  serial cold   ({serial['workers']} worker):  {serial['wall_s']:.2f}s")
    parallel = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                           use_cache=False).run(specs)
    print(f"  parallel cold ({parallel['workers']} workers): {parallel['wall_s']:.2f}s")
    warm = SweepRunner(workers=args.workers, cache_dir=args.cache_dir,
                       use_cache=True).run(specs)
    print(f"  warm cache    ({warm['workers']} workers): {warm['wall_s']:.2f}s "
          f"({warm['cache_hits']} hits)")

    digests = [
        [r.get("digest") for r in report["scenarios"]]
        for report in (serial, parallel, warm)
    ]
    identical = digests[0] == digests[1] == digests[2]
    errors = serial["errors"] or parallel["errors"] or warm["errors"]
    section = {
        "scenarios": names,
        "serial_s": serial["wall_s"],
        "parallel_s": parallel["wall_s"],
        "parallel_workers": parallel["workers"],
        "parallel_speedup": round(serial["wall_s"] / parallel["wall_s"], 3),
        "warm_s": warm["wall_s"],
        "warm_speedup_vs_cold": round(parallel["wall_s"] / warm["wall_s"], 3),
        "warm_cache_hits": warm["cache_hits"],
        "digests_identical": identical,
        "provenance": provenance(
            timestamp=datetime.now(timezone.utc).isoformat(timespec="seconds")),
    }
    update_bench_json(args.bench_out, "sweep", section)
    print(f"  parallel speedup {section['parallel_speedup']}x, "
          f"warm speedup {section['warm_speedup_vs_cold']}x, "
          f"digests identical: {identical}")
    print(f"  wrote sweep section to {args.bench_out}")
    if args.json:
        print(json.dumps(section, indent=2, sort_keys=True))
    return 1 if (errors or not identical) else 0


def _cmd_version(args: argparse.Namespace) -> int:
    from . import __version__

    print(__version__)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Parse arguments and dispatch to the chosen subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DECOS virtual-gateways reproduction (IPPS 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from .sim import TRACE_MODES

    p_car = sub.add_parser("car", help="run the integrated automotive system")
    p_car.add_argument("--seconds", type=float, default=20.0)
    p_car.add_argument("--seed", type=int, default=0)
    p_car.add_argument("--trace-mode", choices=TRACE_MODES, default="full",
                       help="trace sink configuration (default: full)")
    p_car.add_argument("--trace-file", default=None, metavar="PATH",
                       help="NDJSON output path for --trace-mode stream")
    p_car.add_argument("--metrics", action="store_true",
                       help="print the metrics registry after the run")
    p_car.set_defaults(func=_cmd_car)

    p_roof = sub.add_parser("roof", help="Fig. 6 sliding-roof XML demo")
    p_roof.set_defaults(func=_cmd_roof)

    p_audit = sub.add_parser("audit", help="encapsulation audit of the car")
    p_audit.add_argument("--seed", type=int, default=0)
    p_audit.set_defaults(func=_cmd_audit)

    p_inv = sub.add_parser("inventory", help="E10 resource inventories")
    p_inv.set_defaults(func=_cmd_inventory)

    p_sweep = sub.add_parser(
        "sweep", help="run the scenario registry (parallel, cached)")
    p_sweep.add_argument("--workers", type=int, default=4,
                         help="process-pool size; 1 = serial (default: 4)")
    p_sweep.add_argument("--filter", action="append", metavar="EXPR",
                         help="select scenarios by tag or name glob "
                              "(comma-separated, repeatable, OR-ed)")
    p_sweep.add_argument("--no-cache", action="store_true",
                         help="ignore cached results (still refreshes them)")
    p_sweep.add_argument("--cache-dir", default=".repro_cache", metavar="PATH",
                         help="result cache directory (default: .repro_cache)")
    p_sweep.add_argument("--base-seed", type=int, default=0,
                         help="re-derive hash-derived scenario seeds")
    p_sweep.add_argument("--json", action="store_true",
                         help="print the report as JSON instead of a table")
    p_sweep.add_argument("--list", action="store_true",
                         help="list matching scenarios without running")
    p_sweep.add_argument("--bench-compare", action="store_true",
                         help="measure serial vs parallel vs warm-cache and "
                              "record the sweep section of BENCH_substrate.json")
    p_sweep.add_argument("--bench-out", default="BENCH_substrate.json",
                         metavar="PATH", help="BENCH file for --bench-compare")
    p_sweep.set_defaults(func=_cmd_sweep)

    p_ver = sub.add_parser("version", help="print the package version")
    p_ver.set_defaults(func=_cmd_version)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
