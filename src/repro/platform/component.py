"""Components: the physical nodes — and the hardware FCR.

Sec. II-B: "A component is a self-contained computational element with
its own hardware ... and software.  Components are the target of job
allocation and provide encapsulated execution environments denoted as
partitions for jobs.  In the DECOS architecture, a component can host
multiple partitions and host jobs that can belong to different DASs."

A :class:`Component` owns a communication controller (its CNI to the
time-triggered core network) and a partition scheduler: a periodic
major frame within which each partition has a fixed window.  Windows
must not overlap — that is the temporal-partitioning guarantee.

Sec. II-D's hardware fault hypothesis (a whole component fails
arbitrarily, ~100 FIT permanent, orders-of-magnitude more frequent
transients) is exercised through :meth:`crash` / :meth:`restart`, which
silence/revive both the controller and every hosted job.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim import EventPriority, Process, Simulator
from ..core_network import CommunicationController
from .partition import Partition, PartitionWindow

__all__ = ["Component"]


class Component(Process):
    """One node: controller + partitions + major-frame scheduler."""

    priority = EventPriority.APPLICATION

    def __init__(
        self,
        sim: Simulator,
        name: str,
        controller: CommunicationController,
        major_frame: int = 10_000_000,
    ) -> None:
        super().__init__(sim, f"component.{name}")
        if major_frame <= 0:
            raise ConfigurationError("major frame must be positive")
        self.component_name = name
        self.controller = controller
        self.major_frame = major_frame
        self.partitions: dict[str, Partition] = {}
        self.crashed = False

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def add_partition(
        self,
        name: str,
        das: str,
        offset: int,
        duration: int,
        memory_quota: int = 64 * 1024,
    ) -> Partition:
        if name in self.partitions:
            raise ConfigurationError(f"partition {name!r} already exists on {self.component_name!r}")
        window = PartitionWindow(offset=offset, duration=duration)
        if window.end() > self.major_frame:
            raise ConfigurationError(
                f"partition window [{offset}, {window.end()}) exceeds "
                f"major frame {self.major_frame}"
            )
        for other in self.partitions.values():
            o = other.window
            if not (window.end() <= o.offset or o.end() <= window.offset):
                raise ConfigurationError(
                    f"partition window of {name!r} overlaps {other.name!r} "
                    "— temporal partitioning requires disjoint windows"
                )
        part = Partition(self.sim, name, das, window, memory_quota=memory_quota)
        self.partitions[name] = part
        if self.active:
            self._schedule_partition(part)
        return part

    def partition(self, name: str) -> Partition:
        try:
            return self.partitions[name]
        except KeyError:
            raise ConfigurationError(
                f"no partition {name!r} on component {self.component_name!r}"
            ) from None

    def das_hosted(self) -> set[str]:
        """DASs with at least one partition on this component — the
        integrated architecture's defining property is that this set can
        have more than one element."""
        return {p.das for p in self.partitions.values()}

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        for part in self.partitions.values():
            self._schedule_partition(part)

    def _schedule_partition(self, part: Partition) -> None:
        """Run the partition's window once per major frame, aligned to
        the major-frame grid (offsets stay comparable across nodes even
        when partitions are added at different times)."""
        now = self.sim.now
        frame_start = (now // self.major_frame) * self.major_frame
        first = frame_start + part.window.offset
        if first < now:
            first += self.major_frame
        label = f"{self.name}.window.{part.name}"
        # Window activations are legitimate periodic in-round events for
        # the round-template engine; the partition itself participates
        # via its own fingerprint (see Partition's rt_* hooks).
        self.sim.round_template.register_labels({label})
        self.call_every(
            self.major_frame,
            (lambda p=part: self._run_window(p)),
            start=first,
            label=label,
        )

    def _run_window(self, part: Partition) -> None:
        if not self.crashed:
            part.execute_window()

    # ------------------------------------------------------------------
    # hardware FCR failure modes
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Permanent (until restart) arbitrary failure of the whole node."""
        self.crashed = True
        self.controller.crashed = True
        for part in self.partitions.values():
            for job in part.jobs:
                job.halt()

    def restart(self) -> None:
        """Recovery after a transient fault (Sec. II-D)."""
        self.crashed = False
        self.controller.crashed = False
        for part in self.partitions.values():
            for job in part.jobs:
                job.resume()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Component {self.component_name!r} partitions={sorted(self.partitions)} "
            f"das={sorted(self.das_hosted())}>"
        )
