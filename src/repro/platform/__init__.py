"""Component/partition/job platform (substrate S4).

Components are the hardware fault-containment regions; partitions give
temporal (ARINC-653-style windows) and spatial (memory quotas, owner
checks) isolation; jobs are the software FCRs with their port links.
"""

from .component import Component
from .job import Job
from .partition import MemoryRegion, Partition, PartitionWindow

__all__ = ["Component", "Job", "Partition", "PartitionWindow", "MemoryRegion"]
