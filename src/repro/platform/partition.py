"""Partitions: encapsulated execution environments within a component.

Sec. II-B: "Components ... provide encapsulated execution environments
denoted as partitions for jobs.  Each partition prevents temporal
interference (e.g., stealing processor time) and spatial interference
(e.g., overwriting data structures) between jobs."

Temporal partitioning follows the ARINC-653 idiom: the component's
processor time is divided into a periodic **major frame**; each
partition owns a fixed window (offset, duration) within it.  Job code —
periodic steps *and* message-delivery callbacks — runs only inside the
partition's window; work arriving between windows is deferred to the
next window start.  This deferral is exactly why a *visible* gateway
(a gateway job inside a partition) has higher redirection latency than
a *hidden* gateway at the architecture level (Sec. III) — experiment E5
measures the difference.

Spatial partitioning is modeled as memory-quota accounting plus owner
checks on :class:`MemoryRegion` writes: a job writing a region of a
foreign partition raises :class:`~repro.errors.PartitionViolationError`
instead of silently corrupting state.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import ConfigurationError, PartitionViolationError
from ..sim import Simulator, TraceCategory

if TYPE_CHECKING:  # pragma: no cover
    from .job import Job

__all__ = ["PartitionWindow", "MemoryRegion", "Partition"]


@dataclass(frozen=True)
class PartitionWindow:
    """The partition's slice of the component's major frame."""

    offset: int
    duration: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.duration <= 0:
            raise ConfigurationError(
                f"invalid partition window (offset={self.offset}, duration={self.duration})"
            )

    def end(self) -> int:
        return self.offset + self.duration


class MemoryRegion:
    """A named block of state owned by one partition."""

    def __init__(self, partition: "Partition", name: str, size_bytes: int) -> None:
        self.partition = partition
        self.name = name
        self.size_bytes = size_bytes
        self.data: dict[str, object] = {}

    def write(self, job: "Job", key: str, value: object) -> None:
        """Write access is restricted to jobs of the owning partition."""
        if job.partition is not self.partition:
            self.partition.spatial_violations += 1
            raise PartitionViolationError(
                f"job {job.name!r} (partition {job.partition.name!r}) wrote "
                f"region {self.name!r} of partition {self.partition.name!r}"
            )
        self.data[key] = value

    def read(self, key: str, default: object = None) -> object:
        """Reads are unrestricted within the component (shared-nothing
        across components anyway; confidentiality is out of scope)."""
        return self.data.get(key, default)


class Partition:
    """One encapsulated execution environment on a component."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        das: str,
        window: PartitionWindow,
        memory_quota: int = 64 * 1024,
    ) -> None:
        self.sim = sim
        self.name = name
        self.das = das
        self.window = window
        self.memory_quota = memory_quota
        self.memory_used = 0
        self.jobs: list["Job"] = []
        self._inbox: list[Callable[[], None]] = []
        self._regions: dict[str, MemoryRegion] = {}
        self.windows_executed = 0
        self.deferred_executed = 0
        self.spatial_violations = 0
        self._in_window = False
        m = sim.metrics
        self._m_windows = m.counter("partition.windows")
        self._m_deferred = m.histogram("partition.deferred_per_window")
        # Window execution is demand-shaped by job state: a fingerprinted
        # dynamic participant in quasi-periodic round-template mode (and,
        # like every dynamic, a blocker in strict mode).
        sim.round_template.register_dynamic(f"partition.{name}", self)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def bind_job(self, job: "Job") -> None:
        if job.das != self.das:
            raise ConfigurationError(
                f"job {job.name!r} of DAS {job.das!r} cannot run in partition "
                f"{self.name!r} of DAS {self.das!r} — partitions are per-DAS"
            )
        self.jobs.append(job)

    # ------------------------------------------------------------------
    # spatial partitioning
    # ------------------------------------------------------------------
    def allocate(self, name: str, size_bytes: int) -> MemoryRegion:
        if size_bytes <= 0:
            raise ConfigurationError("allocation size must be positive")
        if name in self._regions:
            raise ConfigurationError(f"region {name!r} already allocated")
        if self.memory_used + size_bytes > self.memory_quota:
            raise PartitionViolationError(
                f"partition {self.name!r} quota exceeded: "
                f"{self.memory_used}+{size_bytes} > {self.memory_quota}"
            )
        region = MemoryRegion(self, name, size_bytes)
        self._regions[name] = region
        self.memory_used += size_bytes
        return region

    def region(self, name: str) -> MemoryRegion:
        try:
            return self._regions[name]
        except KeyError:
            raise ConfigurationError(f"no region {name!r} in partition {self.name!r}") from None

    # ------------------------------------------------------------------
    # temporal partitioning
    # ------------------------------------------------------------------
    @property
    def in_window(self) -> bool:
        """Is the partition currently executing its window?"""
        return self._in_window

    def defer(self, work: Callable[[], None]) -> None:
        """Run ``work`` inside this partition's next window.

        If called *during* the window (a job reacting to work delivered
        in the same window), the work runs immediately — it is already
        on the partition's processor time.
        """
        if self._in_window:
            work()
            self.deferred_executed += 1
        else:
            self._inbox.append(work)

    def execute_window(self) -> None:
        """Called by the component scheduler at the window start.

        Drains deferred work first (message deliveries), then runs each
        job's periodic step.  Everything executes at APPLICATION
        priority within a single kernel event — the window's internal
        interleaving is not modeled below job granularity.
        """
        self._in_window = True
        self.windows_executed += 1
        self._m_windows.inc()
        self._m_deferred.observe(len(self._inbox))
        tr = self.sim.trace
        if tr.wants(TraceCategory.PARTITION_WINDOW):
            tr.record(
                self.sim.now, TraceCategory.PARTITION_WINDOW, self.name,
                das=self.das, deferred=len(self._inbox),
            )
        else:
            tr.tick(TraceCategory.PARTITION_WINDOW)
        try:
            pending, self._inbox = self._inbox, []
            for work in pending:
                work()
                self.deferred_executed += 1
            for job in self.jobs:
                if job.active:
                    job.step()
        finally:
            self._in_window = False

    def pending_work(self) -> int:
        return len(self._inbox)

    # ------------------------------------------------------------------
    # round-template participant protocol (see repro.sim.round_template)
    # ------------------------------------------------------------------
    def rt_state(self) -> dict[str, int]:
        state = {
            "windows": self.windows_executed,
            "deferred": self.deferred_executed,
            "violations": self.spatial_violations,
        }
        for i, job in enumerate(self.jobs):
            prefix = f"j{i}."
            for key, v in job.rt_counters().items():
                state[prefix + key] = v
        return state

    def rt_check(self, delta: dict[str, int]) -> bool:
        # Monotonic statistics throughout (jobs promise the same for
        # their rt_counters extensions).
        return all(d >= 0 for d in delta.values())

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        self.windows_executed += delta["windows"] * k
        self.deferred_executed += delta["deferred"] * k
        self.spatial_violations += delta["violations"] * k
        for i, job in enumerate(self.jobs):
            job.rt_advance(delta, k, f"j{i}.")

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        """Aggregate of the jobs' behavioural states (None vetoes).

        Deferred work queued for the next window carries payload
        identity bulk replay cannot reproduce: veto.  A job without a
        replayable fingerprint (the base-class default) vetoes too, so
        partitions hosting unported application code always run live.
        """
        if self._inbox:
            return None
        cells = []
        for job in self.jobs:
            jfp = job.rt_fingerprint(boundary, round_len)
            if jfp is None:
                return None
            cells.append((job.name, int(job.active)) + jfp)
        return tuple(cells)

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        best: int | None = None
        for job in self.jobs:
            h = job.rt_headroom(boundary, round_len)
            if h is not None and (best is None or h < best):
                best = h
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Partition {self.name!r} das={self.das!r} jobs={len(self.jobs)}>"
