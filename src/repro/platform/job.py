"""Jobs: the basic unit of work — and the software FCR.

Sec. II-A: "A job is the basic unit of work and exploits a virtual
network in order to exchange messages with other jobs and work towards
a common goal."  Sec. II-D: "For software faults, we regard a job as a
FCR.  The failure mode of a job is a violation of the port
specification in either the time or value domain."

A :class:`Job` belongs to exactly one DAS and runs inside one partition.
Its interaction surface is its **link**: the set of ports bound via
:meth:`bind_port` (ports come from :mod:`repro.vn`).  Application logic
goes in two hooks:

* :meth:`step` — called once per partition window (periodic work), and
* :meth:`on_message` — called (within the partition window) for each
  instance delivered at a push input port.

Fault-injection hooks mirror the paper's job failure modes: a timing
failure means the send instant is wrong (the VN/gateway layers detect
it), a value failure means message content violates its specification.
Both are applied by :mod:`repro.faults` by wrapping the job's sends.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..errors import ConfigurationError, PortError
from ..sim import Simulator, TraceCategory

if TYPE_CHECKING:  # pragma: no cover
    from ..vn.port import Port
    from .partition import Partition

__all__ = ["Job"]


class Job:
    """Base class for application jobs (subclass and override hooks)."""

    def __init__(self, sim: Simulator, name: str, das: str, partition: "Partition") -> None:
        self.sim = sim
        self.name = name
        self.das = das
        self.partition = partition
        self.active = True
        self._ports: dict[str, "Port"] = {}
        self.activations = 0
        self.messages_handled = 0
        self._m_activations = sim.metrics.counter("job.activations")
        partition.bind_job(self)

    # ------------------------------------------------------------------
    # link management
    # ------------------------------------------------------------------
    def bind_port(self, port: "Port") -> "Port":
        """Attach a port to this job's link."""
        if port.name in self._ports:
            raise ConfigurationError(f"job {self.name!r} already has port {port.name!r}")
        self._ports[port.name] = port
        port.owner_job = self
        return port

    def port(self, name: str) -> "Port":
        try:
            return self._ports[name]
        except KeyError:
            raise PortError(f"job {self.name!r} has no port {name!r}") from None

    def ports(self) -> list["Port"]:
        return [self._ports[k] for k in sorted(self._ports)]

    # ------------------------------------------------------------------
    # application hooks
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Periodic work; runs once per partition window."""
        self.activations += 1
        self._m_activations.inc()
        tr = self.sim.trace
        if tr.wants(TraceCategory.JOB_ACTIVATION):
            tr.record(
                self.sim.now, TraceCategory.JOB_ACTIVATION, self.name, das=self.das
            )
        else:
            tr.tick(TraceCategory.JOB_ACTIVATION)
        self.on_step()

    def on_step(self) -> None:
        """Override: periodic application logic."""

    def deliver(self, port_name: str, instance: Any, arrival: int) -> None:
        """Called by a push input port; defers into the partition window."""

        def handle() -> None:
            if self.active:
                self.messages_handled += 1
                self.on_message(port_name, instance, arrival)

        self.partition.defer(handle)

    def on_message(self, port_name: str, instance: Any, arrival: int) -> None:
        """Override: react to a delivered message instance."""

    # ------------------------------------------------------------------
    # round-template support (aggregated by the owning partition)
    # ------------------------------------------------------------------
    def rt_counters(self) -> dict[str, int]:
        """Integer statistics whose per-round delta may be extrapolated.
        Subclasses extend the dict; every key must move monotonically."""
        return {"act": self.activations, "msg": self.messages_handled}

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        self.activations += delta[prefix + "act"] * k
        self.messages_handled += delta[prefix + "msg"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        """Behavioural state at a round boundary; None (the default)
        vetoes fast-forward — a job that has not declared its hidden
        control state replayable always runs live."""
        return None

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        """Upper bound on rounds of phase-repeating behaviour (None =
        unbounded); override alongside :meth:`rt_fingerprint`."""
        return None

    # ------------------------------------------------------------------
    def halt(self) -> None:
        """Software-FCR crash: the job stops producing and consuming."""
        self.active = False

    def resume(self) -> None:
        self.active = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Job {self.name!r} das={self.das!r} ports={sorted(self._ports)}>"
