"""Bound-vs-simulation cross-validation (``repro check bounds``).

The static flow bounds (:mod:`repro.check.flow_graph`) are only worth
gating on if they are *sound*: no observed behavior may exceed them.
This harness runs registry scenarios with flow tracing forced on and
compares every FlowTracer-observed quantity against its bound:

* per root message, the maximum observed origin-to-delivery latency
  (:meth:`FlowSet.end_to_end` semantics) vs. the maximum static
  ``e2e_bound`` over the message's flow paths, and
* per gateway, the maximum observed repository residence (parent's
  ``gw.stored`` to child's construction origin) vs. the gateway's
  static residence bound.

A measurement above its bound is a **violation** — the CI flow-bounds
job fails on any.  Alongside soundness the harness reports *tightness*
(bound / observed, 1.0 = exact): sound bounds are easy if vacuous, so
``BENCH_substrate.json``'s ``flow_bounds`` section records the minimum
tightness ratio and a threshold ceiling keeps it from degrading.

Flow tracing disables round-template fast-forward (the template engine
refuses bulk replay while ``sim.flows.enabled``), so every round runs
live and the observation set is complete, not a sampled subset.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any

from .flow_graph import FlowGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..analysis.flows import FlowSet, Journey
    from ..runner.scenarios import ScenarioSpec

__all__ = ["validate_registry", "validate_scenario"]

#: Gateway Process names carry this prefix (``gateway.<name>``).  A
#: ``gw.stored`` hop's source IS the gateway's full name — the same
#: string :attr:`VirtualGateway.name` holds — so observed and static
#: residence maps share keys without translation.
_GATEWAY_SOURCE_PREFIX = "gateway."


def _tightness(bound: int | None, observed: int) -> float | None:
    """bound / observed; 1.0 when both are exactly zero (the bound is
    met with equality); None when nothing was observed or no finite
    bound exists (nothing to compare)."""
    if bound is None:
        return None
    if observed <= 0:
        return 1.0 if bound == 0 else None
    return bound / observed


def _flow_graph_of(sim: Any, horizon: int | None) -> FlowGraph:
    """Assemble one whole-cluster graph from a simulator's checkables."""
    from ..core_network.cluster import Cluster
    from ..gateway.gateway import VirtualGateway
    from ..systems.assembly import System
    from ..vn.service import VirtualNetworkBase

    vns: dict[str, Any] = {}
    gateways: list[Any] = []
    schedule = None
    frames: dict[str, int] = {}
    for obj in sim.checkables:
        if isinstance(obj, System):
            vns.update(obj.vns)
            gateways.extend(obj.gateways.values())
            schedule = obj.cluster.schedule
            frames.update((n, c.major_frame) for n, c in obj.components.items())
        elif isinstance(obj, VirtualNetworkBase):
            vns.setdefault(obj.das, obj)
        elif isinstance(obj, VirtualGateway):
            if obj not in gateways:
                gateways.append(obj)
        elif isinstance(obj, Cluster) and schedule is None:
            schedule = obj.schedule
    return FlowGraph(vns=vns, gateways=gateways, schedule=schedule,
                     major_frame_of=frames.get, horizon=horizon)


def _static_bounds(graph: FlowGraph) -> tuple[dict[str, int], dict[str, int | None]]:
    """(per-root-message e2e bound, per-gateway residence bound).

    The e2e map keeps the *maximum* finite bound over a message's
    delivery paths (the observed quantity is the latest delivery over
    all descendants, so the widest path bounds it); messages with any
    unbounded delivery path are omitted (nothing sound to compare).
    """
    e2e: dict[str, int] = {}
    unbounded: set[str] = set()
    for path in graph.paths():
        if path.terminal != "port":
            continue
        bound = path.e2e_bound()
        if bound is None:
            unbounded.add(path.root_message)
            continue
        cur = e2e.get(path.root_message)
        e2e[path.root_message] = bound if cur is None else max(cur, bound)
    for message in unbounded:
        e2e.pop(message, None)

    residence: dict[str, int | None] = {}
    for gw in graph.gateways:
        worst: int | None = 0
        for rule in gw.rules:
            bound = graph.residence_bound(gw, rule)
            if bound is None:
                worst = None
                break
            worst = max(worst, bound)
        residence[gw.name] = worst
    return e2e, residence


def _observed_e2e(flows: "FlowSet") -> dict[str, int]:
    """Max observed origin-to-latest-delivery per root message."""
    from ..sim.flow import FlowStage

    def latest_delivery(j: "Journey", seen: set[int]) -> int | None:
        if j.flow in seen:  # pragma: no cover - ids are acyclic
            return None
        seen.add(j.flow)
        latest: int | None = None
        for hop in j.hops:
            if hop.stage == FlowStage.PORT_RECV:
                latest = hop.time if latest is None else max(latest, hop.time)
        for cid in j.children:
            child = flows.journey(cid)
            if child is None:
                continue
            sub = latest_delivery(child, seen)
            if sub is not None:
                latest = sub if latest is None else max(latest, sub)
        return latest

    out: dict[str, int] = {}
    for j in flows.roots():
        latest = latest_delivery(j, set())
        if latest is None:
            continue
        latency = latest - j.origin_time
        cur = out.get(j.message)
        out[j.message] = latency if cur is None else max(cur, latency)
    return out


def _observed_residence(flows: "FlowSet") -> dict[str, int]:
    """Max observed gateway-repository residence per gateway name."""
    from ..sim.flow import FlowStage

    out: dict[str, int] = {}
    for j in flows.journeys():
        stored = j.first_hop(FlowStage.GATEWAY_STORED)
        if stored is None or not stored.source.startswith(_GATEWAY_SOURCE_PREFIX):
            continue
        name = stored.source
        for cid in j.children:
            child = flows.journey(cid)
            if child is None or child.origin_time < stored.time:
                continue
            residence = child.origin_time - stored.time
            cur = out.get(name)
            out[name] = residence if cur is None else max(cur, residence)
    return out


def validate_scenario(spec: "ScenarioSpec") -> dict:
    """Run one scenario with flow tracing on and compare observations
    against the static bounds.  Returns a JSON-ready result dict."""
    from ..analysis.flows import FlowSet
    from ..runner.scenarios import build_scenario

    run_spec = spec.with_param("flow_tracing", True)
    if run_spec.trace_mode != "full":
        # FlowSet reconstruction needs the in-memory trace.
        run_spec = replace(run_spec, trace_mode="full")
    sim = build_scenario(run_spec)
    graph = _flow_graph_of(sim, horizon=spec.horizon_ns)
    e2e_bounds, residence_bounds = _static_bounds(graph)

    sim.run_until(spec.horizon_ns)
    flows = FlowSet.from_trace(sim.trace)
    observed_e2e = _observed_e2e(flows)
    observed_res = _observed_residence(flows)

    violations: list[dict] = []
    e2e: dict[str, dict] = {}
    for message, observed in sorted(observed_e2e.items()):
        bound = e2e_bounds.get(message)
        entry = {"observed_ns": observed, "bound_ns": bound,
                 "tightness": _tightness(bound, observed)}
        e2e[message] = entry
        if bound is not None and observed > bound:
            violations.append({"kind": "end_to_end", "name": message,
                               "observed_ns": observed, "bound_ns": bound})

    residence: dict[str, dict] = {}
    for name, bound in sorted(residence_bounds.items()):
        observed = observed_res.get(name, 0)
        entry = {"observed_ns": observed, "bound_ns": bound,
                 "tightness": _tightness(bound, observed)}
        residence[name] = entry
        if bound is not None and observed > bound:
            violations.append({"kind": "residence", "name": name,
                               "observed_ns": observed, "bound_ns": bound})

    ratios = [entry["tightness"]
              for entry in list(e2e.values()) + list(residence.values())
              if entry["tightness"] is not None]
    return {
        "scenario": spec.name,
        "flows": len(flows),
        "end_to_end": e2e,
        "residence": residence,
        "violations": violations,
        "min_tightness": min(ratios) if ratios else None,
    }


def validate_registry(tokens: list[str] | None = None) -> dict:
    """Cross-validate every (filtered) registry scenario.

    Returns a JSON-ready summary: per-scenario results, the global
    violation count (must be zero for the bounds to be sound), and the
    minimum tightness ratio over all compared quantities.
    """
    from ..runner.scenarios import default_registry, filter_scenarios

    results = [validate_scenario(spec)
               for spec in filter_scenarios(default_registry(), tokens)]
    violations = sum(len(r["violations"]) for r in results)
    ratios = [r["min_tightness"] for r in results
              if r["min_tightness"] is not None]
    compared = sum(
        1
        for r in results
        for section in ("end_to_end", "residence")
        for entry in r[section].values()
        if entry["tightness"] is not None
    )
    return {
        "scenarios": {r["scenario"]: r for r in results},
        "scenario_count": len(results),
        "compared": compared,
        "violations": violations,
        "min_tightness": min(ratios) if ratios else None,
    }
