"""Orchestration: run every analyzer family over model artifacts.

The entry points mirror how much of the model is in hand:

* :func:`check_link_spec` — one link specification (spec + automata),
* :func:`check_system` — a fully assembled
  :class:`~repro.systems.assembly.System` (adds schedule, bandwidth,
  coupling, and relay-latency analysis),
* :func:`check_simulator` — everything registered on a
  :class:`~repro.sim.Simulator` via ``register_checkable``,
* :func:`check_scenario` — build a registered sweep scenario and check
  the resulting simulator (the ``repro check --scenarios`` path),
* :func:`preflight` — the gate: check a simulator and, in strict mode,
  refuse to let a configuration with errors run.

``waivers`` map a rule id to a human reason; matching diagnostics are
downgraded to ``INFO`` with the reason attached (explicitly accepted,
visible, but not blocking).
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Any

from ..automata.automaton import TimedAutomaton
from ..spec.link_spec import LinkSpec
from . import automata_rules, flow_rules, schedule_rules, spec_rules
from .diagnostics import CheckReport, Diagnostic, render_text

if TYPE_CHECKING:  # pragma: no cover
    from ..runner.scenarios import ScenarioSpec
    from ..sim import Simulator

__all__ = [
    "RULES",
    "check_link_spec",
    "check_scenario",
    "check_simulator",
    "check_system",
    "preflight",
]

#: Every rule id with its one-line description (the ``--rules`` table).
RULES: dict[str, str] = {
    "SPEC000": "specification artifact cannot be parsed at all",
    "SPEC001": "convertible-element name incoherence across coupled links",
    "SPEC002": "datatype/width mismatch or dangling transfer-rule source field",
    "SPEC003": "control-paradigm / direction conflict (TT vs ET, send vs receive)",
    "SPEC004": "state transfer without a temporal-accuracy bound (d_acc)",
    "SPEC005": "dangling reference: automaton message with no port",
    "AUTO001": "determinism violation: overlapping guards on one action",
    "AUTO002": "unreachable automaton location",
    "AUTO003": "dead guard: statically unsatisfiable clock constraints",
    "AUTO004": "liveness: wedging location or unreachable error location",
    "SCHED001": "TDMA slot overlap / duplicate id / cycle overrun",
    "SCHED002": "bandwidth over-subscription vs. slot capacity or reservation",
    "SCHED003": "worst-case gateway-relay latency exceeds horizon(m)/d_acc",
    "DET001": "wall-clock access in the simulator core",
    "DET002": "stdlib random module in the simulator core",
    "DET003": "iteration over a set expression (hash-seed order)",
    "DET004": "environment-dependent value (uuid/env/dir listing) in the core",
    "FLOW001": "unreachable consumer: message has consumers but no producer",
    "FLOW002": "worst-case end-to-end information age exceeds the consumer's d_acc",
    "FLOW003": "gateway event-queue overflow: arrivals per drain exceed depth",
    "FLOW004": "VN demand exceeds its total per-cycle byte reservation",
}


def _finish(diags: list[Diagnostic], target: str,
            waivers: dict[str, str] | None) -> list[Diagnostic]:
    from .diagnostics import Severity

    out: list[Diagnostic] = []
    for d in diags:
        if target and not d.target:
            d = replace(d, target=target)
        # Only ERROR/WARNING need waiving (INFO never blocks), which also
        # makes repeated _finish passes over nested results idempotent.
        if waivers and d.rule in waivers and d.severity is not Severity.INFO:
            d = d.waived(waivers[d.rule])
        out.append(d)
    return out


def check_link_spec(
    link: LinkSpec,
    file: str = "",
    target: str = "",
    waivers: dict[str, str] | None = None,
) -> list[Diagnostic]:
    """SPEC0xx + AUTO0xx over one link specification."""
    diags = spec_rules.check_link(link, file)
    for automaton in link.automata:
        diags.extend(automata_rules.check_automaton(automaton, file))
    return _finish(diags, target or f"link:{link.das}", waivers)


def _check_gateway(gateway: Any, target: str,
                   waivers: dict[str, str] | None) -> list[Diagnostic]:
    link_a = gateway.sides["a"].link
    link_b = gateway.sides["b"].link
    diags = spec_rules.check_coupling(link_a, link_b, gateway=gateway.name)
    diags.extend(check_link_spec(link_a, target=target, waivers=waivers))
    diags.extend(check_link_spec(link_b, target=target, waivers=waivers))
    diags.extend(schedule_rules.check_gateway_latency(gateway))
    diags.extend(flow_rules.check_gateway_buffers(gateway))
    return _finish(diags, target or f"gateway:{gateway.name}", waivers)


def _check_vn(vn: Any, target: str,
              waivers: dict[str, str] | None) -> list[Diagnostic]:
    from .diagnostics import Severity, SourceLocation

    diags = schedule_rules.check_vn_demand(vn)
    for problem in vn.verify_reservations():
        diags.append(Diagnostic(
            rule="SCHED002",
            severity=Severity.ERROR,
            message=f"VN {vn.das!r}: {problem}",
            location=SourceLocation(path=f"vn[{vn.das}]"),
            hint="reserve bandwidth for the VN on the producing node's slot",
        ))
    return _finish(diags, target or f"vn:{vn.das}", waivers)


def check_system(system: Any, target: str = "",
                 waivers: dict[str, str] | None = None) -> list[Diagnostic]:
    """All families over an assembled :class:`System`."""
    from .flow_graph import FlowGraph

    diags = schedule_rules.check_schedule(system.cluster.schedule)
    for das in sorted(system.vns):
        diags.extend(_check_vn(system.vns[das], target, waivers))
    for name in sorted(system.gateways):
        diags.extend(_check_gateway(system.gateways[name], target, waivers))
    # Whole-cluster flow analysis (FLOW001/002/004); FLOW003 is emitted
    # per gateway above so each rule id has exactly one emitter.
    diags.extend(_finish(
        flow_rules.check_flow_graph(FlowGraph.from_system(system)),
        target, waivers))
    return _finish(diags, target, waivers)


def check_simulator(sim: "Simulator", target: str = "",
                    waivers: dict[str, str] | None = None) -> CheckReport:
    """Everything registered on a simulator, each artifact once.

    A :class:`System` owns its cluster, VNs, and gateways; artifacts it
    claims are not re-checked standalone even though builders registered
    them individually.
    """
    from ..core_network.cluster import Cluster
    from ..gateway.gateway import VirtualGateway
    from ..systems.assembly import System
    from ..vn.service import VirtualNetworkBase

    report = CheckReport()
    covered: set[int] = set()
    for obj in sim.checkables:
        if isinstance(obj, System):
            covered.add(id(obj.cluster))
            covered.update(id(vn) for vn in obj.vns.values())
            covered.update(id(gw) for gw in obj.gateways.values())
    for obj in sim.checkables:
        if id(obj) in covered:
            continue
        if isinstance(obj, System):
            report.extend(check_system(obj, target, waivers))
        elif isinstance(obj, VirtualGateway):
            report.extend(_check_gateway(obj, target, waivers))
        elif isinstance(obj, VirtualNetworkBase):
            report.extend(_check_vn(obj, target, waivers))
            report.extend(_finish(
                flow_rules.check_vn_flow(obj), target or f"vn:{obj.das}",
                waivers))
        elif isinstance(obj, Cluster):
            report.extend(_finish(
                schedule_rules.check_schedule(obj.schedule), target, waivers))
        elif isinstance(obj, LinkSpec):
            report.extend(check_link_spec(obj, target=target, waivers=waivers))
        elif isinstance(obj, TimedAutomaton):
            report.extend(_finish(
                automata_rules.check_automaton(obj), target, waivers))
        else:
            continue
        report.targets_checked += 1
    return report


def check_scenario(spec: "ScenarioSpec",
                   waivers: dict[str, str] | None = None) -> CheckReport:
    """Build one registered sweep scenario and check the result.

    Building is cheap (no virtual time elapses); the payoff is that the
    exact artifacts the sweep would run are what gets analyzed.
    """
    from ..runner.scenarios import build_scenario

    sim = build_scenario(spec)
    return check_simulator(sim, target=spec.name, waivers=waivers)


def preflight(sim: "Simulator", strict: bool = True,
              waivers: dict[str, str] | None = None) -> CheckReport:
    """The pre-flight gate; see :meth:`repro.sim.Simulator.preflight`."""
    from ..errors import PreflightError

    report = check_simulator(sim, waivers=waivers)
    if strict and not report.ok:
        raise PreflightError("pre-flight check failed:\n" + render_text(report))
    return report
