"""Pre-simulation static verification (``repro check``).

The paper's central artifact is a *formal* link specification — a
syntactic part, deterministic timed automata, and transfer semantics —
parameterizing hidden virtual gateways.  Determinism and temporal
well-formedness are load-bearing claims, so this package rejects broken
configurations *statically*, before a sweep burns CPU on them, the same
way a schedulability analyzer gates a TTP/TTA deployment:

* :mod:`repro.check.spec_rules` — SPEC0xx: cross-checks over link /
  port / VN specifications and gateway couplings,
* :mod:`repro.check.automata_rules` — AUTO0xx: determinism, reach-
  ability, guard satisfiability, and liveness of the timed automata,
* :mod:`repro.check.schedule_rules` — SCHED0xx: TDMA slot conflicts,
  per-VN bandwidth over-subscription, and gateway-relay latency vs.
  the ``horizon(m)`` temporal-accuracy windows,
* :mod:`repro.check.flow_graph` / :mod:`repro.check.flow_rules` —
  FLOW0xx: whole-cluster flow paths (producer port -> TDMA slot -> VN
  dispatch -> gateway relay chain -> consumer port) with static
  end-to-end latency / information-age / buffer-occupancy bounds,
* :mod:`repro.check.validate` — bound-vs-simulation cross-validation
  (``repro check bounds``): every traced observation must stay within
  its static bound,
* :mod:`repro.check.determinism` — DET0xx: an AST lint keeping
  wall-clock / ``random``-module / unordered-iteration nondeterminism
  out of the simulator core (``repro check --self``),
* :mod:`repro.check.analyzer` — orchestration: run every family over a
  link spec, a live :class:`~repro.systems.assembly.System`, or a whole
  :class:`~repro.sim.Simulator` (the pre-flight gate), and
* :mod:`repro.check.targets` — discovery of checkable artifacts from
  CLI paths (XML files, embedded specs, registered sweep scenarios).
"""

from __future__ import annotations

from .analyzer import (
    RULES,
    check_link_spec,
    check_scenario,
    check_simulator,
    check_system,
    preflight,
)
from .baseline import Baseline
from .diagnostics import (
    CheckReport,
    Diagnostic,
    Severity,
    SourceLocation,
    render_json,
    render_text,
)
from .determinism import DEFAULT_LINT_PACKAGES, lint_file, lint_paths, lint_source
from .flow_graph import FlowGraph, FlowPath, HopBound
from .targets import CheckTarget, builtin_targets, gather_targets, scenario_targets
from .validate import validate_registry, validate_scenario

__all__ = [
    "RULES",
    "Baseline",
    "CheckReport",
    "CheckTarget",
    "DEFAULT_LINT_PACKAGES",
    "Diagnostic",
    "FlowGraph",
    "FlowPath",
    "HopBound",
    "Severity",
    "SourceLocation",
    "builtin_targets",
    "check_link_spec",
    "check_scenario",
    "check_simulator",
    "check_system",
    "gather_targets",
    "lint_file",
    "lint_paths",
    "lint_source",
    "preflight",
    "render_json",
    "render_text",
    "scenario_targets",
    "validate_registry",
    "validate_scenario",
]
