"""FLOW0xx — whole-cluster flow analysis over the static flow graph.

These rules consume :class:`repro.check.flow_graph.FlowGraph` rather
than individual artifacts: they are only decidable once producers,
consumers, redirection rules, and the TDMA schedule are all known.

========  ==========================================================
FLOW001   unreachable consumer: a message has consumer bindings
          (ports or taps) but no producer on its VN — deliveries can
          never happen
FLOW002   end-to-end deadline: the worst-case information age along
          a producer-to-consumer path (sampling period + cluster
          cycle per VN hop + partition-window wait per visible
          gateway) exceeds the consuming state port's temporal
          accuracy d_acc — every delivery arrives stale
FLOW003   gateway buffer overflow: a redirection rule consumes an
          event element whose worst-case arrivals per drain interval
          exceed the declared queue depth — instances are dropped
          before they can be forwarded
FLOW004   VN over-utilization: the aggregate worst-case demand of a
          VN's producers exceeds the VN's total byte reservation per
          cluster cycle — backlog grows without bound
========  ==========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .diagnostics import Diagnostic, Severity, SourceLocation
from .flow_graph import FlowGraph

if TYPE_CHECKING:  # pragma: no cover
    from ..gateway.gateway import VirtualGateway
    from ..vn.service import VirtualNetworkBase

__all__ = [
    "check_flow_graph",
    "check_gateway_buffers",
    "check_vn_flow",
]


def _vn_loc(das: str, file: str) -> SourceLocation:
    return SourceLocation(path=f"vn[{das}]", file=file)


def _check_unreachable(graph: FlowGraph, vn: "VirtualNetworkBase",
                       file: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for message in graph.unreachable_consumers(vn):
        binding = vn.consumers_of(message)
        assert binding is not None
        sinks = sorted({c for c, _ in binding.ports} | {c for c, _ in binding.taps})
        diags.append(Diagnostic(
            rule="FLOW001",
            severity=Severity.WARNING,
            message=(f"message {message!r} on VN {vn.das!r} has consumers on "
                     f"{sinks} but no producer; those ports can never "
                     f"receive an instance"),
            location=SourceLocation(path=f"vn[{vn.das}]/message[{message}]",
                                    file=file),
            hint="attach a producing port or gateway rule, or drop the consumers",
        ))
    return diags


def _check_utilization(graph: FlowGraph, vn: "VirtualNetworkBase",
                       file: str) -> list[Diagnostic]:
    usage = graph.vn_utilization(vn)
    if usage is None:
        return []
    demand, supply = usage
    if supply <= 0 or demand <= supply:
        return []
    return [Diagnostic(
        rule="FLOW004",
        severity=Severity.ERROR,
        message=(f"VN {vn.das!r} demands up to {demand:.0f} bytes per "
                 f"cluster cycle but only {supply:.0f} bytes are reserved "
                 f"across all slots ({demand / supply:.0%} utilization); "
                 f"backlog grows without bound"),
        location=_vn_loc(vn.das, file),
        hint="widen the reservations, slow the producers, or split the DAS",
    )]


def check_vn_flow(vn: "VirtualNetworkBase", file: str = "",
                  graph: FlowGraph | None = None) -> list[Diagnostic]:
    """FLOW001 + FLOW004 for a single virtual network.

    Used for bare VN checkables that are not part of a full
    :class:`System`; ``graph`` lets a caller share one graph instance.
    """
    if graph is None:
        graph = FlowGraph(vns={vn.das: vn})
    return (_check_unreachable(graph, vn, file)
            + _check_utilization(graph, vn, file))


def check_gateway_buffers(gateway: "VirtualGateway",
                          file: str = "") -> list[Diagnostic]:
    """FLOW003: event-queue pressure per redirection rule.

    Silently skips unresolved rules (gateway not started) and rules
    whose source rate is statically unknown.
    """
    diags: list[Diagnostic] = []
    for rule in gateway.rules:
        pressure = FlowGraph.buffer_pressure(gateway, rule)
        if pressure is None:
            continue
        element, arrivals, depth, drain = pressure
        if arrivals <= depth:
            continue
        diags.append(Diagnostic(
            rule="FLOW003",
            severity=Severity.ERROR,
            message=(f"gateway {gateway.name!r} rule {rule.src!r}->"
                     f"{rule.dst!r} consumes event element {element!r}: up "
                     f"to {arrivals} instances arrive per {drain} ns drain "
                     f"interval but the queue holds only {depth}; instances "
                     f"are dropped before forwarding"),
            location=SourceLocation(
                path=f"gateway[{gateway.name}]/rule[{rule.src}->{rule.dst}]",
                file=file,
            ),
            hint="deepen the event queue_depth or shorten the destination period",
        ))
    return diags


def check_flow_graph(graph: FlowGraph, file: str = "") -> list[Diagnostic]:
    """FLOW001/FLOW002/FLOW004 over an assembled whole-cluster graph.

    FLOW003 is emitted per gateway by :func:`check_gateway_buffers`
    (the analyzer calls it from its gateway pass), keeping each rule
    owned by exactly one emitter.
    """
    diags: list[Diagnostic] = []
    for das in sorted(graph.vns):
        vn = graph.vns[das]
        diags.extend(_check_unreachable(graph, vn, file))
        diags.extend(_check_utilization(graph, vn, file))
    for path in graph.paths():
        if path.terminal != "port" or path.d_acc is None:
            continue
        age = path.age_bound()
        if age <= path.d_acc:
            continue
        diags.append(Diagnostic(
            rule="FLOW002",
            severity=Severity.ERROR,
            message=(f"flow {path.describe()} has worst-case information "
                     f"age {age} ns but the consuming state port requires "
                     f"d_acc={path.d_acc} ns; every delivery arrives stale"),
            location=SourceLocation(
                path=(f"flow[{path.root_das}:{path.root_message}->"
                      f"{path.consumer}]"),
                file=file,
            ),
            hint="raise temporal_accuracy (d_acc) or shorten the path's periods",
        ))
    return diags
