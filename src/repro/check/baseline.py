"""Accepted-warning baselines for incremental adoption.

``repro check --baseline FILE`` compares the current findings against a
recorded set of accepted warning fingerprints: warnings already in the
baseline are moved to the report's ``accepted`` list (they don't fail
CI), while *new* warnings — and all errors, always — still block.
``--update-baseline`` records the current warnings as accepted.

The file is sorted JSON so diffs review cleanly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .diagnostics import CheckReport, Severity


@dataclass
class Baseline:
    """A persisted set of accepted diagnostic fingerprints."""

    accepted: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        p = Path(path)
        if not p.exists():
            return cls()
        data = json.loads(p.read_text())
        entries = data.get("accepted", []) if isinstance(data, dict) else []
        return cls(accepted={str(e) for e in entries})

    def save(self, path: str | Path) -> None:
        payload = {"version": 1, "accepted": sorted(self.accepted)}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    # ------------------------------------------------------------------
    def apply(self, report: CheckReport) -> CheckReport:
        """Move baseline-accepted warnings/info out of the live set.

        Errors are never accepted — a baseline must not mask a broken
        configuration, only grandfather existing warnings.
        """
        live = []
        for d in report.diagnostics:
            if d.severity is not Severity.ERROR and d.fingerprint() in self.accepted:
                report.accepted.append(d)
            else:
                live.append(d)
        report.diagnostics = live
        return report

    def record(self, report: CheckReport) -> "Baseline":
        """Accept every current non-error finding (for --update-baseline)."""
        for d in report.diagnostics + report.accepted:
            if d.severity is not Severity.ERROR:
                self.accepted.add(d.fingerprint())
        return self
