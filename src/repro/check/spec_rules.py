"""SPEC0xx — cross-checks over link / port / VN specifications.

The gateway redirects *convertible elements* between virtual networks
whose specifications were written independently (Sec. IV-A: property
mismatches at the DAS boundary).  These rules catch the mismatches that
otherwise surface as :class:`~repro.errors.GatewayError` at start-up —
or worse, as silently-wrong conversions at simulation time:

========  ==========================================================
SPEC001   convertible-element name incoherence across the two links
          coupled by a gateway (no common vocabulary / case-only
          near-misses)
SPEC002   datatype or width mismatch between same-named convertible
          elements, and transfer rules referencing unknown source
          fields
SPEC003   control-paradigm conflicts: port paradigm vs. VN paradigm,
          automata sending on input ports (direction conflict),
          timing blocks contradicting the declared paradigm
SPEC004   state-semantics transfer without a temporal-accuracy bound
          (``d_acc``) — staleness of relayed state is unbounded
SPEC005   dangling references: automata naming messages that have no
          port, gateway rules naming messages absent from the link
========  ==========================================================
"""

from __future__ import annotations

from ..messaging import ElementDef, Semantics
from ..spec.link_spec import LinkSpec
from ..spec.port_spec import ControlParadigm, PortSpec
from ..spec.vn_spec import VirtualNetworkSpec
from .diagnostics import Diagnostic, Severity, SourceLocation

__all__ = ["check_link", "check_vn", "check_coupling"]


def _port_loc(link: LinkSpec, port: PortSpec, file: str) -> SourceLocation:
    return SourceLocation(
        path=f"linkspec[{link.das}]/port[{port.name}]", file=file
    )


def _check_port(link: LinkSpec, port: PortSpec, file: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    if port.semantics is Semantics.STATE and port.temporal_accuracy is None:
        diags.append(Diagnostic(
            rule="SPEC004",
            severity=Severity.WARNING,
            message=(f"state port {port.name!r} in link for DAS {link.das!r} "
                     f"declares no temporal-accuracy bound (d_acc); the "
                     f"staleness of relayed state is unbounded"),
            location=_port_loc(link, port, file),
            hint="set temporal_accuracy= on the PortSpec (dacc= in XML)",
        ))
    if port.control is ControlParadigm.TIME_TRIGGERED and port.et is not None:
        diags.append(Diagnostic(
            rule="SPEC003",
            severity=Severity.WARNING,
            message=(f"time-triggered port {port.name!r} carries an "
                     f"event-triggered interarrival block, which is ignored"),
            location=_port_loc(link, port, file),
            hint="drop the ET timing or change the control paradigm",
        ))
    if port.control is ControlParadigm.EVENT_TRIGGERED and port.tt is not None:
        diags.append(Diagnostic(
            rule="SPEC003",
            severity=Severity.WARNING,
            message=(f"event-triggered port {port.name!r} carries a TT "
                     f"period/phase block, which is ignored"),
            location=_port_loc(link, port, file),
            hint="drop the TT timing or change the control paradigm",
        ))
    return diags


def _check_transfer(link: LinkSpec, file: str) -> list[Diagnostic]:
    """Transfer rules must reference fields that some port can supply."""
    diags: list[Diagnostic] = []
    available: set[str] = set()
    for p in link.ports:
        for e in p.message_type.convertible_elements():
            available.add(e.name.lower())
            for f in e.fields:
                available.add(f.name.lower())
    for name in link.transfer.names():
        loc = SourceLocation(
            path=f"linkspec[{link.das}]/transfersemantics/element[{name}]",
            file=file,
        )
        for ref in sorted(link.transfer.sources_for(name)):
            if ref.lower() in available or ref == "t_now":
                continue
            diags.append(Diagnostic(
                rule="SPEC002",
                severity=Severity.WARNING if not link.ports else Severity.ERROR,
                message=(f"transfer rule for derived element {name!r} in link "
                         f"for DAS {link.das!r} references {ref!r}, which no "
                         f"convertible element of this link supplies"),
                location=loc,
                hint="fix the field name or add the source element to a port",
            ))
    return diags


def check_link(link: LinkSpec, file: str = "") -> list[Diagnostic]:
    """Run all per-link SPEC0xx rules."""
    diags: list[Diagnostic] = []
    for port in link.ports:
        diags.extend(_check_port(link, port, file))
    diags.extend(_check_transfer(link, file))
    for problem in link.validate_against_automata():
        loc = SourceLocation(path=f"linkspec[{link.das}]", file=file)
        if "unknown message" in problem:
            diags.append(Diagnostic(
                rule="SPEC005",
                severity=Severity.ERROR,
                message=f"link for DAS {link.das!r}: {problem}",
                location=loc,
                hint="declare a port for the message or fix the automaton label",
            ))
        else:  # receives on non-input / sends on non-output
            diags.append(Diagnostic(
                rule="SPEC003",
                severity=Severity.ERROR,
                message=f"link for DAS {link.das!r}: {problem}",
                location=loc,
                hint="flip the port direction or the automaton's !/? label",
            ))
    return diags


def check_vn(vn: VirtualNetworkSpec, file: str = "") -> list[Diagnostic]:
    """Run VN-level SPEC0xx rules (plus per-link rules on each link)."""
    diags: list[Diagnostic] = []
    for problem in vn.validate_control_paradigm():
        diags.append(Diagnostic(
            rule="SPEC003",
            severity=Severity.ERROR,
            message=f"VN spec for DAS {vn.das!r}: {problem}",
            location=SourceLocation(path=f"vnspec[{vn.das}]", file=file),
            hint="a virtual network runs one paradigm; move the port or the VN",
        ))
    for link in vn.links:
        diags.extend(check_link(link, file))
    return diags


def _structure(e: ElementDef) -> tuple[tuple[str, str], ...]:
    return tuple((f.name, type(f.ftype).__name__) for f in e.fields)


def check_coupling(
    link_a: LinkSpec,
    link_b: LinkSpec,
    gateway: str = "",
    file: str = "",
) -> list[Diagnostic]:
    """SPEC001/SPEC002 across the two links coupled by one gateway."""
    diags: list[Diagnostic] = []
    label = gateway or f"{link_a.das}<->{link_b.das}"
    loc = SourceLocation(path=f"gateway[{label}]", file=file)

    def conv(link: LinkSpec) -> dict[str, ElementDef]:
        out: dict[str, ElementDef] = {}
        for p in link.ports:
            for e in p.message_type.convertible_elements():
                out.setdefault(e.name, e)
        return out

    conv_a, conv_b = conv(link_a), conv(link_b)
    derived = set(link_a.transfer.names()) | set(link_b.transfer.names())
    common = conv_a.keys() & conv_b.keys()
    bridged = common | (derived & (conv_a.keys() | conv_b.keys())) \
        | (set(link_a.transfer.names()) & set(link_b.transfer.names()))
    if not bridged and (conv_a or conv_b):
        diags.append(Diagnostic(
            rule="SPEC001",
            severity=Severity.ERROR,
            message=(f"gateway {label!r} couples links with no common "
                     f"convertible elements and no transfer-semantics bridge "
                     f"(side a: {sorted(conv_a) or '[]'}, side b: "
                     f"{sorted(conv_b) or '[]'}); nothing can be redirected"),
            location=loc,
            hint=("align the element names across the DASs or add a "
                  "<transfersemantics> derived element"),
        ))
    # Case-only near-misses are almost always naming incoherence between
    # independently-written DAS specifications (Sec. IV-A).
    lower_a = {n.lower(): n for n in conv_a}
    lower_b = {n.lower(): n for n in conv_b}
    for low in lower_a.keys() & lower_b.keys():
        na, nb = lower_a[low], lower_b[low]
        if na != nb:
            diags.append(Diagnostic(
                rule="SPEC001",
                severity=Severity.WARNING,
                message=(f"gateway {label!r}: convertible elements {na!r} "
                         f"(side a) and {nb!r} (side b) differ only in case "
                         f"and will NOT be matched"),
                location=loc,
                hint="unify the spelling in both DAS specifications",
            ))
    for name in sorted(common):
        ea, eb = conv_a[name], conv_b[name]
        if ea.bit_width() != eb.bit_width():
            diags.append(Diagnostic(
                rule="SPEC002",
                severity=Severity.ERROR,
                message=(f"gateway {label!r}: convertible element {name!r} is "
                         f"{ea.bit_width()} bits on side a but "
                         f"{eb.bit_width()} bits on side b"),
                location=loc,
                hint="redirected elements must agree on width; fix the datatypes",
            ))
        elif _structure(ea) != _structure(eb):
            diags.append(Diagnostic(
                rule="SPEC002",
                severity=Severity.WARNING,
                message=(f"gateway {label!r}: convertible element {name!r} has "
                         f"matching width but different field layout "
                         f"({_structure(ea)} vs {_structure(eb)})"),
                location=loc,
                hint="field-by-field conversion may reinterpret values",
            ))
    return diags
