"""Interval analysis over guard conjunctions.

Guards are conjunctions of comparison terms over clock variables and
parameters (Sec. IV-B.2).  For static determinism and satisfiability
checks we project each guard onto per-variable intervals: a term
``x >= tmin`` with ``tmin`` bound to a constant constrains the interval
of ``x``.  Terms that mix variables, reference ``t_now``, or call
environment functions (``horizon(m)``, ``requ(m)``) are *undecidable*
statically and are tracked so callers can degrade an error to a warning
instead of claiming a proof they don't have.

Clocks advance with global time from 0 and are only ever reset to 0, so
every clock variable carries the base interval ``[0, +inf)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.automaton import Guard
from ..automata.expr import BinOp, Call, Const, Expr, Neg, Var

__all__ = ["Interval", "GuardProjection", "project_guard"]

_INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """A closed/open numeric interval ``lo .. hi``."""

    lo: float = -_INF
    hi: float = _INF
    lo_open: bool = False
    hi_open: bool = False

    def is_empty(self) -> bool:
        if self.lo > self.hi:
            return True
        if self.lo == self.hi and (self.lo_open or self.hi_open):
            return True
        return False

    def intersect(self, other: "Interval") -> "Interval":
        if self.lo > other.lo or (self.lo == other.lo and self.lo_open):
            lo, lo_open = self.lo, self.lo_open
        else:
            lo, lo_open = other.lo, other.lo_open
        if self.hi < other.hi or (self.hi == other.hi and self.hi_open):
            hi, hi_open = self.hi, self.hi_open
        else:
            hi, hi_open = other.hi, other.hi_open
        return Interval(lo, hi, lo_open, hi_open)

    def __str__(self) -> str:
        lo = "(" if self.lo_open else "["
        hi = ")" if self.hi_open else "]"
        return f"{lo}{self.lo}, {self.hi}{hi}"


NONNEGATIVE = Interval(lo=0.0)


def _fold(expr: Expr, parameters: dict[str, int | float]) -> float | None:
    """Constant-fold ``expr`` against bound parameters; None = symbolic."""
    if isinstance(expr, Const):
        v = expr.value
        return float(v) if isinstance(v, (int, float, bool)) else None
    if isinstance(expr, Var):
        v = parameters.get(expr.name)
        return float(v) if v is not None else None
    if isinstance(expr, Neg):
        inner = _fold(expr.operand, parameters)
        return -inner if inner is not None else None
    if isinstance(expr, BinOp) and expr.op in ("+", "-", "*", "/"):
        lhs = _fold(expr.lhs, parameters)
        rhs = _fold(expr.rhs, parameters)
        if lhs is None or rhs is None:
            return None
        if expr.op == "/" and rhs == 0:
            return None
        return {"+": lhs + rhs, "-": lhs - rhs,
                "*": lhs * rhs, "/": lhs / rhs if rhs else 0.0}[expr.op]
    if isinstance(expr, Call):
        return None
    return None


_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}


def _interval_for(op: str, bound: float) -> Interval | None:
    if op == "<":
        return Interval(hi=bound, hi_open=True)
    if op == "<=":
        return Interval(hi=bound)
    if op == ">":
        return Interval(lo=bound, lo_open=True)
    if op == ">=":
        return Interval(lo=bound)
    if op == "==":
        return Interval(lo=bound, hi=bound)
    return None  # != carves a hole; not an interval — treat as undecidable


@dataclass
class GuardProjection:
    """Per-variable intervals plus the statically-opaque remainder."""

    intervals: dict[str, Interval]
    undecidable: list[str]  # source text of terms we could not project
    no_message: bool = False

    @property
    def fully_decidable(self) -> bool:
        return not self.undecidable

    def unsatisfiable_vars(self, clocks: tuple[str, ...] = ()) -> list[str]:
        """Variables whose interval is empty (clocks clipped to >= 0)."""
        out = []
        for var, iv in self.intervals.items():
            if var in clocks:
                iv = iv.intersect(NONNEGATIVE)
            if iv.is_empty():
                out.append(var)
        return out

    def overlaps(self, other: "GuardProjection",
                 clocks: tuple[str, ...] = ()) -> bool:
        """Can both projections hold at once (on the decidable part)?

        Conservative toward overlap: variables constrained by only one
        side — and all undecidable terms — never provide disjointness.
        """
        for var in self.intervals.keys() & other.intervals.keys():
            a, b = self.intervals[var], other.intervals[var]
            joint = a.intersect(b)
            if var in clocks:
                joint = joint.intersect(NONNEGATIVE)
            if joint.is_empty():
                return False
        return True


def project_guard(guard: Guard, parameters: dict[str, int | float]) -> GuardProjection:
    """Project a guard conjunction onto per-variable intervals."""
    intervals: dict[str, Interval] = {}
    undecidable: list[str] = []
    for term in guard.terms:
        projected = False
        if isinstance(term, BinOp) and term.op in _FLIP:
            for lhs, rhs, op in ((term.lhs, term.rhs, term.op),
                                 (term.rhs, term.lhs, _FLIP[term.op])):
                if isinstance(lhs, Var) and lhs.name not in parameters \
                        and lhs.name != "t_now":
                    bound = _fold(rhs, parameters)
                    if bound is not None:
                        iv = _interval_for(op, bound)
                        if iv is not None:
                            cur = intervals.get(lhs.name, Interval())
                            intervals[lhs.name] = cur.intersect(iv)
                            projected = True
                    break
        if not projected:
            undecidable.append(str(term))
    return GuardProjection(intervals=intervals, undecidable=undecidable,
                           no_message=guard.no_message)
