"""SCHED0xx — static analysis of the TDMA schedule and its overlays.

The cluster cycle is global a-priori knowledge; so are the per-VN byte
reservations, the TT dispatch periods, and the temporal-accuracy
windows of the state ports.  That makes three whole-system properties
statically decidable:

========  ==========================================================
SCHED001  slot-table conflicts: overlapping transmission windows,
          duplicate slot ids, slots extending beyond the cycle
SCHED002  bandwidth over-subscription: per-slot reservations that
          exceed the slot capacity, and per-VN traffic demand (from
          the TT periods / ET interarrival bounds of the producing
          ports) exceeding the producing node's reservation per cycle
SCHED003  stale state: the worst-case gateway-relay latency of a
          redirected state message exceeds its temporal-accuracy
          window ``d_acc`` — ``horizon(m)`` would reject every (or
          nearly every) constructed instance
========  ==========================================================
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from ..core_network.schedule import Slot, TDMASchedule
from ..messaging import Semantics
from ..spec.port_spec import PortSpec
from .diagnostics import Diagnostic, Severity, SourceLocation

if TYPE_CHECKING:  # pragma: no cover
    from ..gateway.gateway import VirtualGateway
    from ..vn.service import VirtualNetworkBase

__all__ = ["check_slots", "check_schedule", "check_vn_demand", "check_gateway_latency"]


def _slot_loc(slot: Slot, file: str) -> SourceLocation:
    return SourceLocation(path=f"schedule/slot[{slot.slot_id}]", file=file)


def check_slots(slots: Sequence[Slot], cycle_length: int,
                file: str = "") -> list[Diagnostic]:
    """SCHED001/SCHED002 over a raw slot list.

    Accepts the *unvalidated* slot sequence (``TDMASchedule`` itself
    refuses to construct from overlapping slots) so fixtures and
    hand-written tables can be analyzed before construction.
    """
    diags: list[Diagnostic] = []
    seen_ids: dict[int, Slot] = {}
    for s in slots:
        if s.slot_id in seen_ids:
            diags.append(Diagnostic(
                rule="SCHED001",
                severity=Severity.ERROR,
                message=(f"duplicate slot id {s.slot_id}: assigned to both "
                         f"{seen_ids[s.slot_id].sender!r} and {s.sender!r}"),
                location=_slot_loc(s, file),
                hint="slot ids must be unique within the cluster cycle",
            ))
        else:
            seen_ids[s.slot_id] = s
        if s.end_offset() > cycle_length:
            diags.append(Diagnostic(
                rule="SCHED001",
                severity=Severity.ERROR,
                message=(f"slot {s.slot_id} of {s.sender!r} ends at offset "
                         f"{s.end_offset()} beyond the cycle length "
                         f"{cycle_length}"),
                location=_slot_loc(s, file),
                hint="lengthen the cycle or shorten/move the slot",
            ))
        reserved = sum(s.reservations.values())
        if reserved > s.capacity_bytes:
            diags.append(Diagnostic(
                rule="SCHED002",
                severity=Severity.ERROR,
                message=(f"slot {s.slot_id} of {s.sender!r} reserves "
                         f"{reserved} bytes across VNs "
                         f"{sorted(s.reservations)} but has capacity for "
                         f"only {s.capacity_bytes}"),
                location=_slot_loc(s, file),
                hint="shrink the reservations or grow the slot capacity",
            ))
    ordered = sorted(slots, key=lambda s: (s.offset, s.slot_id))
    for prev, cur in zip(ordered, ordered[1:]):
        if cur.offset < prev.end_offset():
            diags.append(Diagnostic(
                rule="SCHED001",
                severity=Severity.ERROR,
                message=(f"slot {cur.slot_id} of {cur.sender!r} (offset "
                         f"{cur.offset}) overlaps slot {prev.slot_id} of "
                         f"{prev.sender!r} (ends {prev.end_offset()}); "
                         f"both would transmit at once"),
                location=_slot_loc(cur, file),
                hint="TDMA windows must be disjoint; re-run the schedule builder",
            ))
    return diags


def check_schedule(schedule: TDMASchedule, file: str = "") -> list[Diagnostic]:
    """SCHED001/SCHED002 over a constructed schedule."""
    return check_slots(schedule.slots, schedule.cycle_length, file)


def _demand_per_cycle(spec: PortSpec, nbytes: int, cycle_length: int) -> int | None:
    """Worst-case bytes this port asks of one cluster cycle (None = unbounded
    but not statically chargeable, e.g. ET with no interarrival floor)."""
    if spec.tt is not None:
        sends = -(-cycle_length // spec.tt.period)  # ceil
        return nbytes * sends
    if spec.et is not None and spec.et.min_interarrival > 0:
        sends = -(-cycle_length // spec.et.min_interarrival)
        return nbytes * sends
    return None


def check_vn_demand(vn: "VirtualNetworkBase", file: str = "") -> list[Diagnostic]:
    """SCHED002: per-VN traffic demand vs. the producing node's reservation."""
    from ..core_network.frame import CHUNK_HEADER_BYTES

    diags: list[Diagnostic] = []
    schedule = vn.cluster.schedule
    cycle = schedule.cycle_length
    demand_by_node: dict[str, list[tuple[str, int]]] = {}
    for binding in vn._producers.values():
        spec = binding.port.spec if binding.port is not None else None
        try:
            mtype = vn.namespace.lookup(binding.message)
        except Exception:
            continue
        nbytes = CHUNK_HEADER_BYTES + mtype.byte_width()
        if spec is None:
            # Gateway producer: TT timing lives in the overlay, not a
            # runtime port.  Charge one send per cycle as the floor.
            demand = nbytes
        else:
            d = _demand_per_cycle(spec, nbytes, cycle)
            if d is None:
                continue
            demand = d
        demand_by_node.setdefault(binding.component, []).append(
            (binding.message, demand))
    for node, items in sorted(demand_by_node.items()):
        slots = schedule.slots_of(node)
        if not slots:
            diags.append(Diagnostic(
                rule="SCHED002",
                severity=Severity.ERROR,
                message=(f"node {node!r} produces "
                         f"{sorted(m for m, _ in items)} on VN {vn.das!r} "
                         f"but owns no TDMA slot; its chunks can never "
                         f"leave the node"),
                location=SourceLocation(path=f"schedule/sender[{node}]", file=file),
                hint="add a slot for the node in the cluster schedule",
            ))
            continue
        # An empty reservations dict means the slot is unpartitioned —
        # the whole capacity is available to any VN.
        available = sum(
            s.reserved_for(vn.das) if s.reservations else s.capacity_bytes
            for s in slots
        )
        demand = sum(d for _, d in items)
        if demand > available:
            diags.append(Diagnostic(
                rule="SCHED002",
                severity=Severity.WARNING,
                message=(f"VN {vn.das!r} on node {node!r} may demand up to "
                         f"{demand} bytes per cluster cycle "
                         f"({', '.join(f'{m}={d}' for m, d in items)}) but "
                         f"only {available} bytes are reserved; chunks will "
                         f"queue across cycles"),
                location=SourceLocation(path=f"schedule/sender[{node}]", file=file),
                hint="widen the reservation (SystemBuilder.reserve) or slow the producers",
            ))
    return diags


def _tt_period(link_port: PortSpec | None) -> int | None:
    if link_port is not None and link_port.tt is not None:
        return link_port.tt.period
    return None


def check_gateway_latency(gateway: "VirtualGateway",
                          file: str = "") -> list[Diagnostic]:
    """SCHED003: worst-case relay latency vs. the d_acc window."""
    diags: list[Diagnostic] = []
    schedule = gateway.sides["a"].vn.cluster.schedule
    cycle = schedule.cycle_length
    for rule in gateway.rules:
        src_side = gateway.sides[rule.src_side]
        dst_side = gateway.sides["b" if rule.src_side == "a" else "a"]
        src_port = src_side.link.port(rule.src) if src_side.link.has_port(rule.src) else None
        dst_port = dst_side.link.port(rule.dst) if dst_side.link.has_port(rule.dst) else None
        if dst_port is None or dst_port.semantics is not Semantics.STATE:
            continue
        d_acc = dst_port.temporal_accuracy
        if d_acc is None and src_port is not None:
            d_acc = src_port.temporal_accuracy
        if d_acc is None:
            continue  # SPEC004 reports the missing bound
        loc = SourceLocation(
            path=f"gateway[{gateway.name}]/rule[{rule.src}->{rule.dst}]",
            file=file,
        )
        src_period = _tt_period(src_port) or 0
        dst_period = _tt_period(dst_port) or 0
        # Worst case: the source value is almost one source period old
        # when received, waits up to one cluster cycle for the host's
        # slot, and then up to one destination period for the dispatch
        # instant that samples the gateway's construction.
        worst = src_period + cycle + dst_period
        if dst_period > d_acc or src_period > d_acc:
            which = ("destination dispatch period" if dst_period > d_acc
                     else "source production period")
            period = max(dst_period, src_period)
            diags.append(Diagnostic(
                rule="SCHED003",
                severity=Severity.ERROR,
                message=(f"gateway {gateway.name!r} relays state "
                         f"{rule.src!r}->{rule.dst!r} with d_acc={d_acc} ns "
                         f"but the {which} alone is {period} ns: relayed "
                         f"state is stale before it can be delivered"),
                location=loc,
                hint="raise temporal_accuracy (d_acc) or shorten the period",
            ))
        elif worst > d_acc:
            diags.append(Diagnostic(
                rule="SCHED003",
                severity=Severity.WARNING,
                message=(f"gateway {gateway.name!r} relays state "
                         f"{rule.src!r}->{rule.dst!r} with d_acc={d_acc} ns "
                         f"but the worst-case relay latency is {worst} ns "
                         f"(src period {src_period} + cluster cycle {cycle} "
                         f"+ dst period {dst_period}); unlucky phasing "
                         f"delivers stale state"),
                location=loc,
                hint="align the periods with the cluster cycle or raise d_acc",
            ))
    return diags
