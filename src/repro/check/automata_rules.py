"""AUTO0xx — static analysis of the timed automata.

The paper requires the temporal part of a link specification to be a
set of *deterministic* timed automata (Sec. IV-B.2).  These rules prove
(or refute) the properties that the simulator otherwise only discovers
dynamically:

========  ==========================================================
AUTO001   determinism violation: two transitions leave one location
          with the same action label and overlapping guards
AUTO002   unreachable location (no path from the initial location)
AUTO003   dead guard: statically unsatisfiable conjunction — the
          transition can never fire
AUTO004   liveness: a non-error location with no outgoing transitions
          (the automaton wedges there), or an error location that is
          declared but unreachable (the monitor can never trip)
========  ==========================================================
"""

from __future__ import annotations

from ..automata.automaton import ActionKind, TimedAutomaton, Transition
from .diagnostics import Diagnostic, Severity, SourceLocation
from .intervals import project_guard

__all__ = ["check_automaton"]


def _loc(automaton: TimedAutomaton, state: str, file: str = "") -> SourceLocation:
    return SourceLocation(
        path=f"timedautomaton[{automaton.name}]/location[{state}]", file=file
    )


def _action_key(t: Transition) -> tuple[str, str]:
    return (t.action.kind.value, t.action.message or "")


def _determinism(automaton: TimedAutomaton, file: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    clocks = automaton.clocks
    for state in automaton.locations:
        by_action: dict[tuple[str, str], list[Transition]] = {}
        for t in automaton.outgoing(state):
            by_action.setdefault(_action_key(t), []).append(t)
        for (kind, message), group in by_action.items():
            if len(group) < 2:
                continue
            projections = [project_guard(t.guard, automaton.parameters) for t in group]
            for i in range(len(group)):
                for j in range(i + 1, len(group)):
                    a, b = projections[i], projections[j]
                    if not a.overlaps(b, clocks):
                        continue
                    proven = a.fully_decidable and b.fully_decidable
                    label = f"{message}{'!' if kind == 'send' else '?'}" \
                        if kind != "silent" else "(silent)"
                    guards = (f"[{group[i].guard}] -> {group[i].target!r} and "
                              f"[{group[j].guard}] -> {group[j].target!r}")
                    diags.append(Diagnostic(
                        rule="AUTO001",
                        severity=Severity.ERROR if proven else Severity.WARNING,
                        message=(
                            f"automaton {automaton.name!r} is nondeterministic at "
                            f"{state!r}: transitions {label} with overlapping guards "
                            f"{guards}"
                            + ("" if proven else
                               " (guards contain terms that cannot be decided"
                               " statically; overlap assumed)")
                        ),
                        location=_loc(automaton, state, file),
                        hint=("make the guards disjoint, e.g. split on a clock "
                              "threshold (x < tmin vs. x >= tmin)"),
                    ))
    return diags


def _reachability(
    automaton: TimedAutomaton, file: str
) -> tuple[list[Diagnostic], set[str]]:
    reachable = {automaton.initial}
    frontier = [automaton.initial]
    while frontier:
        here = frontier.pop()
        for t in automaton.outgoing(here):
            if t.target not in reachable:
                reachable.add(t.target)
                frontier.append(t.target)
    diags: list[Diagnostic] = []
    for state in automaton.locations:
        if state in reachable:
            continue
        if state == automaton.error:
            diags.append(Diagnostic(
                rule="AUTO004",
                severity=Severity.WARNING,
                message=(f"error location {state!r} of automaton "
                         f"{automaton.name!r} is unreachable: the temporal "
                         f"monitor can never signal a violation"),
                location=_loc(automaton, state, file),
                hint="add guarded transitions into the error location or drop it",
            ))
        else:
            diags.append(Diagnostic(
                rule="AUTO002",
                severity=Severity.WARNING,
                message=(f"location {state!r} of automaton {automaton.name!r} "
                         f"is unreachable from initial location "
                         f"{automaton.initial!r}"),
                location=_loc(automaton, state, file),
                hint="remove the location or connect it to the reachable part",
            ))
    return diags, reachable


def _dead_guards(automaton: TimedAutomaton, file: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for t in automaton.transitions:
        proj = project_guard(t.guard, automaton.parameters)
        dead = proj.unsatisfiable_vars(automaton.clocks)
        if not dead:
            continue
        diags.append(Diagnostic(
            rule="AUTO003",
            severity=Severity.ERROR,
            message=(f"guard [{t.guard}] on {t.source!r} -> {t.target!r} of "
                     f"automaton {automaton.name!r} is unsatisfiable: "
                     f"variable(s) {', '.join(sorted(dead))} have an empty "
                     f"feasible interval"),
            location=_loc(automaton, t.source, file),
            hint="the transition can never fire; fix the bounds or remove it",
        ))
    return diags


def _liveness(automaton: TimedAutomaton, reachable: set[str],
              file: str) -> list[Diagnostic]:
    diags: list[Diagnostic] = []
    for state in automaton.locations:
        if state not in reachable or state == automaton.error:
            continue
        if automaton.outgoing(state):
            continue
        diags.append(Diagnostic(
            rule="AUTO004",
            severity=Severity.WARNING,
            message=(f"location {state!r} of automaton {automaton.name!r} has "
                     f"no outgoing transitions: the automaton wedges there "
                     f"and the gateway stops relaying"),
            location=_loc(automaton, state, file),
            hint="add an outgoing transition or mark the location as the error location",
        ))
    return diags


def check_automaton(automaton: TimedAutomaton, file: str = "") -> list[Diagnostic]:
    """Run all AUTO0xx rules over one automaton."""
    diags = _determinism(automaton, file)
    reach_diags, reachable = _reachability(automaton, file)
    diags.extend(reach_diags)
    diags.extend(_dead_guards(automaton, file))
    diags.extend(_liveness(automaton, reachable, file))
    # Silent/no-action edges never fire in the runtime unless guarded by
    # time; a trivially-guarded silent self-loop would spin — flag it.
    for t in automaton.transitions:
        if (t.source == t.target and t.action.kind is ActionKind.SILENT
                and t.guard.is_trivial() and not t.assignments):
            diags.append(Diagnostic(
                rule="AUTO003",
                severity=Severity.WARNING,
                message=(f"trivial silent self-loop at {t.source!r} in "
                         f"automaton {automaton.name!r} has no effect"),
                location=_loc(automaton, t.source, file),
                hint="remove the transition or add a guard/assignment",
            ))
    return diags
