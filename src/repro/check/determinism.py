"""DET0xx — AST lint keeping nondeterminism out of the simulator core.

Golden-digest reproducibility (identical trace digests for identical
seeds) is enforced by machine, not by review: this lint walks the
simulator-core packages and rejects sources of run-to-run variation.

========  ==========================================================
DET001    wall-clock access (``time.time``, ``perf_counter_ns``,
          ``datetime.now`` ...) — simulated time comes from
          ``sim.now``; wall time is only sanctioned in the profiler
DET002    the stdlib ``random`` module — all randomness must flow
          through the seeded streams of :mod:`repro.sim.random`.
          The scenario generator (``repro.generate``) is linted in a
          relaxed mode instead: explicitly seeded ``random.Random(...)``
          instances are its sanctioned source of bounded randomness,
          but the module-level functions (``random.random``,
          ``random.randint`` — the process-global unseeded stream),
          unseeded ``Random()``, and ``random.seed`` remain DET002
DET003    iteration over a set/frozenset expression — set order
          depends on the per-process hash seed; wrap in ``sorted()``
DET004    environment-dependent values: ``uuid``/``secrets``,
          ``os.environ``/``getenv``, ``os.urandom``, directory
          listings (``os.listdir``/``os.walk``/``glob``/``iterdir``)
========  ==========================================================

Sanctioned files (``sim/random.py``, ``sim/clock.py``) are skipped
wholesale.  Individual lines are waived with a pragma comment::

    from time import perf_counter_ns  # det-ok: DET001 — profiler only

``# det-ok`` with no rule list waives every DET rule on that line.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from .diagnostics import Diagnostic, Severity, SourceLocation

__all__ = [
    "DEFAULT_LINT_FILES",
    "DEFAULT_LINT_PACKAGES",
    "SANCTIONED_FILES",
    "SEEDED_RANDOM_PACKAGES",
    "lint_source",
    "lint_file",
    "lint_paths",
]

#: Packages under ``src/repro/`` the lint guards by default.
DEFAULT_LINT_PACKAGES = ("sim", "core_network", "gateway", "vn", "ledger",
                         "generate")

#: Packages linted with the relaxed DET002 mode: seeded
#: ``random.Random(seed)`` is allowed, the global stream is not.
SEEDED_RANDOM_PACKAGES = ("generate",)

#: Individual files outside the guarded packages that feed digest-
#: compared artifacts and therefore ride along in the default lint.
DEFAULT_LINT_FILES = ("runner/telemetry.py",)

#: Files allowed to touch the forbidden APIs (relative suffix match).
#: The paced/asyncio runtimes exist to gate virtual time against the
#: wall clock — their ``perf_counter_ns`` reads are the feature, not a
#: determinism leak (virtual-time behaviour stays identical; see
#: :mod:`repro.sim.runtime`).
SANCTIONED_FILES = (
    "sim/random.py",
    "sim/clock.py",
    "sim/runtime/paced.py",
    "sim/runtime/asyncio_bridge.py",
)

_WALLCLOCK_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}
_ENV_MODULES = {"uuid", "secrets", "glob"}
_OS_ENV_ATTRS = {"environ", "urandom", "getenv", "listdir", "walk", "scandir"}

_PRAGMA_RE = re.compile(r"#\s*det-ok(?::\s*(?P<rules>[A-Z0-9, ]+))?")


def _pragmas(source: str) -> dict[int, set[str] | None]:
    """line number -> waived rule ids (None = all rules)."""
    out: dict[int, set[str] | None] = {}
    for i, line in enumerate(source.splitlines(), start=1):
        m = _PRAGMA_RE.search(line)
        if not m:
            continue
        rules = m.group("rules")
        if rules is None:
            out[i] = None
        else:
            out[i] = {r.strip() for r in rules.split(",") if r.strip()}
    return out


class _Visitor(ast.NodeVisitor):
    def __init__(self, filename: str,
                 allow_seeded_random: bool = False) -> None:
        self.filename = filename
        self.allow_seeded_random = allow_seeded_random
        self.findings: list[tuple[str, int, str, str]] = []
        #: local aliases of the ``time`` module (``import time as t``).
        self._time_aliases: set[str] = set()
        self._datetime_aliases: set[str] = set()
        self._os_aliases: set[str] = set()
        self._random_aliases: set[str] = set()
        self._random_class_aliases: set[str] = set()

    # -- helpers --------------------------------------------------------
    def _add(self, rule: str, node: ast.AST, message: str, hint: str) -> None:
        self.findings.append((rule, getattr(node, "lineno", 0), message, hint))

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root == "time":
                self._time_aliases.add(alias.asname or "time")
            elif root == "datetime":
                self._datetime_aliases.add(alias.asname or "datetime")
            elif root == "os":
                self._os_aliases.add(alias.asname or "os")
            elif root == "random":
                if self.allow_seeded_random:
                    self._random_aliases.add(alias.asname or "random")
                else:
                    self._add("DET002", node,
                              "import of the stdlib 'random' module",
                              "use the seeded streams in repro.sim.random")
            elif root in _ENV_MODULES:
                self._add("DET004", node,
                          f"import of environment-dependent module {root!r}",
                          "derive identifiers/paths deterministically from the seed")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level:  # relative import — e.g. `from .random import`
            self.generic_visit(node)
            return
        mod = (node.module or "").split(".")[0]
        names = {a.name for a in node.names}
        if mod == "random":
            if self.allow_seeded_random:
                for a in node.names:
                    if a.name == "Random":
                        self._random_class_aliases.add(a.asname or a.name)
                    else:
                        self._add(
                            "DET002", node,
                            f"import of random.{a.name} "
                            "(the process-global unseeded stream)",
                            "draw from an explicitly seeded random.Random")
            else:
                self._add("DET002", node,
                          "import from the stdlib 'random' module",
                          "use the seeded streams in repro.sim.random")
        elif mod == "time" and names & _WALLCLOCK_FUNCS:
            bad = ", ".join(sorted(names & _WALLCLOCK_FUNCS))
            self._add("DET001", node,
                      f"wall-clock import from 'time': {bad}",
                      "simulated time is sim.now; wall time breaks digest equality")
        elif mod == "datetime" and (names & {"datetime", "date"}):
            self._datetime_aliases.update(
                a.asname or a.name for a in node.names
                if a.name in ("datetime", "date"))
        elif mod in _ENV_MODULES:
            self._add("DET004", node,
                      f"import from environment-dependent module {mod!r}",
                      "derive identifiers/paths deterministically from the seed")
        elif mod == "os" and names & _OS_ENV_ATTRS:
            bad = ", ".join(sorted(names & _OS_ENV_ATTRS))
            self._add("DET004", node,
                      f"environment-dependent import from 'os': {bad}",
                      "the simulator core must not read the environment")
        self.generic_visit(node)

    # -- attribute access -----------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in self._time_aliases and node.attr in _WALLCLOCK_FUNCS:
                self._add("DET001", node,
                          f"wall-clock call time.{node.attr}",
                          "simulated time is sim.now")
            elif base.id in self._datetime_aliases and node.attr in _DATETIME_FUNCS:
                self._add("DET001", node,
                          f"wall-clock call datetime.{node.attr}",
                          "simulated time is sim.now")
            elif base.id in self._os_aliases and node.attr in _OS_ENV_ATTRS:
                self._add("DET004", node,
                          f"environment-dependent access os.{node.attr}",
                          "the simulator core must not read the environment")
        elif (isinstance(base, ast.Attribute)
              and isinstance(base.value, ast.Name)
              and base.value.id in self._datetime_aliases
              and node.attr in _DATETIME_FUNCS):
            self._add("DET001", node,
                      f"wall-clock call datetime.{base.attr}.{node.attr}",
                      "simulated time is sim.now")
        if node.attr == "iterdir":
            self._add("DET004", node,
                      "directory iteration via .iterdir() (filesystem order)",
                      "sort the entries before iterating")
        self.generic_visit(node)

    # -- calls (relaxed DET002 mode) -------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in self._random_aliases):
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    self._add("DET002", node,
                              "unseeded random.Random()",
                              "pass an explicit seed: random.Random(seed)")
            else:
                self._add("DET002", node,
                          f"call of random.{func.attr} "
                          "(the process-global unseeded stream)",
                          "draw from an explicitly seeded random.Random")
        elif (isinstance(func, ast.Name)
              and func.id in self._random_class_aliases
              and not node.args and not node.keywords):
            self._add("DET002", node,
                      f"unseeded {func.id}()",
                      "pass an explicit seed: Random(seed)")
        self.generic_visit(node)

    # -- set iteration ---------------------------------------------------
    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.SetComp):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (_Visitor._is_set_expr(node.left)
                    or _Visitor._is_set_expr(node.right))
        return False

    def _check_iter(self, iter_node: ast.expr) -> None:
        if self._is_set_expr(iter_node):
            self._add("DET003", iter_node,
                      "iteration over a set expression (hash-seed order)",
                      "wrap the set in sorted() to fix the order")

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter)
        self.generic_visit(node)

    def visit_comprehension_node(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", ()):
            self._check_iter(gen.iter)
        self.generic_visit(node)

    visit_ListComp = visit_comprehension_node
    visit_SetComp = visit_comprehension_node
    visit_DictComp = visit_comprehension_node
    visit_GeneratorExp = visit_comprehension_node


def lint_source(source: str, filename: str = "<string>",
                allow_seeded_random: bool | None = None) -> list[Diagnostic]:
    """Lint one source string; returns DET0xx diagnostics.

    ``allow_seeded_random`` switches DET002 to the relaxed mode of
    :data:`SEEDED_RANDOM_PACKAGES`; ``None`` infers it from the
    filename's path segments.
    """
    if allow_seeded_random is None:
        allow_seeded_random = _seeded_random_allowed(Path(filename))
    tree = ast.parse(source, filename=filename)
    visitor = _Visitor(filename, allow_seeded_random=allow_seeded_random)
    visitor.visit(tree)
    pragmas = _pragmas(source)
    diags: list[Diagnostic] = []
    for rule, line, message, hint in visitor.findings:
        if line in pragmas:
            waived = pragmas[line]  # None = waive every rule on the line
            if waived is None or rule in waived:
                continue
        diags.append(Diagnostic(
            rule=rule,
            severity=Severity.ERROR,
            message=message,
            location=SourceLocation(file=filename, line=line),
            hint=hint,
            target=filename,
        ))
    return diags


def _is_sanctioned(path: Path) -> bool:
    posix = path.as_posix()
    return any(posix.endswith(s) for s in SANCTIONED_FILES)


def _seeded_random_allowed(path: Path) -> bool:
    return any(part in SEEDED_RANDOM_PACKAGES for part in path.parts)


def lint_file(path: str | Path) -> list[Diagnostic]:
    p = Path(path)
    if _is_sanctioned(p):
        return []
    return lint_source(p.read_text(), filename=str(p))


def default_lint_roots() -> list[Path]:
    """The guarded package directories (plus guarded single files),
    resolved next to this package."""
    base = Path(__file__).resolve().parent.parent
    return ([base / pkg for pkg in DEFAULT_LINT_PACKAGES]
            + [base / f for f in DEFAULT_LINT_FILES])


def lint_paths(paths: list[str | Path] | None = None) -> list[Diagnostic]:
    """Lint files/directories (default: the guarded core packages)."""
    roots = [Path(p) for p in paths] if paths else default_lint_roots()
    diags: list[Diagnostic] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for f in files:
            if not _is_sanctioned(f):
                diags.extend(lint_source(f.read_text(), filename=str(f)))
    return diags
