"""Static whole-cluster message-flow graph (DESIGN 6.aa).

Where the per-artifact analyzers look at one link, one schedule, or one
gateway at a time, this module assembles the *whole-cluster* picture:
every producer binding, every TDMA slot reservation, every gateway
redirection rule, and every consumer port, stitched into directed flow
paths ``producer port -> TDMA slot -> VN dispatch -> gateway relay
chain -> consumer port`` (multi-hop across VNs, Sec. III of the paper).

Two quantities are computed per hop:

* ``latency`` — a *sound* worst-case bound on the hop's contribution to
  observed origin-to-delivery time, validated empirically against every
  FlowTracer journey by :mod:`repro.check.validate`.  ``None`` means
  the hop is statically unbounded (e.g. a state element without d_acc
  and no horizon to clamp against).
* ``age`` — the hop's contribution to worst-case *information age* at
  the final consumer under nominal (no-backlog) operation, the
  multi-hop generalization of SCHED003's relay-latency formula.  Age is
  always finite, so FLOW002 can compare it against the consumer's
  temporal accuracy without a horizon.

The split matters: the sound latency bound must absorb the gateway
repository's pairing tail (a stored state element may legally seed
constructions for its whole d_acc window, so observed "residence" spans
up to the availability window), which would make a d_acc-relative
deadline check vacuously self-satisfied.  The age formula instead
counts only the structural waits — sampling period, cluster cycle,
destination dispatch period, partition window — exactly the terms the
paper's temporal-accuracy argument composes.

Per-hop bound formulas (``cycle`` = cluster cycle length, ``wire`` =
max slot duration + bus propagation delay — scheduled frames occupy
their whole slot and arrive at slot end):

===============================  ======================================
hop                              sound latency bound
===============================  ======================================
VN, consumer co-hosted           0  (loopback delivery at the send /
                                 dispatch instant)
VN, remote, time-triggered       dispatch_lead + cycle + wire
VN, remote, event-triggered      2 * cycle + wire  (bounded-backlog
                                 assumption: demand within reservation,
                                 see FLOW004 / SCHED002)
gateway, ET dst, no automaton    0  (construction fires at the store
                                 instant via the push path)
gateway, ET dst, automaton       avail_window  (a monitor may send any
                                 time the needed elements stay fresh)
gateway, TT dst                  avail_window + dst_period
===============================  ======================================

``avail_window`` is the longest time the rule's needed elements remain
usable after a store: max over needed elements of d_acc (state), the
run horizon (state without d_acc), or depth * dst_period (event queue
drained one per construction).  A visible gateway adds one host major
frame (partition-window wait) to both latency and age.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..core_network.frame import CHUNK_HEADER_BYTES
from ..core_network.schedule import TDMASchedule
from ..errors import ConfigurationError, SchedulingError
from ..gateway import VirtualGateway
from ..gateway.gateway import RedirectionRule
from ..messaging import Semantics
from ..vn import TTVirtualNetwork, VirtualNetworkBase

__all__ = ["FlowGraph", "FlowPath", "HopBound", "GATEWAY_JOB_PREFIX"]

#: Producer bindings installed by gateways carry this job-name prefix
#: (see VirtualGateway._wire_rule) — they are relay sources, not roots.
GATEWAY_JOB_PREFIX = "gateway@"

#: Default event-queue depth, mirroring GatewayRepository/EventEntry.
DEFAULT_EVENT_DEPTH = 16


@dataclass(frozen=True)
class HopBound:
    """One hop of a static flow path with its two temporal weights."""

    kind: str  #: ``"vn"`` or ``"gateway"``
    where: str  #: DAS name for VN hops, gateway name for relay hops
    message: str
    latency: int | None  #: sound worst-case contribution (ns), None = unbounded
    age: int  #: information-age contribution (ns), always finite
    detail: str = ""


@dataclass(frozen=True)
class FlowPath:
    """One producer-to-terminal path through the flow graph."""

    root_das: str
    root_message: str
    hops: tuple[HopBound, ...]
    terminal: str  #: ``"port"`` or ``"tap"``
    consumer: str  #: component hosting the terminal port/tap
    #: d_acc of the terminal state port (None for event ports and taps)
    d_acc: int | None = None

    def e2e_bound(self) -> int | None:
        """Sound end-to-end latency bound; None when any hop is
        unbounded or the path ends in a raw tap (taps produce no
        ``port.recv`` hop, so there is no observed quantity to bound)."""
        if self.terminal != "port":
            return None
        total = 0
        for hop in self.hops:
            if hop.latency is None:
                return None
            total += hop.latency
        return total

    def age_bound(self) -> int:
        """Worst-case information age at the terminal (ns)."""
        return sum(hop.age for hop in self.hops)

    def describe(self) -> str:
        parts = [f"{self.root_das}:{self.root_message}"]
        for hop in self.hops:
            if hop.kind == "gateway":
                parts.append(f"gw[{hop.where}]")
        parts.append(f"{self.hops[-1].message if self.hops else self.root_message}"
                     f"@{self.consumer}")
        return " -> ".join(parts)


class FlowGraph:
    """The assembled whole-cluster flow graph.

    Build with :meth:`from_system` for a full :class:`System`, or
    directly from VN / gateway collections for partial models.  All
    queries degrade gracefully on half-built artifacts (un-started
    gateways have unresolved rules and simply contribute no relays).
    """

    def __init__(
        self,
        vns: dict[str, VirtualNetworkBase],
        gateways: Iterable[VirtualGateway] = (),
        schedule: TDMASchedule | None = None,
        major_frame_of: Callable[[str], int | None] | None = None,
        horizon: int | None = None,
    ) -> None:
        self.vns = dict(vns)
        self.gateways = list(gateways)
        self._schedule = schedule
        self._major_frame_of = major_frame_of
        self.horizon = horizon

    @classmethod
    def from_system(cls, system: object, horizon: int | None = None) -> "FlowGraph":
        """Build from a :class:`repro.systems.System` (duck-typed to keep
        the check package import-light)."""
        components = getattr(system, "components", {})
        frames = {name: comp.major_frame for name, comp in components.items()}
        cluster = getattr(system, "cluster")
        return cls(
            vns=getattr(system, "vns", {}),
            gateways=list(getattr(system, "gateways", {}).values()),
            schedule=cluster.schedule,
            major_frame_of=frames.get,
            horizon=horizon,
        )

    # ------------------------------------------------------------------
    # schedule helpers
    # ------------------------------------------------------------------
    def schedule_for(self, vn: VirtualNetworkBase) -> TDMASchedule:
        if self._schedule is not None:
            return self._schedule
        return vn.cluster.schedule

    def _major_frame(self, host: str) -> int | None:
        if self._major_frame_of is None:
            return None
        return self._major_frame_of(host)

    # ------------------------------------------------------------------
    # per-VN aggregates
    # ------------------------------------------------------------------
    def unreachable_consumers(self, vn: VirtualNetworkBase) -> list[str]:
        """Messages with consumer bindings but no producer (FLOW001)."""
        out = []
        for message in vn.messages():
            if vn.producer_of(message) is not None:
                continue
            binding = vn.consumers_of(message)
            if binding is not None and (binding.ports or binding.taps):
                out.append(message)
        return out

    def vn_utilization(self, vn: VirtualNetworkBase) -> tuple[float, float] | None:
        """(demand, supply) in bytes per cluster cycle for one VN.

        Demand sums every producer's worst-case bytes per cycle (the
        SCHED002 per-port formulas, with a 1-send-per-cycle floor for
        port-less gateway producers whose dst VN is event-triggered);
        supply sums the VN's byte reservation — or the full slot
        capacity on un-partitioned slots — over every slot in the
        cycle.  None when the VN has no schedule yet.
        """
        try:
            schedule = self.schedule_for(vn)
        except AttributeError:  # pragma: no cover - defensive
            return None
        cycle = schedule.cycle_length
        demand = 0.0
        for message in vn.messages():
            binding = vn.producer_of(message)
            if binding is None:
                continue
            nbytes = CHUNK_HEADER_BYTES + vn.namespace.lookup(message).byte_width()
            demand += nbytes * self._sends_per_cycle(vn, message, binding, cycle)
        supply = float(sum(
            s.reserved_for(vn.das) if s.reservations else s.capacity_bytes
            for s in schedule.slots
        ))
        return demand, supply

    @staticmethod
    def _sends_per_cycle(
        vn: VirtualNetworkBase, message: str, binding: object, cycle: int
    ) -> float:
        port = getattr(binding, "port", None)
        spec = port.spec if port is not None else None
        if spec is not None and spec.tt is not None and spec.tt.period > 0:
            return float(-(-cycle // spec.tt.period))
        if spec is not None and spec.et is not None and spec.et.min_interarrival > 0:
            return float(-(-cycle // spec.et.min_interarrival))
        if isinstance(vn, TTVirtualNetwork):
            try:
                period = vn.timing_of(message).period
            except ConfigurationError:
                period = 0
            if period > 0:
                return float(-(-cycle // period))
        # Port-less ET producer (gateway relay output): at least one
        # send per cycle, same floor as SCHED002.
        return 1.0

    # ------------------------------------------------------------------
    # path enumeration
    # ------------------------------------------------------------------
    def paths(self) -> list[FlowPath]:
        """Every producer-rooted path to a terminal port or tap.

        Roots are messages produced by application jobs (gateway-
        installed producer bindings are relay internals, reached by
        following redirection rules instead).  Relay cycles are cut by
        never traversing the same (gateway, rule) edge twice in one
        path.
        """
        out: list[FlowPath] = []
        for das in sorted(self.vns):
            vn = self.vns[das]
            for message in vn.messages():
                binding = vn.producer_of(message)
                if binding is None:
                    continue
                if binding.job_name.startswith(GATEWAY_JOB_PREFIX):
                    continue
                self._walk(das, message, binding.component,
                           root=(das, message), hops=(), out=out,
                           visited=frozenset())
        return out

    def _relays_from(self, vn: VirtualNetworkBase, message: str
                     ) -> list[tuple[VirtualGateway, RedirectionRule]]:
        out = []
        for gw in self.gateways:
            for rule in gw.rules:
                if rule.src == message and gw.sides[rule.src_side].vn is vn:
                    out.append((gw, rule))
        return out

    def _walk(
        self,
        das: str,
        message: str,
        producer_component: str,
        root: tuple[str, str],
        hops: tuple[HopBound, ...],
        out: list[FlowPath],
        visited: frozenset[tuple[str, str, str]],
    ) -> None:
        vn = self.vns[das]
        relays = self._relays_from(vn, message)
        relay_hosts = {gw.host for gw, _ in relays}
        binding = vn.consumers_of(message)
        if binding is not None:
            for component, port in binding.ports:
                hop = self._vn_hop(vn, message, producer_component, component)
                spec = port.spec
                d_acc = (spec.temporal_accuracy
                         if spec.semantics is Semantics.STATE else None)
                out.append(FlowPath(
                    root_das=root[0], root_message=root[1],
                    hops=hops + (hop,), terminal="port",
                    consumer=component, d_acc=d_acc,
                ))
            for component, _cb in binding.taps:
                if component in relay_hosts:
                    continue  # a gateway's own input tap, followed below
                hop = self._vn_hop(vn, message, producer_component, component)
                out.append(FlowPath(
                    root_das=root[0], root_message=root[1],
                    hops=hops + (hop,), terminal="tap",
                    consumer=component,
                ))
        for gw, rule in relays:
            edge = (gw.name, rule.src, rule.dst)
            if edge in visited:
                continue
            dst_side = gw.sides[VirtualGateway._other(rule.src_side)]
            dst_das = dst_side.vn.das
            if dst_das not in self.vns:  # pragma: no cover - defensive
                continue
            vn_hop = self._vn_hop(vn, message, producer_component, gw.host)
            gw_hop = self._gateway_hop(gw, rule)
            self._walk(dst_das, rule.dst, gw.host, root=root,
                       hops=hops + (vn_hop, gw_hop), out=out,
                       visited=visited | {edge})

    # ------------------------------------------------------------------
    # hop bounds
    # ------------------------------------------------------------------
    def _vn_hop(self, vn: VirtualNetworkBase, message: str,
                producer_component: str, consumer_component: str) -> HopBound:
        schedule = self.schedule_for(vn)
        cycle = schedule.cycle_length
        tt = isinstance(vn, TTVirtualNetwork)
        period = 0
        if tt:
            try:
                period = vn.timing_of(message).period
            except ConfigurationError:
                period = 0
        if producer_component == consumer_component:
            # Loopback delivery happens at the send/dispatch instant.
            return HopBound(kind="vn", where=vn.das, message=message,
                            latency=0, age=period, detail="local")
        wire = self._wire_slack(vn, schedule)
        if tt:
            lead = getattr(vn, "dispatch_lead", 0)
            return HopBound(kind="vn", where=vn.das, message=message,
                            latency=lead + cycle + wire, age=period + cycle,
                            detail="tt-remote")
        return HopBound(kind="vn", where=vn.das, message=message,
                        latency=2 * cycle + wire, age=cycle,
                        detail="et-remote")

    @staticmethod
    def _wire_slack(vn: VirtualNetworkBase, schedule: TDMASchedule) -> int:
        """Completion slack of one bus crossing.  Scheduled frames occupy
        their whole slot and arrive at slot end plus propagation, so
        after the (cycle-bounded) wait for the sender's slot *start* the
        receiver sees the chunk up to one max slot duration plus the
        propagation delay later."""
        slot_max = max((s.duration for s in schedule.slots), default=0)
        bus = getattr(getattr(vn, "cluster", None), "bus", None)
        return slot_max + getattr(bus, "propagation_delay", 0)

    def _gateway_hop(self, gw: VirtualGateway, rule: RedirectionRule) -> HopBound:
        frame = 0 if gw.partition is None else self._major_frame(gw.host)

        latency = self.residence_bound(gw, rule)
        if latency is not None and gw.partition is not None:
            # The partition-window wait precedes the store, so it is
            # part of the path latency but not of the observed
            # (stored -> construct) residence leg.
            latency = None if frame is None else latency + frame

        # Age: the dispatch wait on the destination VN is charged by the
        # following VN hop (its period term), so the relay itself only
        # adds the partition-window wait of a visible gateway.
        age = frame or 0
        return HopBound(kind="gateway", where=gw.name, message=rule.dst,
                        latency=latency, age=age,
                        detail="visible" if gw.partition is not None else "hidden")

    def residence_bound(self, gw: VirtualGateway,
                        rule: RedirectionRule) -> int | None:
        """Sound bound on the observed repository residence of ``rule``:
        a parent's ``gw.stored`` hop to a child's construction origin.

        This is the gateway hop's latency *minus* the visible-partition
        frame (``partition.defer`` runs before the store, so the wait is
        outside the stored -> construct interval the FlowTracer
        measures).  ``None`` when the rule is unresolved or an element's
        availability window is statically unbounded.
        """
        if rule.dst_type is None:
            # Gateway not started: rules unresolved, no sound bound.
            return None
        dst_side = gw.sides[VirtualGateway._other(rule.src_side)]
        dst_vn = dst_side.vn
        dst_tt = isinstance(dst_vn, TTVirtualNetwork)
        dst_period = 0
        if dst_tt:
            try:
                dst_period = dst_vn.timing_of(rule.dst).period
            except (ConfigurationError, SchedulingError):
                dst_period = 0
        avail = self._avail_window(gw, rule, dst_period)
        if avail is None:
            return None
        if dst_tt:
            return avail + dst_period
        if self._automaton_sends(gw, rule.dst):
            return avail
        return 0

    def _avail_window(self, gw: VirtualGateway, rule: RedirectionRule,
                      dst_period: int) -> int | None:
        """Longest time the rule's needed elements stay usable after a
        store — the pairing tail of the observed residence leg."""
        assert rule.dst_type is not None
        worst = 0
        for name in rule.needed_elements:
            elem = None
            for side in gw.sides.values():
                for port in side.link.ports:
                    if port.message_type.has_element(name):
                        elem = port.message_type.element(name)
                        break
                if elem is not None:
                    break
            if elem is None and rule.dst_type.has_element(name):
                elem = rule.dst_type.element(name)
            if elem is None:  # pragma: no cover - defensive
                return None
            if elem.semantics is Semantics.EVENT:
                depth = self._event_depth(gw, name)
                worst = max(worst, depth * dst_period)
                continue
            d_acc = self._element_d_acc(gw, name)
            if d_acc is not None:
                worst = max(worst, d_acc)
            elif self.horizon is not None:
                # A state element without d_acc stays available forever
                # (Eq. 1 with no bound); the run horizon clamps it.
                worst = max(worst, self.horizon)
            else:
                return None
        return worst

    @staticmethod
    def _element_d_acc(gw: VirtualGateway, element: str) -> int | None:
        """d_acc declared for ``element`` on either link (mirrors
        VirtualGateway._d_acc_for; declarations must agree, so any
        match is authoritative)."""
        for side in gw.sides.values():
            for port in side.link.ports:
                if (port.message_type.has_element(element)
                        and port.temporal_accuracy is not None):
                    return port.temporal_accuracy
        return None

    @staticmethod
    def _event_depth(gw: VirtualGateway, element: str) -> int:
        """Queue depth declared for an event element (mirrors
        VirtualGateway._depth_for)."""
        depth = 0
        for side in gw.sides.values():
            for port in side.link.ports:
                if (port.message_type.has_element(element)
                        and port.semantics is Semantics.EVENT):
                    depth = max(depth, max(port.queue_depth, 1))
        return depth or DEFAULT_EVENT_DEPTH

    @staticmethod
    def _automaton_sends(gw: VirtualGateway, message: str) -> bool:
        return any(
            message in automaton.send_messages()
            for side in gw.sides.values()
            for automaton in side.link.automata
        )

    # ------------------------------------------------------------------
    # buffer analysis (FLOW003)
    # ------------------------------------------------------------------
    @staticmethod
    def buffer_pressure(gw: VirtualGateway, rule: RedirectionRule
                        ) -> tuple[str, int, int, int] | None:
        """Worst-case arrivals per drain interval for each *consumed*
        event element of ``rule``.

        Returns ``(element, arrivals, depth, drain_interval)`` for the
        worst element, or None when the rule consumes no event element,
        is unresolved, or the source rate is unknown.  Only elements in
        ``needed_elements`` count: an event queue that is stored but
        never taken overflows by design (oldest instances drop) and is
        not a correctness problem.

        Event queues drain one instance per construction.  An ET
        destination constructs at every store (drain interval 0: never
        accumulates beyond transient bursts); a TT destination drains
        every ``dst_period``, so ``ceil(dst_period / src_interval)``
        arrivals can pile up between drains and must fit the depth.
        """
        if rule.dst_type is None or rule.src_type is None:
            return None
        dst_side = gw.sides[VirtualGateway._other(rule.src_side)]
        if not isinstance(dst_side.vn, TTVirtualNetwork):
            return None
        try:
            dst_period = dst_side.vn.timing_of(rule.dst).period
        except (ConfigurationError, SchedulingError):
            return None
        src_interval = FlowGraph._src_interval(gw, rule)
        if src_interval is None or src_interval <= 0 or dst_period <= 0:
            return None
        worst: tuple[str, int, int, int] | None = None
        for name in rule.needed_elements:
            if not rule.src_type.has_element(name):
                continue
            if rule.src_type.element(name).semantics is not Semantics.EVENT:
                continue
            arrivals = -(-dst_period // src_interval)  # ceil
            depth = FlowGraph._event_depth(gw, name)
            if worst is None or arrivals - depth > worst[1] - worst[2]:
                worst = (name, arrivals, depth, dst_period)
        return worst

    @staticmethod
    def _src_interval(gw: VirtualGateway, rule: RedirectionRule) -> int | None:
        """Minimum interarrival of the rule's source message: TT period,
        declared et.min_interarrival, or None (unknown)."""
        src_side = gw.sides[rule.src_side]
        if isinstance(src_side.vn, TTVirtualNetwork):
            try:
                return src_side.vn.timing_of(rule.src).period
            except (ConfigurationError, SchedulingError):
                pass
        if src_side.link.has_port(rule.src):
            spec = src_side.link.port(rule.src)
            if spec.tt is not None and spec.tt.period > 0:
                return spec.tt.period
            if spec.et is not None and spec.et.min_interarrival > 0:
                return spec.et.min_interarrival
        return None
