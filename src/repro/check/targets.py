"""Discovery of checkable artifacts for the ``repro check`` CLI.

A :class:`CheckTarget` pairs a name with a thunk producing diagnostics,
plus per-target waivers.  Targets come from three places:

* **paths** — ``.xml`` files are parsed as link specifications;
  ``.py`` files are scanned for references to the shipped Fig. 6
  specs (``FIG6_VERBATIM``/``FIG6_CANONICAL``) and for inline
  ``<linkspec`` string literals, so ``repro check examples/`` analyzes
  exactly the specs the examples execute,
* **builtins** — the Fig. 6 artifacts themselves, with explicit
  waivers documenting why the paper-verbatim transcription is allowed
  to violate the determinism rules,
* **scenarios** — every registered sweep scenario, built and checked
  through the same pre-flight path the sweep runner gates on.
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from .diagnostics import Diagnostic, Severity, SourceLocation

if TYPE_CHECKING:  # pragma: no cover
    from ..runner.cache import CheckCache
    from ..runner.scenarios import ScenarioSpec

__all__ = [
    "CheckTarget",
    "builtin_targets",
    "cached_scenario_diagnostics",
    "gather_targets",
    "scenario_targets",
]


@dataclass
class CheckTarget:
    """One named artifact plus the thunk that analyzes it."""

    name: str
    kind: str  # "spec-xml" | "builtin" | "scenario"
    run: Callable[[], list[Diagnostic]]
    source: str = ""
    waivers: dict[str, str] = field(default_factory=dict)

    def diagnostics(self) -> list[Diagnostic]:
        try:
            return self.run()
        except Exception as exc:  # a broken artifact is a finding, not a crash
            return [Diagnostic(
                rule="SPEC000",
                severity=Severity.ERROR,
                message=f"cannot analyze {self.name!r}: {exc}",
                location=SourceLocation(file=self.source or self.name),
                target=self.name,
                hint="fix the artifact so it parses/builds before deeper analysis",
            )]


# ----------------------------------------------------------------------
# builtins: the shipped Fig. 6 artifacts
# ----------------------------------------------------------------------
#: Waivers for the paper-verbatim Fig. 6 XML.  The printed figure lost
#: its ``m?`` sync labels and parameter bindings in transcription, so
#: the analyzers rightly reject it — it is shipped as a *parsing*
#: demonstration, never executed (FIG6_CANONICAL is the runnable form).
FIG6_VERBATIM_WAIVERS: dict[str, str] = {
    "AUTO001": "paper-verbatim artifact: the printed figure dropped the "
               "m? sync labels, so its silent edges overlap by construction",
    "AUTO004": "paper-verbatim artifact: without sync labels the error "
               "location's reachability semantics are degenerate",
    "SPEC002": "paper-verbatim artifact: no <port> blocks survive the "
               "printed figure, so transfer sources cannot resolve",
    "SPEC004": "paper-verbatim artifact: Fig. 6 as printed declares no d_acc",
}

#: Waivers for the canonical reconstruction: the paper's figure itself
#: declares no temporal-accuracy bound, so the reconstruction keeps the
#: event semantics explicit instead of inventing a d_acc.
FIG6_CANONICAL_WAIVERS: dict[str, str] = {
    "SPEC004": "Fig. 6 declares no d_acc; MovementEvent is event-semantic",
}


def _fig6_target(name: str, text_attr: str, waivers: dict[str, str],
                 parameters: dict[str, int] | None) -> CheckTarget:
    def run() -> list[Diagnostic]:
        from ..spec import fig6, parse_link_spec
        from .analyzer import check_link_spec

        link = parse_link_spec(getattr(fig6, text_attr),
                               parameters=parameters)
        return check_link_spec(link, file=name, target=name, waivers=waivers)

    return CheckTarget(name=name, kind="builtin", run=run,
                       source="repro/spec/fig6.py", waivers=waivers)


def builtin_targets() -> list[CheckTarget]:
    from ..spec.fig6 import FIG6_TMAX, FIG6_TMIN

    return [
        _fig6_target("fig6-verbatim", "FIG6_VERBATIM", FIG6_VERBATIM_WAIVERS,
                     parameters={"tmin": FIG6_TMIN, "tmax": FIG6_TMAX}),
        _fig6_target("fig6-canonical", "FIG6_CANONICAL",
                     FIG6_CANONICAL_WAIVERS, parameters=None),
    ]


# ----------------------------------------------------------------------
# paths: XML files and python sources referencing specs
# ----------------------------------------------------------------------
_INLINE_SPEC_RE = re.compile(r"<linkspec[\s>]")
_FIG6_REFS = ("FIG6_VERBATIM", "FIG6_CANONICAL")


def _xml_target(path: Path) -> CheckTarget:
    def run() -> list[Diagnostic]:
        from ..spec import parse_link_spec
        from .analyzer import check_link_spec

        link = parse_link_spec(path.read_text())
        return check_link_spec(link, file=str(path), target=path.name)

    return CheckTarget(name=path.name, kind="spec-xml", run=run,
                       source=str(path))


def _python_targets(path: Path) -> list[CheckTarget]:
    """Targets implied by a python source: Fig. 6 references and inline
    ``<linkspec`` literals map back to the builtin artifacts."""
    try:
        text = path.read_text()
    except OSError:
        return []
    wanted: list[CheckTarget] = []
    builtins = {t.name: t for t in builtin_targets()}
    if "FIG6_VERBATIM" in text:
        wanted.append(builtins["fig6-verbatim"])
    if "FIG6_CANONICAL" in text:
        wanted.append(builtins["fig6-canonical"])
    if not wanted and _INLINE_SPEC_RE.search(text):
        # An inline spec we cannot safely evaluate: surface it so the
        # author moves it into an .xml file or the builtin registry.
        def run(p: Path = path) -> list[Diagnostic]:
            return [Diagnostic(
                rule="SPEC000",
                severity=Severity.WARNING,
                message=(f"{p} embeds an inline <linkspec> literal the "
                         f"static checker cannot evaluate"),
                location=SourceLocation(file=str(p)),
                target=p.name,
                hint="move the spec into an .xml file or register it as a builtin",
            )]

        wanted.append(CheckTarget(name=path.name, kind="spec-xml", run=run,
                                  source=str(path)))
    return wanted


def gather_targets(paths: list[str | Path]) -> list[CheckTarget]:
    """Resolve CLI path arguments into a deduplicated target list."""
    out: list[CheckTarget] = []
    seen: set[str] = set()

    def add(t: CheckTarget) -> None:
        if t.name not in seen:
            seen.add(t.name)
            out.append(t)

    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            files = sorted(p.rglob("*.xml")) + sorted(p.rglob("*.py"))
        else:
            files = [p]
        for f in files:
            if f.suffix == ".xml":
                add(_xml_target(f))
            elif f.suffix == ".py":
                for t in _python_targets(f):
                    add(t)
            elif not f.exists():
                def run(missing: Path = f) -> list[Diagnostic]:
                    return [Diagnostic(
                        rule="SPEC000",
                        severity=Severity.ERROR,
                        message=f"no such file or directory: {missing}",
                        location=SourceLocation(file=str(missing)),
                        target=str(missing),
                    )]

                add(CheckTarget(name=str(f), kind="spec-xml", run=run))
    return out


# ----------------------------------------------------------------------
# scenarios: the registered sweep configurations
# ----------------------------------------------------------------------
def cached_scenario_diagnostics(spec: "ScenarioSpec", cache: "CheckCache | None",
                                code: str) -> list[Diagnostic]:
    """Full static diagnostics for one scenario spec, cache-served.

    The shared check path for everything that admission-gates specs:
    ``repro check --scenarios`` targets, the generator's campaign
    oracle (:func:`repro.generate.admit`), and warm ``--strict``
    pre-flights.  With a :class:`~repro.runner.cache.CheckCache`, an
    unchanged (spec digest, ``code`` digest) pair rehydrates its
    serialized diagnostics in O(1); misses run the full build+analyze
    and persist the report.  Builder exceptions propagate (and are
    never cached) — callers decide whether a crash is a finding or a
    rejection.
    """
    from .analyzer import check_scenario

    if cache is None:
        return check_scenario(spec).diagnostics
    from ..runner.cache import check_key

    key = check_key(spec, code)
    stored = cache.get(spec, key)
    if stored is not None:
        return [Diagnostic.from_dict(d) for d in stored]
    diags = check_scenario(spec).diagnostics
    cache.put(spec, key, [d.as_dict() for d in diags])
    return diags


def scenario_targets(tokens: list[str] | None = None,
                     cache: "CheckCache | None" = None) -> list[CheckTarget]:
    """One target per registered sweep scenario (optionally filtered).

    With a :class:`repro.runner.cache.CheckCache`, each target first
    consults the digest-keyed report store (spec digest + package code
    digest): an unchanged scenario rehydrates its serialized diagnostics
    in O(1) instead of rebuilding the simulator.  Misses run the full
    analysis and persist the report for the next invocation.
    """
    from ..runner.scenarios import default_registry, filter_scenarios

    registry = default_registry()
    specs = filter_scenarios(registry, tokens)
    code = ""
    if cache is not None:
        from ..runner.cache import code_digest

        code = code_digest()
    out: list[CheckTarget] = []
    for spec in specs:
        def run(s: "ScenarioSpec" = spec) -> list[Diagnostic]:
            return cached_scenario_diagnostics(s, cache, code)

        out.append(CheckTarget(name=spec.name, kind="scenario", run=run,
                               source=f"scenario builder {spec.builder!r}"))
    return out
