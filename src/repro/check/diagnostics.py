"""The diagnostic framework: findings, locations, and renderers.

Every analyzer family reports through the same vocabulary: a
:class:`Diagnostic` names the rule that fired, its severity, a source
location precise down to the XML element / automaton state / schedule
slot it concerns, and a fix hint.  A :class:`CheckReport` aggregates
diagnostics across targets and renders as text or JSON (``--format``).

Diagnostics are plain data so they can be fingerprinted into a baseline
(:mod:`repro.check.baseline`), compared in golden tests, and serialized
losslessly across the CLI boundary.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from enum import Enum


class Severity(str, Enum):
    """How bad a finding is; ``ERROR`` blocks the pre-flight gate."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class SourceLocation:
    """Where a finding lives, as a slash path into the artifact.

    ``path`` addresses the element hierarchy, e.g.
    ``linkspec/timedautomaton[msgSlidingRoofReception]/location[statePassive]``
    or ``schedule/slot[3]``; ``file`` names the containing file or
    target when known (an XML file, a scenario name, a python module).
    """

    path: str = ""
    file: str = ""
    line: int | None = None

    def __str__(self) -> str:
        bits = []
        if self.file:
            bits.append(self.file)
        if self.line is not None:
            bits.append(str(self.line))
        head = ":".join(bits)
        if head and self.path:
            return f"{head} ({self.path})"
        return head or self.path


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule."""

    rule: str
    severity: Severity
    message: str
    location: SourceLocation = field(default_factory=SourceLocation)
    hint: str = ""
    #: Name of the check target (scenario, spec, file) that produced it.
    target: str = ""

    def waived(self, reason: str) -> "Diagnostic":
        """An explicitly-accepted copy, downgraded to ``INFO``."""
        return replace(
            self,
            severity=Severity.INFO,
            message=f"{self.message} [waived: {reason}]",
        )

    def fingerprint(self) -> str:
        """Stable identity for baselines: rule + target + location.

        The message text is deliberately excluded so rewording a
        diagnostic does not churn every recorded baseline entry.
        """
        return f"{self.rule}|{self.target}|{self.location.file}|{self.location.path}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "target": self.target,
            "location": {
                "path": self.location.path,
                "file": self.location.file,
                "line": self.location.line,
            },
            "hint": self.hint,
            "fingerprint": self.fingerprint(),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`as_dict` (the check-cache payload format).

        The stored fingerprint is ignored — it is derived state and is
        recomputed from the rehydrated fields.
        """
        loc = data.get("location")
        if not isinstance(loc, dict):
            loc = {}
        line = loc.get("line")
        return cls(
            rule=str(data.get("rule", "")),
            severity=Severity(str(data.get("severity", "info"))),
            message=str(data.get("message", "")),
            location=SourceLocation(
                path=str(loc.get("path", "")),
                file=str(loc.get("file", "")),
                line=int(line) if isinstance(line, int) else None,
            ),
            hint=str(data.get("hint", "")),
            target=str(data.get("target", "")),
        )


@dataclass
class CheckReport:
    """All diagnostics of one ``repro check`` invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Diagnostics suppressed by an accepted baseline entry.
    accepted: list[Diagnostic] = field(default_factory=list)
    targets_checked: int = 0

    def extend(self, diags: list[Diagnostic]) -> None:
        self.diagnostics.extend(diags)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def by_rule(self, rule: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.rule == rule]

    def sorted(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (d.severity.rank, d.target, d.rule, str(d.location)),
        )

    @property
    def ok(self) -> bool:
        """True when nothing blocks: no error-severity diagnostics."""
        return not self.errors()

    def summary(self) -> str:
        e, w = len(self.errors()), len(self.warnings())
        i = len(self.diagnostics) - e - w
        bits = [f"{e} error{'s' if e != 1 else ''}",
                f"{w} warning{'s' if w != 1 else ''}"]
        if i:
            bits.append(f"{i} info")
        if self.accepted:
            bits.append(f"{len(self.accepted)} accepted (baseline)")
        return (f"checked {self.targets_checked} target"
                f"{'s' if self.targets_checked != 1 else ''}: " + ", ".join(bits))


def render_text(report: CheckReport, verbose: bool = False) -> str:
    """Human-readable rendering, errors first."""
    lines: list[str] = []
    for d in report.sorted():
        loc = str(d.location)
        lines.append(f"{d.severity.value:7s} {d.rule}  {d.target or '-'}"
                     f"{'  ' + loc if loc else ''}")
        lines.append(f"        {d.message}")
        if d.hint:
            lines.append(f"        hint: {d.hint}")
    if verbose and report.accepted:
        lines.append("")
        for d in report.accepted:
            lines.append(f"accepted {d.rule}  {d.target or '-'}  {d.location}")
    lines.append(report.summary())
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-readable rendering (``--format json``)."""
    payload = {
        "diagnostics": [d.as_dict() for d in report.sorted()],
        "accepted": [d.as_dict() for d in report.accepted],
        "targets_checked": report.targets_checked,
        "errors": len(report.errors()),
        "warnings": len(report.warnings()),
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
