"""Fleet-wide observability: aggregate and compare sweep results.

The sweep engine ships one JSON result per scenario (metrics snapshot,
trace digest, optional flow summary) into ``.repro_cache/``; this module
rolls a whole sweep up into one view and diffs two views:

* :func:`load_cached_results` — read every cached result in a cache
  directory (or a subset by scenario name),
* :func:`aggregate_results` — merge every result's metrics snapshot
  into a single :class:`~repro.sim.Metrics` registry (exact: counters
  add, histogram buckets add — see ``Histogram.merge``), plus roll-up
  of events/wall time and flow-summary outcome totals,
* :func:`compare_snapshots` — counter deltas and histogram shifts
  (count/mean/p95 movement) between two metrics snapshots, the raw
  material of "did this PR make the system busier/slower",
* :func:`observability_report` — render an aggregate (and optional
  comparison) as markdown.

Everything is pure data → data; the CLI wiring lives in ``repro obs``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..sim import Metrics
from ..sim.metrics import Histogram

__all__ = [
    "aggregate_results",
    "compare_snapshots",
    "load_cached_results",
    "observability_report",
]


def load_cached_results(cache_dir: str | Path = ".repro_cache",
                        names: list[str] | None = None) -> list[dict]:
    """Every parseable cached result, sorted by scenario name.

    ``names`` filters to specific scenarios; corrupt or foreign JSON
    files are skipped (the cache directory is safe to pollute).
    """
    root = Path(cache_dir)
    out = []
    for path in sorted(root.glob("*.json")) if root.is_dir() else []:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        result = payload.get("result") if isinstance(payload, dict) else None
        if not isinstance(result, dict) or "name" not in result:
            continue
        if names is not None and result["name"] not in names:
            continue
        out.append(result)
    out.sort(key=lambda r: r["name"])
    return out


def aggregate_results(results: list[dict]) -> dict:
    """Merge many per-scenario results into one fleet view.

    Returns ``{"scenarios", "events_executed", "wall_s", "metrics",
    "flows"}`` where ``metrics`` is the merged snapshot and ``flows``
    totals the flow summaries of scenarios that traced flows.
    """
    merged = Metrics()
    events = 0
    wall = 0.0
    flow_totals: dict[str, int] = {}
    flow_scenarios = 0
    for result in results:
        snap = result.get("metrics")
        if isinstance(snap, dict):
            merged.merge_snapshot(snap)
        events += int(result.get("events_executed", 0))
        wall += float(result.get("wall_s", 0.0))
        flows = result.get("flows")
        if isinstance(flows, dict):
            flow_scenarios += 1
            for outcome, n in flows.get("outcomes", {}).items():
                flow_totals[outcome] = flow_totals.get(outcome, 0) + int(n)
            flow_totals["flows"] = flow_totals.get("flows", 0) + int(
                flows.get("flows", 0))
    return {
        "scenarios": [r["name"] for r in results],
        "count": len(results),
        "events_executed": events,
        "wall_s": round(wall, 6),
        "metrics": merged.snapshot(),
        "flows": {"scenarios_traced": flow_scenarios, **flow_totals},
    }


def _histogram_view(name: str, snap: dict) -> dict:
    h = Histogram.from_snapshot(name, snap)
    return {
        "count": h.count,
        "mean": h.mean,
        "p50": h.quantile(0.5),
        "p95": h.quantile(0.95),
        "max": h.maximum,
    }


def compare_snapshots(base: dict, other: dict) -> dict:
    """Instrument-by-instrument diff of two metrics snapshots.

    Counters report ``base``/``other``/``delta``; histograms report
    count delta plus mean and p95 shift (quantiles re-estimated from the
    pow2 buckets, so shifts below a factor of 2 may round to zero).
    Instruments present on only one side appear with the other side
    zeroed/None.
    """
    counters = {}
    names = sorted(set(base.get("counters", {})) | set(other.get("counters", {})))
    for name in names:
        a = int(base.get("counters", {}).get(name, 0))
        b = int(other.get("counters", {}).get(name, 0))
        if a or b:
            counters[name] = {"base": a, "other": b, "delta": b - a}
    histograms = {}
    hnames = sorted(set(base.get("histograms", {})) | set(other.get("histograms", {})))
    for name in hnames:
        va = _histogram_view(name, base.get("histograms", {}).get(name, {}))
        vb = _histogram_view(name, other.get("histograms", {}).get(name, {}))
        histograms[name] = {
            "base": va,
            "other": vb,
            "count_delta": vb["count"] - va["count"],
            "mean_shift": vb["mean"] - va["mean"],
            "p95_shift": ((vb["p95"] or 0) - (va["p95"] or 0)
                          if (va["p95"] is not None or vb["p95"] is not None)
                          else None),
        }
    return {"counters": counters, "histograms": histograms}


def observability_report(aggregate: dict, comparison: dict | None = None,
                         title: str = "Observability report") -> str:
    """Markdown rendering of an aggregate (and optional comparison)."""
    lines = [f"# {title}", ""]
    lines.append(f"- scenarios: {aggregate['count']} "
                 f"({', '.join(aggregate['scenarios']) or 'none'})")
    lines.append(f"- events executed: {aggregate['events_executed']}")
    lines.append(f"- wall time (sum): {aggregate['wall_s']:.3f}s")
    flows = aggregate.get("flows", {})
    if flows.get("scenarios_traced"):
        parts = ", ".join(f"{k}={v}" for k, v in sorted(flows.items())
                          if k != "scenarios_traced")
        lines.append(f"- flow tracing ({flows['scenarios_traced']} scenario(s)): {parts}")
    lines.append("")
    lines.append("## Merged counters")
    lines.append("")
    lines.append("| counter | value |")
    lines.append("|---|---:|")
    for name, value in aggregate["metrics"]["counters"].items():
        lines.append(f"| {name} | {value} |")
    lines.append("")
    lines.append("## Merged histograms")
    lines.append("")
    lines.append("| histogram | count | mean | p50 | p95 | max |")
    lines.append("|---|---:|---:|---:|---:|---:|")
    for name, snap in aggregate["metrics"]["histograms"].items():
        view = _histogram_view(name, snap)
        lines.append(f"| {name} | {view['count']} | {view['mean']:.1f} | "
                     f"{view['p50']} | {view['p95']} | {view['max']} |")
    if comparison is not None:
        lines.append("")
        lines.append("## Comparison (other vs base)")
        lines.append("")
        lines.append("| counter | base | other | delta |")
        lines.append("|---|---:|---:|---:|")
        for name, row in comparison["counters"].items():
            if row["delta"]:
                lines.append(f"| {name} | {row['base']} | {row['other']} | "
                             f"{row['delta']:+d} |")
        lines.append("")
        lines.append("| histogram | count Δ | mean shift | p95 shift |")
        lines.append("|---|---:|---:|---:|")
        for name, row in comparison["histograms"].items():
            if row["count_delta"] or row["mean_shift"]:
                p95 = row["p95_shift"]
                lines.append(f"| {name} | {row['count_delta']:+d} | "
                             f"{row['mean_shift']:+.1f} | "
                             f"{'' if p95 is None else format(p95, '+d')} |")
    lines.append("")
    return "\n".join(lines)
