"""Sweep reporting: tables, JSON, provenance, and BENCH file updates.

``BENCH_substrate.json`` is a long-lived perf trajectory, so every
section carries provenance (interpreter, platform, CPU count, iteration
counts, and a caller-supplied timestamp) — numbers from different
machines stay comparable.  The file is section-merged, never
overwritten wholesale: the kernel microbenchmark, the gateway trace
benchmark, and the sweep engine each own one top-level key.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from pathlib import Path

__all__ = ["provenance", "sweep_table", "update_bench_json"]


def provenance(timestamp: str, iterations: int | None = None) -> dict:
    """Measurement provenance for a BENCH section.

    ``timestamp`` is passed in by the harness (never read inside the
    simulation — the model has no wall clock), typically an ISO-8601
    UTC string captured right before the measurement.
    """
    info = {
        "python_version": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "timestamp": timestamp,
    }
    if iterations is not None:
        info["iterations"] = iterations
    return info


def update_bench_json(path: str | Path, section: str, payload: dict) -> dict:
    """Merge ``payload`` under ``section`` in the BENCH file.

    Reads whatever is there, replaces just the one section, and writes
    the result back sorted — concurrent benchmarks touching different
    sections cannot clobber each other's numbers.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
        if not isinstance(data, dict):
            data = {}
    except (OSError, ValueError):
        data = {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return data


def sweep_table(report: dict):
    """Render a sweep report as an :class:`~repro.analysis.Table`."""
    from ..analysis import Table

    table = Table(
        f"scenario sweep — {report['count']} scenarios, "
        f"{report['workers']} worker(s), {report['cache_hits']} cached, "
        f"{report['wall_s']:.2f}s wall",
        ["scenario", "seed", "cached", "events", "wall s", "digest"],
    )
    for result in report["scenarios"]:
        if "error" in result:
            table.add_row(result["name"], result.get("seed", "-"), "-", "-",
                          "-", "ERROR")
            continue
        table.add_row(
            result["name"],
            result["seed"],
            "yes" if result.get("cached") else "no",
            result["events_executed"],
            f"{result['wall_s']:.3f}",
            result["digest"][:12],
        )
    return table
