"""The scenario registry: every runnable configuration, by name.

A :class:`ScenarioSpec` is pure data — builder key, seed, horizon,
trace mode, parameters — so it pickles across process boundaries and
hashes into a stable cache key.  The builder functions that turn a spec
into a live :class:`~repro.sim.Simulator` live in this module too, keyed
by name in :data:`BUILDERS`; a worker process rebuilds the whole model
from the spec, which is what makes per-scenario process isolation safe:
no live simulator state ever crosses a process boundary.

The default registry names the configurations the evaluation story
runs over and over: gateway-pipeline seed sweeps, the integrated car
and its coupling ablations, raw TDMA/VN throughput workloads, and
fault-injection scenarios.  ``smoke``-tagged entries are short-horizon
variants cheap enough for CI.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable
from dataclasses import dataclass, field, replace
from fnmatch import fnmatch
from typing import Any

from ..errors import ConfigurationError
from ..sim import MS, SEC, Simulator, make_trace

__all__ = [
    "BUILDERS",
    "ScenarioSpec",
    "build_scenario",
    "default_registry",
    "derive_seed",
    "filter_scenarios",
]


def derive_seed(name: str, base_seed: int = 0) -> int:
    """Deterministic per-scenario seed: stable across machines and runs.

    Hash-derived (not ``base_seed + i``) so inserting a scenario into
    the registry never shifts every other scenario's seed.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big") % (2**31)


@dataclass(frozen=True)
class ScenarioSpec:
    """One runnable configuration, as plain picklable data."""

    name: str
    builder: str
    horizon_ns: int
    seed: int
    trace_mode: str = "full"
    #: sorted (key, value) pairs — a tuple, not a dict/frozenset, so the
    #: JSON form (and therefore the cache key) is order-stable.
    params: tuple[tuple[str, Any], ...] = ()
    tags: tuple[str, ...] = ()

    def param(self, key: str, default: Any = None) -> Any:
        for k, v in self.params:
            if k == key:
                return v
        return default

    def with_param(self, key: str, value: Any) -> "ScenarioSpec":
        """A copy with one parameter set/overridden (sorted, so the
        cache key stays canonical)."""
        merged = {k: v for k, v in self.params}
        merged[key] = value
        return replace(self, params=tuple(sorted(merged.items())))

    def as_dict(self) -> dict:
        """Canonical JSON-able form (the cache-key input)."""
        return {
            "name": self.name,
            "builder": self.builder,
            "horizon_ns": self.horizon_ns,
            "seed": self.seed,
            "trace_mode": self.trace_mode,
            "params": {k: v for k, v in self.params},
            "tags": list(self.tags),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`as_dict` form (the ledger's
        replay audit re-executes recorded specs through this).

        JSON round-trips tuples into lists; builders already accept
        list-valued params (e.g. ``gps_outages``), so values are kept
        as deserialized.
        """
        return cls(
            name=str(data["name"]),
            builder=str(data["builder"]),
            horizon_ns=int(data["horizon_ns"]),
            seed=int(data["seed"]),
            trace_mode=str(data.get("trace_mode", "full")),
            params=tuple(sorted(dict(data.get("params", {})).items())),
            tags=tuple(data.get("tags", ())),
        )


def _spec(name: str, builder: str, horizon_ns: int, *, seed: int | None = None,
          base_seed: int = 0, trace_mode: str = "full", tags: tuple[str, ...] = (),
          **params: Any) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        builder=builder,
        horizon_ns=horizon_ns,
        seed=derive_seed(name, base_seed) if seed is None else seed,
        trace_mode=trace_mode,
        params=tuple(sorted(params.items())),
        tags=tuple(sorted(tags)),
    )


# ----------------------------------------------------------------------
# builders — ScenarioSpec -> ready-to-run Simulator
# ----------------------------------------------------------------------
def _build_gateway_pipeline(spec: ScenarioSpec) -> Simulator:
    """ET sensor DAS -> hidden gateway -> TT climate DAS (the E5 shape)."""
    from ..messaging import (
        ElementDef,
        FieldDef,
        IntType,
        MessageType,
        Semantics,
        TimestampType,
    )
    from ..platform import Job
    from ..spec import (
        ControlParadigm,
        Direction,
        InteractionType,
        LinkSpec,
        PortSpec,
        TTTiming,
    )
    from ..systems import GatewayDecl, SystemBuilder

    dst_period = spec.param("dst_period_ns", 20 * MS)
    sender_period = spec.param("sender_period_ns", 7 * MS)

    src = MessageType("msgSensorBundle", elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=1),)),
        ElementDef("Temp", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("c", IntType(16)),
                           FieldDef("t_src", TimestampType(32)),)),
        ElementDef("Humidity", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("pct", IntType(16)),)),
    ))
    dst = MessageType("msgClimateView", elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True, static_value=2),)),
        ElementDef("Temp", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("c", IntType(16)),
                           FieldDef("t_src", TimestampType(32)),)),
    ))

    class Sender(Job):
        def __init__(self, jsim, name, das, partition):
            super().__init__(jsim, name, das, partition)
            self.vn = None
            self.sent = 0
            self._last = None

        def on_step(self):
            now = self.sim.now
            if self.vn is None:
                return
            if self._last is not None and now - self._last < sender_period:
                return
            self._last = now
            self.sent += 1
            self.vn.send("msgSensorBundle", src.instance(
                Temp={"c": self.sent % 40, "t_src": (now // 1000) % 2**32},
                Humidity={"pct": 50},
            ), sender_job=self.name)

    class Viewer(Job):
        def __init__(self, jsim, name, das, partition):
            super().__init__(jsim, name, das, partition)
            self.deliveries = 0

        def on_message(self, port_name, instance, arrival):
            self.deliveries += 1

    sim = Simulator(seed=spec.seed, trace=make_trace(spec.trace_mode))
    builder = SystemBuilder(sim=sim)
    builder.add_node("src-ecu").add_node("gw-ecu").add_node("dst-ecu")
    builder.add_das("sensors", ControlParadigm.EVENT_TRIGGERED)
    builder.add_das("climate", ControlParadigm.TIME_TRIGGERED)
    builder.add_job(
        "sender", "sensors", "src-ecu",
        lambda s, n, d, p: Sender(s, n, d, p),
        ports=(PortSpec(message_type=src, direction=Direction.OUTPUT,
                        semantics=Semantics.EVENT,
                        control=ControlParadigm.EVENT_TRIGGERED, queue_depth=32),),
    )
    builder.add_job(
        "viewer", "climate", "dst-ecu",
        lambda s, n, d, p: Viewer(s, n, d, p),
        ports=(PortSpec(message_type=dst, direction=Direction.INPUT,
                        semantics=Semantics.STATE,
                        control=ControlParadigm.TIME_TRIGGERED,
                        tt=TTTiming(period=dst_period),
                        interaction=InteractionType.PUSH,
                        temporal_accuracy=500 * MS),),
    )
    builder.add_gateway(GatewayDecl(
        name="gw", host="gw-ecu", das_a="sensors", das_b="climate",
        link_a=LinkSpec(das="sensors", ports=(PortSpec(
            message_type=src, direction=Direction.INPUT,
            semantics=Semantics.EVENT, control=ControlParadigm.EVENT_TRIGGERED,
            queue_depth=32,
        ),)),
        link_b=LinkSpec(das="climate", ports=(PortSpec(
            message_type=dst, direction=Direction.OUTPUT,
            semantics=Semantics.STATE, control=ControlParadigm.TIME_TRIGGERED,
            tt=TTTiming(period=dst_period), temporal_accuracy=500 * MS,
        ),)),
        rules=[("msgSensorBundle", "msgClimateView", "a_to_b", None)],
    ))
    system = builder.build()
    system.start()
    system.job("sender").vn = system.vn("sensors")

    crash_at = spec.param("crash_controller_at_ns")
    if crash_at is not None:
        from ..faults import ComponentCrash, FaultInjector

        injector = FaultInjector(sim)
        node = spec.param("crash_component", "src-ecu")
        injector.inject_at(
            ComponentCrash(name=f"crash.{node}", component=system.component(node)),
            at=crash_at,
        )
    return sim


def _build_car(spec: ScenarioSpec) -> Simulator:
    """The integrated automotive system with switchable couplings."""
    from ..apps import CarConfig, build_car

    config = CarConfig(
        seed=spec.seed,
        trace_mode=spec.trace_mode,
        nav_import=spec.param("nav_import", True),
        presafe_import=spec.param("presafe_import", True),
        roof_command_export=spec.param("roof_command_export", True),
        dashboard_import=spec.param("dashboard_import", True),
        gps_outages=[tuple(o) for o in spec.param("gps_outages", ())],
        round_template=spec.param("round_template", True),
    )
    return build_car(config).sim


def _build_tdma_cluster(spec: ScenarioSpec) -> Simulator:
    """Raw TDMA throughput: an N-node TT cluster exchanging chunks."""
    from ..core_network import ClusterBuilder, FrameChunk, NodeConfig

    nodes = spec.param("nodes", 4)
    sim = Simulator(seed=spec.seed, trace=make_trace(spec.trace_mode))
    builder = ClusterBuilder(sim)
    for i in range(nodes):
        builder.add_node(NodeConfig(f"n{i}", slot_capacity_bytes=32,
                                    reservations={"v": 20}))
    cluster = builder.build()
    cluster.start()
    cluster.controller("n0").register_chunk_source(
        "v", lambda slot, budget: [FrameChunk(vn="v", message="m",
                                              data=b"\x01\x02")])

    babble_at = spec.param("babble_at_ns")
    if babble_at is not None:
        from ..faults import BabblingIdiot, FaultInjector

        injector = FaultInjector(sim)
        ctrl = cluster.controller(spec.param("babble_component", f"n{nodes - 1}"))
        injector.inject_at(
            BabblingIdiot(name=f"babble.{ctrl.component}", controller=ctrl),
            at=babble_at,
            until=spec.param("babble_until_ns"),
        )
    return sim


def _build_tt_vn(spec: ScenarioSpec) -> Simulator:
    """A TT virtual network delivering through the full overlay stack."""
    from ..core_network import ClusterBuilder, NodeConfig
    from ..messaging import (
        ElementDef,
        FieldDef,
        IntType,
        MessageType,
        Namespace,
        Semantics,
    )
    from ..spec import TTTiming
    from ..vn import TTVirtualNetwork

    sim = Simulator(seed=spec.seed, trace=make_trace(spec.trace_mode))
    builder = ClusterBuilder(sim)
    builder.add_node(NodeConfig("a", slot_capacity_bytes=48,
                                reservations={"das": 30}))
    builder.add_node(NodeConfig("b", slot_capacity_bytes=48,
                                reservations={"das": 30}))
    cluster = builder.build()
    cluster.start()
    mt = MessageType("m", elements=(
        ElementDef("D", convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("v", IntType(32)),)),
    ))
    ns = Namespace("das")
    ns.register(mt)
    vn = TTVirtualNetwork(sim, "das", cluster, ns)
    counter = {"n": 0}
    vn.attach_gateway_producer(
        "m", "a", provider=lambda: mt.instance(D={"v": counter["n"]}))
    vn.set_timing("m", TTTiming(period=cluster.schedule.cycle_length))
    vn.tap("m", "b", lambda m, i, t: counter.__setitem__("n", counter["n"] + 1))
    vn.start()
    return sim


def _build_generated(spec: ScenarioSpec) -> Simulator:
    """Procedurally generated N×M×K relay-chain cluster (lazy import so
    the generator package never loads unless a generated spec runs —
    and so ledger replay of recorded generated specs resolves through
    the ordinary registry)."""
    from ..generate import build_generated

    return build_generated(spec)


BUILDERS: dict[str, Callable[[ScenarioSpec], Simulator]] = {
    "gateway_pipeline": _build_gateway_pipeline,
    "car": _build_car,
    "tdma_cluster": _build_tdma_cluster,
    "tt_vn": _build_tt_vn,
    "generated": _build_generated,
}


def build_scenario(spec: ScenarioSpec) -> Simulator:
    """Instantiate the model a spec describes on a fresh simulator.

    Cross-builder params are honored here so every scenario kind
    supports them uniformly: ``flow_tracing`` (causal flow records; off
    by default so the golden digests of untagged scenarios are
    untouched), ``profile`` (wall-clock handler attribution — never use
    it in a digest-compared scenario, wall time is nondeterministic),
    and ``runtime``/``pace`` (execution runtime by CLI name, see
    :mod:`repro.sim.runtime`; the default ``"sim"`` leaves the builder's
    zero-cost simulated runtime in place so digests are untouched).
    """
    try:
        builder = BUILDERS[spec.builder]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario builder {spec.builder!r} "
            f"(known: {sorted(BUILDERS)})"
        ) from None
    sim = builder(spec)
    runtime_name = spec.param("runtime", "sim")
    if runtime_name != "sim":
        from ..sim import make_runtime

        sim.set_runtime(make_runtime(runtime_name, pace=spec.param("pace")))
    if spec.param("flow_tracing"):
        sim.flows.enable()
    if spec.param("profile"):
        sim.enable_profiling()
    if spec.param("round_template", True):
        # Steady-state fast-forward, on by default for scenario runs
        # (``round_template: False`` — the CLI's --no-round-template —
        # keeps exact event-by-event execution).  Quasi-periodic mode
        # lets scenarios with ET traffic and gateways (the car family)
        # arm too: their dynamics participate via fingerprints instead
        # of blocking outright.  Arming additionally requires a runtime
        # that supports templates (only ``sim``).
        sim.round_template.activate(quasi_periodic=True)
    return sim


# ----------------------------------------------------------------------
# the default registry
# ----------------------------------------------------------------------
def default_registry(base_seed: int = 0) -> dict[str, ScenarioSpec]:
    """Every named configuration, in a deterministic order.

    ``base_seed`` re-derives every hash-derived seed, so a whole sweep
    can be replayed under a different seed universe with one flag; the
    explicitly-seeded anchors (``gw-pipeline-s5``) keep their seed.
    """
    specs = [
        # --- gateway pipeline: the E5 anchor plus a seed sweep --------
        _spec("gw-pipeline-s5", "gateway_pipeline", 1 * SEC, seed=5,
              tags=("gateway", "sweep")),
        *(
            _spec(f"gw-pipeline-seed{i}", "gateway_pipeline", 1 * SEC,
                  base_seed=base_seed, tags=("gateway", "seeds", "sweep"))
            for i in range(3)
        ),
        _spec("gw-pipeline-smoke", "gateway_pipeline", 200 * MS, seed=5,
              tags=("gateway", "smoke")),
        _spec("gw-pipeline-flow", "gateway_pipeline", 500 * MS, seed=5,
              tags=("flow", "gateway"), flow_tracing=True),
        # --- the integrated car and its coupling ablations ------------
        _spec("car-baseline", "car", 2 * SEC, seed=0, trace_mode="counters",
              tags=("car", "sweep")),
        _spec("car-strict-separation", "car", 2 * SEC, seed=0,
              trace_mode="counters",
              tags=("ablation", "car", "sweep"),
              nav_import=False, presafe_import=False,
              roof_command_export=False, dashboard_import=False),
        _spec("car-gps-outage", "car", 2 * SEC, seed=0, trace_mode="counters",
              tags=("ablation", "car"),
              gps_outages=((500 * MS, 1500 * MS),)),
        _spec("car-smoke", "car", 500 * MS, seed=0, trace_mode="counters",
              tags=("car", "smoke")),
        _spec("car-flow", "car", 500 * MS, seed=0,
              tags=("car", "flow"), flow_tracing=True),
        # --- raw substrate workloads ----------------------------------
        _spec("tdma-cluster", "tdma_cluster", 1 * SEC,
              base_seed=base_seed, tags=("core", "sweep"), nodes=4),
        _spec("tdma-smoke", "tdma_cluster", 250 * MS,
              base_seed=base_seed, tags=("core", "smoke"), nodes=4),
        _spec("tt-vn-pipeline", "tt_vn", 1 * SEC,
              base_seed=base_seed, tags=("sweep", "vn")),
        # --- fault ablations ------------------------------------------
        _spec("fault-controller-crash", "gateway_pipeline", 1 * SEC,
              base_seed=base_seed, tags=("fault", "sweep"),
              crash_controller_at_ns=300 * MS, crash_component="src-ecu"),
        _spec("fault-babbling-idiot", "tdma_cluster", 1 * SEC,
              base_seed=base_seed, tags=("fault", "sweep"),
              nodes=4, babble_at_ns=200 * MS, babble_until_ns=600 * MS),
    ]
    registry: dict[str, ScenarioSpec] = {}
    for spec in specs:
        if spec.name in registry:
            raise ConfigurationError(f"duplicate scenario name {spec.name!r}")
        registry[spec.name] = spec
    return registry


def filter_scenarios(
    registry: dict[str, ScenarioSpec], tokens: list[str] | None
) -> list[ScenarioSpec]:
    """Select scenarios whose name globs or tags match any token.

    ``None``/empty selects everything.  Tokens are OR-ed; each matches
    either a tag exactly or the scenario name as an ``fnmatch`` glob.
    """
    specs = list(registry.values())
    if not tokens:
        return specs
    out = []
    for spec in specs:
        for token in tokens:
            if token in spec.tags or fnmatch(spec.name, token):
                out.append(spec)
                break
    return out
