"""Scenario-sweep engine (substrate S12).

Names every runnable configuration in a :func:`default_registry`, fans
selected scenarios out over a process pool with per-worker isolation
(:class:`SweepRunner`), and fronts execution with a digest-keyed result
cache so repeat sweeps only re-run what changed.  Exposed on the CLI as
``repro sweep``.
"""

from .aggregate import (
    aggregate_results,
    compare_snapshots,
    load_cached_results,
    observability_report,
)
from .cache import ResultCache, TemplateStore, code_digest, result_key, template_key
from .executor import LEDGER_FILENAME, SweepRunner, run_scenario, trace_digest
from .report import provenance, sweep_table, update_bench_json
from .scenarios import (
    BUILDERS,
    ScenarioSpec,
    build_scenario,
    default_registry,
    derive_seed,
    filter_scenarios,
)
from .telemetry import SweepMonitor

__all__ = [
    "BUILDERS",
    "LEDGER_FILENAME",
    "ResultCache",
    "ScenarioSpec",
    "SweepMonitor",
    "SweepRunner",
    "TemplateStore",
    "aggregate_results",
    "compare_snapshots",
    "load_cached_results",
    "observability_report",
    "build_scenario",
    "code_digest",
    "default_registry",
    "derive_seed",
    "filter_scenarios",
    "provenance",
    "result_key",
    "run_scenario",
    "template_key",
    "sweep_table",
    "trace_digest",
    "update_bench_json",
]
