"""Digest-keyed result cache for scenario sweeps.

A cached entry is keyed by ``sha256(spec JSON + code digest)``: the
scenario's full specification plus a digest over every ``.py`` file in
the ``repro`` package.  Editing any source file, or any field of the
spec, therefore invalidates exactly the runs whose results could have
changed — a warm re-sweep only re-executes what moved.  The cache is a
directory of small JSON files (default ``.repro_cache/``), one per
scenario, safe to delete wholesale at any time.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .scenarios import ScenarioSpec

__all__ = ["CheckCache", "ResultCache", "TemplateStore", "check_key",
           "code_digest", "result_key", "template_key"]

#: bump to invalidate every existing cache entry on format changes
CACHE_FORMAT = 2


def _file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def code_digest(roots: tuple[Path, ...] | None = None) -> str:
    """Digest of every ``.py`` file under ``roots`` (default: the
    installed ``repro`` package), keyed by stable relative path."""
    if roots is None:
        roots = (Path(__file__).resolve().parent.parent,)
    h = hashlib.sha256()
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(_file_sha(path).encode())
    return h.hexdigest()


def result_key(spec: ScenarioSpec, code: str) -> str:
    """Cache key for one scenario under one code state."""
    payload = json.dumps(
        {"format": CACHE_FORMAT, "spec": spec.as_dict(), "code": code},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def template_key(spec: ScenarioSpec, code: str) -> str:
    """Persistent-template-bank key for one scenario under one code state.

    Separate from :func:`result_key` so the two namespaces can never
    collide, and salted with the round-template engine's wire-format
    version: a bank written by an older engine is unreachable (not
    merely rejected at validation) after a format bump.
    """
    from ..sim.round_template import ENGINE_VERSION

    payload = json.dumps(
        {"format": CACHE_FORMAT, "kind": "templates",
         "engine": ENGINE_VERSION, "spec": spec.as_dict(), "code": code},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


def check_key(spec: ScenarioSpec, code: str) -> str:
    """Check-report cache key for one scenario under one code state.

    Keyed on the full spec plus the whole-package code digest: any
    source edit anywhere in ``repro`` invalidates every cached report.
    Deliberately conservative — analyzer results depend on builders,
    VN/gateway internals, and the rule implementations alike, and a
    static check re-run costs milliseconds while a stale verdict could
    admit a broken configuration to a thousand-scenario sweep.
    """
    payload = json.dumps(
        {"format": CACHE_FORMAT, "kind": "checks",
         "spec": spec.as_dict(), "code": code},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


#: Default size cap for a cache directory (see ResultCache.max_bytes).
DEFAULT_CACHE_MAX_BYTES = 64 * 1024 * 1024


class _DirCache:
    """Shared machinery for a digest-keyed directory of JSON entries.

    Files are named ``<scenario>-<key>.json``; a ``put`` removes stale
    entries of the same scenario (older code states) so the directory
    never grows beyond one file per scenario.  On top of that, a size
    cap (``max_bytes``) evicts the oldest entries — by file mtime, i.e.
    least-recently-written digest first — so a long-lived checkout
    accumulating many scenario names still cannot grow unboundedly.
    Evictions are tallied in a ``_meta.json`` sidecar (never itself an
    entry) so ``repro cache stats`` can report them across processes.
    """

    def __init__(self, root: str | Path = ".repro_cache",
                 max_bytes: int = DEFAULT_CACHE_MAX_BYTES) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        # In-instance incremental index (filename -> byte size, oldest
        # first): loaded with one directory scan on the first write,
        # then maintained across puts, so storing N entries costs O(N)
        # instead of the O(N^2) a per-put rescan gives at campaign
        # scale.  Advisory only — other processes mutating the directory
        # at worst skew eviction order, never correctness.
        self._index: dict[str, int] | None = None
        self._index_total = 0
        self._by_scenario: dict[str, str] = {}

    def path_for(self, spec: ScenarioSpec, key: str) -> Path:
        return self.root / f"{spec.name}-{key}.json"

    @staticmethod
    def _scenario_of(filename: str) -> str | None:
        """Scenario name encoded in ``<scenario>-<24 hex>.json``, or
        ``None`` for files not following the entry naming scheme."""
        stem = filename[:-5] if filename.endswith(".json") else filename
        if len(stem) > 25 and stem[-25] == "-" and "-" not in stem[-24:]:
            return stem[:-25]
        return None

    # -- eviction bookkeeping ------------------------------------------
    @property
    def _meta_path(self) -> Path:
        return self.root / "_meta.json"

    def eviction_count(self) -> int:
        try:
            meta = json.loads(self._meta_path.read_text())
            return int(meta.get("evictions", 0))
        except (OSError, ValueError, TypeError):
            return 0

    def _count_evictions(self, n: int) -> None:
        if n <= 0:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        self._meta_path.write_text(json.dumps(
            {"evictions": self.eviction_count() + n}) + "\n")

    # -- entry lifecycle -----------------------------------------------
    def _read(self, spec: ScenarioSpec, key: str) -> dict | None:
        """The entry payload for ``key``, or ``None`` on miss/corruption."""
        path = self.path_for(spec, key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or payload.get("key") != key:
            return None
        return payload

    def _load_index(self) -> None:
        """One-time directory scan seeding the incremental index."""
        if self._index is not None:
            return
        self._index = {}
        self._index_total = 0
        self._by_scenario = {}
        for path in self.entries():
            try:
                size = path.stat().st_size
            except OSError:
                continue
            self._index[path.name] = size
            self._index_total += size
            scenario = self._scenario_of(path.name)
            if scenario is not None:
                self._by_scenario[scenario] = path.name

    def _drop_index(self) -> None:
        """Forget the index after an out-of-band directory mutation."""
        self._index = None
        self._index_total = 0
        self._by_scenario = {}

    def _write(self, spec: ScenarioSpec, key: str, payload: dict,
               indent: int | None = 2) -> Path:
        return self.put_entries([(spec, key, payload)], indent=indent)[0]

    def put_entries(self, items: list[tuple[ScenarioSpec, str, dict]],
                    indent: int | None = 2) -> list[Path]:
        """Store a batch of entries with O(1)-amortized bookkeeping.

        Stale same-scenario entries (older code states) are reaped via
        the index instead of a directory glob, and the size-cap
        eviction walks the index's oldest end instead of re-stat-ing
        every file.  The end state matches the equivalent sequence of
        single ``put`` calls exactly: the newest entry is never
        evicted, older batch entries are fair game once the cap is hit.
        """
        self._load_index()
        assert self._index is not None
        self.root.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for spec, key, payload in items:
            filename = f"{spec.name}-{key}.json"
            stale = self._by_scenario.get(spec.name)
            # Only reap true older keys of THIS scenario, never entries
            # of another scenario whose name shares the prefix (the
            # index maps exact scenario names, so that holds by
            # construction).
            if stale is not None and stale != filename:
                (self.root / stale).unlink(missing_ok=True)
                self._index_total -= self._index.pop(stale, 0)
            data = json.dumps(dict(payload, key=key), indent=indent,
                              sort_keys=True) + "\n"
            path = self.root / filename
            path.write_text(data)
            size = len(data.encode())
            # re-insert at the newest end of the (insertion-ordered) index
            self._index_total -= self._index.pop(filename, 0)
            self._index[filename] = size
            self._index_total += size
            self._by_scenario[spec.name] = filename
            written.append(path)
        self._evict_indexed(
            protect={written[-1].name} if written else set())
        return written

    def _evict_indexed(self, protect: set[str]) -> int:
        """Evict oldest indexed entries until the total fits the cap."""
        assert self._index is not None
        if self.max_bytes is None or self.max_bytes <= 0:
            return 0
        removed = 0
        for filename in list(self._index):
            if self._index_total <= self.max_bytes:
                break
            if filename in protect:
                continue
            (self.root / filename).unlink(missing_ok=True)
            self._index_total -= self._index.pop(filename)
            scenario = self._scenario_of(filename)
            if scenario is not None and self._by_scenario.get(scenario) == filename:
                del self._by_scenario[scenario]
            removed += 1
        self._count_evictions(removed)
        return removed

    def clear(self) -> int:
        """Delete every entry (and the meta sidecar); returns how many
        entry files were removed."""
        n = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                if path.name == "_meta.json":
                    path.unlink(missing_ok=True)
                    continue
                path.unlink(missing_ok=True)
                n += 1
        self._drop_index()
        return n

    def entries(self) -> list[Path]:
        """Every cache file, oldest (by mtime) first."""
        if not self.root.is_dir():
            return []
        return sorted((p for p in self.root.glob("*.json")
                       if p.name != "_meta.json"),
                      key=lambda p: (p.stat().st_mtime, p.name))

    def evict_to_cap(self, keep: Path | None = None) -> int:
        """Evict oldest entries until the directory fits ``max_bytes``;
        returns how many files were removed.  ``keep`` (the entry just
        written) is never evicted, even if it alone exceeds the cap."""
        if self.max_bytes is None or self.max_bytes <= 0:
            return 0
        entries = [(p, p.stat().st_size) for p in self.entries()]
        total = sum(size for _, size in entries)
        removed = 0
        for path, size in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            path.unlink(missing_ok=True)
            total -= size
            removed += 1
        self._count_evictions(removed)
        if removed:
            self._drop_index()
        return removed

    def stats(self) -> dict:
        """JSON-ready summary of the cache directory."""
        entries = self.entries()
        sizes = [p.stat().st_size for p in entries]
        per_scenario: dict[str, int] = {}
        for p in entries:
            # <scenario>-<24 hex chars>.json
            name = p.stem[:-25] if len(p.stem) > 25 else p.stem
            per_scenario[name] = per_scenario.get(name, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(sizes),
            "max_bytes": self.max_bytes,
            "evictions": self.eviction_count(),
            "scenarios": dict(sorted(per_scenario.items())),
            "oldest": entries[0].name if entries else None,
            "newest": entries[-1].name if entries else None,
        }


class ResultCache(_DirCache):
    """One JSON result file per scenario under ``root``."""

    def get(self, spec: ScenarioSpec, key: str) -> dict | None:
        """The cached result payload, or ``None`` on miss/corruption."""
        payload = self._read(spec, key)
        if payload is None:
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: ScenarioSpec, key: str, result: dict) -> Path:
        return self._write(spec, key, {"spec": spec.as_dict(),
                                       "result": result})

    def put_many(self, items: list[tuple[ScenarioSpec, str, dict]]) -> list[Path]:
        """Batch store: one index pass and one eviction sweep for the
        whole chunk (the sweep runner's campaign write path)."""
        return self.put_entries([
            (spec, key, {"spec": spec.as_dict(), "result": result})
            for spec, key, result in items
        ])


class TemplateStore(_DirCache):
    """Persistent bank of compiled round templates, one file per
    scenario, under ``<cache root>/templates/``.

    A stored bank is advisory: the engine re-validates it against the
    live registration (engine version, mode, round length, label set,
    participant count) at ``begin`` and signature/fingerprint-checks
    every replay, so a stale or hand-edited file can only cost a warm
    start, never correctness.  Banks are written compact (no indent) —
    a car-class bank runs to thousands of templates.
    """

    def __init__(self, root: str | Path = ".repro_cache",
                 max_bytes: int = DEFAULT_CACHE_MAX_BYTES) -> None:
        super().__init__(Path(root) / "templates", max_bytes=max_bytes)

    def get(self, spec: ScenarioSpec, key: str) -> dict | None:
        """The stored template bank, or ``None`` on miss/corruption."""
        payload = self._read(spec, key)
        if payload is None:
            return None
        bank = payload.get("bank")
        return bank if isinstance(bank, dict) else None

    def put(self, spec: ScenarioSpec, key: str, bank: dict) -> Path:
        return self._write(spec, key, {"spec": spec.as_dict(),
                                       "bank": bank}, indent=None)


class CheckCache(_DirCache):
    """Persistent static-check reports, one file per scenario, under
    ``<cache root>/checks/`` (the incremental ``repro check`` path).

    The payload is the serialized diagnostic list of one
    ``check_scenario`` run.  Hits and misses are tallied in a
    ``_stats.json`` sidecar so a later ``repro cache stats`` invocation
    (a different process) can report whether the warm path actually
    engaged.
    """

    def __init__(self, root: str | Path = ".repro_cache",
                 max_bytes: int = DEFAULT_CACHE_MAX_BYTES) -> None:
        super().__init__(Path(root) / "checks", max_bytes=max_bytes)

    @property
    def _stats_path(self) -> Path:
        return self.root / "_stats.json"

    def _tallies(self) -> dict:
        try:
            data = json.loads(self._stats_path.read_text())
            if isinstance(data, dict):
                return {"hits": int(data.get("hits", 0)),
                        "misses": int(data.get("misses", 0))}
        except (OSError, ValueError, TypeError):
            pass
        return {"hits": 0, "misses": 0}

    def _tally(self, field: str) -> None:
        tallies = self._tallies()
        tallies[field] += 1
        self.root.mkdir(parents=True, exist_ok=True)
        self._stats_path.write_text(json.dumps(tallies) + "\n")

    def get(self, spec: ScenarioSpec, key: str) -> list[dict] | None:
        """The cached diagnostic dicts, or ``None`` on miss/corruption."""
        payload = self._read(spec, key)
        if payload is not None:
            report = payload.get("report")
            if isinstance(report, list):
                self._tally("hits")
                return report
        self._tally("misses")
        return None

    def put(self, spec: ScenarioSpec, key: str,
            report: list[dict]) -> Path:
        return self._write(spec, key, {"spec": spec.as_dict(),
                                       "report": report})

    def clear(self) -> int:
        # The tally sidecar goes first so the base sweep does not count
        # it as an evicted entry.
        self._stats_path.unlink(missing_ok=True)
        return super().clear()

    def entries(self) -> list[Path]:
        return [p for p in super().entries() if p.name != "_stats.json"]

    def stats(self) -> dict:
        out = super().stats()
        out.update(self._tallies())
        return out
