"""Digest-keyed result cache for scenario sweeps.

A cached entry is keyed by ``sha256(spec JSON + code digest)``: the
scenario's full specification plus a digest over every ``.py`` file in
the ``repro`` package.  Editing any source file, or any field of the
spec, therefore invalidates exactly the runs whose results could have
changed — a warm re-sweep only re-executes what moved.  The cache is a
directory of small JSON files (default ``.repro_cache/``), one per
scenario, safe to delete wholesale at any time.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from .scenarios import ScenarioSpec

__all__ = ["ResultCache", "code_digest", "result_key"]

#: bump to invalidate every existing cache entry on format changes
CACHE_FORMAT = 1


def _file_sha(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def code_digest(roots: tuple[Path, ...] | None = None) -> str:
    """Digest of every ``.py`` file under ``roots`` (default: the
    installed ``repro`` package), keyed by stable relative path."""
    if roots is None:
        roots = (Path(__file__).resolve().parent.parent,)
    h = hashlib.sha256()
    for root in roots:
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode())
            h.update(_file_sha(path).encode())
    return h.hexdigest()


def result_key(spec: ScenarioSpec, code: str) -> str:
    """Cache key for one scenario under one code state."""
    payload = json.dumps(
        {"format": CACHE_FORMAT, "spec": spec.as_dict(), "code": code},
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:24]


#: Default size cap for a cache directory (see ResultCache.max_bytes).
DEFAULT_CACHE_MAX_BYTES = 64 * 1024 * 1024


class ResultCache:
    """One JSON file per scenario under ``root``.

    Files are named ``<scenario>-<key>.json``; a ``put`` removes stale
    entries of the same scenario (older code states) so the directory
    never grows beyond one file per scenario.  On top of that, a size
    cap (``max_bytes``) evicts the oldest entries — by file mtime, i.e.
    least-recently-written digest first — so a long-lived checkout
    accumulating many scenario names still cannot grow unboundedly.
    """

    def __init__(self, root: str | Path = ".repro_cache",
                 max_bytes: int = DEFAULT_CACHE_MAX_BYTES) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes

    def path_for(self, spec: ScenarioSpec, key: str) -> Path:
        return self.root / f"{spec.name}-{key}.json"

    def get(self, spec: ScenarioSpec, key: str) -> dict | None:
        """The cached result payload, or ``None`` on miss/corruption."""
        path = self.path_for(spec, key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("key") != key:
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None

    def put(self, spec: ScenarioSpec, key: str, result: dict) -> Path:
        self.root.mkdir(parents=True, exist_ok=True)
        for stale in self.root.glob(f"{spec.name}-*.json"):
            suffix = stale.stem.removeprefix(f"{spec.name}-")
            # Only reap true older keys of THIS scenario, not entries of
            # another scenario whose name happens to share the prefix.
            if suffix != key and len(suffix) == 24 and not suffix.count("-"):
                stale.unlink(missing_ok=True)
        path = self.path_for(spec, key)
        path.write_text(json.dumps(
            {"key": key, "spec": spec.as_dict(), "result": result},
            indent=2, sort_keys=True,
        ) + "\n")
        self.evict_to_cap(keep=path)
        return path

    def clear(self) -> int:
        """Delete every entry; returns how many files were removed."""
        n = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink(missing_ok=True)
                n += 1
        return n

    def entries(self) -> list[Path]:
        """Every cache file, oldest (by mtime) first."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*.json"),
                      key=lambda p: (p.stat().st_mtime, p.name))

    def evict_to_cap(self, keep: Path | None = None) -> int:
        """Evict oldest entries until the directory fits ``max_bytes``;
        returns how many files were removed.  ``keep`` (the entry just
        written) is never evicted, even if it alone exceeds the cap."""
        if self.max_bytes is None or self.max_bytes <= 0:
            return 0
        entries = [(p, p.stat().st_size) for p in self.entries()]
        total = sum(size for _, size in entries)
        removed = 0
        for path, size in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            path.unlink(missing_ok=True)
            total -= size
            removed += 1
        return removed

    def stats(self) -> dict:
        """JSON-ready summary of the cache directory."""
        entries = self.entries()
        sizes = [p.stat().st_size for p in entries]
        per_scenario: dict[str, int] = {}
        for p in entries:
            # <scenario>-<24 hex chars>.json
            name = p.stem[:-25] if len(p.stem) > 25 else p.stem
            per_scenario[name] = per_scenario.get(name, 0) + 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(sizes),
            "max_bytes": self.max_bytes,
            "scenarios": dict(sorted(per_scenario.items())),
            "oldest": entries[0].name if entries else None,
            "newest": entries[-1].name if entries else None,
        }
