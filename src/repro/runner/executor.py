"""Parallel scenario execution with per-worker isolation.

Scenarios are independent by construction — a worker process receives a
picklable :class:`~repro.runner.scenarios.ScenarioSpec`, rebuilds the
entire model on a fresh :class:`~repro.sim.Simulator`, runs it to the
spec's horizon, and ships back a JSON-able result (metrics snapshot plus
trace digest).  No simulator object ever crosses a process boundary, so
fanning out over a :class:`concurrent.futures.ProcessPoolExecutor`
cannot perturb determinism: the per-scenario trace digest is
byte-identical whether the scenario ran serially, in a pool, or came
out of the result cache.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from functools import lru_cache
from pathlib import Path

from ..errors import ConfigurationError
from .cache import (
    ResultCache,
    TemplateStore,
    code_digest,
    result_key,
    template_key,
)
from .scenarios import ScenarioSpec, build_scenario
from .telemetry import (
    SweepMonitor,
    configure_worker_telemetry,
    init_worker_telemetry,
    reset_worker_telemetry,
    worker_heartbeat,
    worker_post,
)

__all__ = ["LEDGER_FILENAME", "SweepRunner", "run_scenario", "trace_digest"]

#: ledger file name inside a cache directory
LEDGER_FILENAME = "ledger.ndjsonl"


@lru_cache(maxsize=1)
def _process_code_digest() -> str:
    """Code digest, hashed once per process (workers reuse it across
    the scenarios they execute)."""
    return code_digest()


@lru_cache(maxsize=8)
def _process_template_store(root: str) -> TemplateStore:
    """Per-process persistent :class:`TemplateStore` (one per root).

    Worker state that amortizes across a campaign: the store's
    incremental directory index survives between the scenarios a
    worker executes, so a thousand template writes cost one directory
    scan instead of a thousand."""
    return TemplateStore(root)


def trace_digest(sim) -> str:
    """Deterministic digest of a finished run's observable behaviour.

    Full-trace runs digest the JSONL export record-for-record (the same
    bytes the golden-digest test hashes); counter-mode runs digest the
    sorted per-category counts.  Either way, two runs of the same spec
    on the same code must produce the same digest — in any process.
    """
    if sim.trace.memory is not None:
        from ..analysis.export import to_jsonl

        return hashlib.sha256(to_jsonl(sim.trace.records()).encode()).hexdigest()
    counts = {str(k): v for k, v in sim.trace.category_counts().items()}
    payload = json.dumps(counts, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def run_scenario(spec: ScenarioSpec,
                 template_root: str | None = None,
                 ledger_path: str | None = None) -> dict:
    """Build, run, and summarize one scenario (the worker function).

    With ``template_root`` set, a persisted round-template bank for
    this (spec, code) key is loaded before the run (warm start) and a
    bank enriched by this run is written back afterwards — unless the
    run punctured, in which case the surviving bank reflects mutated
    dynamics and is not trusted for persistence.

    With ``ledger_path`` set, a provenance record for the finished run
    (spec + digests + metrics; see :mod:`repro.ledger`) is durably
    appended to that file.  Append failures never fail the run — the
    result instead carries a ``ledger_error`` field.
    """
    result = _execute_scenario(spec, template_root)
    if ledger_path is not None:
        from ..ledger import RunLedger, record_from_result

        try:
            RunLedger(ledger_path).append(
                record_from_result(spec, result, _process_code_digest()))
        except OSError as exc:
            result["ledger_error"] = str(exc)
    return result


def _execute_scenario(spec: ScenarioSpec,
                      template_root: str | None = None) -> dict:
    """Build, run, and summarize one scenario — no ledger side effects
    (chunked execution batches those; see :func:`_pool_worker_chunk`)."""
    t0 = time.perf_counter()
    sim = build_scenario(spec)
    engine = sim.round_template
    store = tpl_key = None
    tpl_hit = False
    if template_root is not None:
        store = _process_template_store(template_root)
        tpl_key = template_key(spec, _process_code_digest())
        bank = store.get(spec, tpl_key)
        tpl_hit = bank is not None
        if tpl_hit:
            engine.load_bank(bank)
    try:
        sim.run_until(spec.horizon_ns)
    finally:
        sim.trace.close()
    wall_s = time.perf_counter() - t0
    result = {
        "name": spec.name,
        "seed": spec.seed,
        "horizon_ns": spec.horizon_ns,
        "trace_mode": spec.trace_mode,
        "events_executed": sim.events_executed,
        "now_ns": sim.now,
        "digest": trace_digest(sim),
        "metrics": sim.metrics.snapshot(),
        "wall_s": round(wall_s, 6),
        "runtime": sim.runtime.name,
        "round_template": engine.stats(),
    }
    if store is not None:
        stored = False
        if engine.bank_dirty and engine.punctures == 0:
            dump = engine.dump_bank()
            if dump is not None:
                store.put(spec, tpl_key, dump)
                stored = True
        result["template_cache"] = {
            "hit": tpl_hit,
            "stored": stored,
            "templates_loaded": engine.templates_loaded,
            "load_failures": engine.template_load_failures,
        }
    if sim.runtime.name != "sim":
        result["runtime_stats"] = sim.runtime.stats()
    if sim.flows.enabled and sim.trace.memory is not None:
        from ..analysis.flows import FlowSet

        result["flows"] = FlowSet.from_trace(sim.trace).summary()
    return result


def _pool_worker(spec: ScenarioSpec,
                 template_root: str | None = None,
                 ledger_path: str | None = None) -> dict:
    """Top-level pool entry point; never raises across the pipe."""
    return _pool_worker_chunk([spec], template_root, ledger_path)[0]


def _pool_worker_chunk(specs: list[ScenarioSpec],
                       template_root: str | None = None,
                       ledger_path: str | None = None) -> list[dict]:
    """Execute a chunk of scenarios in one task; never raises.

    The campaign fast path: per-scenario telemetry (start/heartbeat/
    finish) is unchanged, but the chunk's provenance records are
    appended to the ledger with **one** durable write + fsync
    (:meth:`~repro.ledger.RunLedger.append_many`) instead of one per
    run.  An append failure never fails the runs — every successful
    result of the chunk instead carries a ``ledger_error`` field.
    """
    results: list[dict] = []
    records: list[dict] = []
    for spec in specs:
        worker_post({"event": "start", "scenario": spec.name})
        try:
            with worker_heartbeat(spec.name):
                result = _execute_scenario(spec, template_root=template_root)
            worker_post({"event": "finish", "scenario": spec.name,
                         "wall_s": result["wall_s"],
                         "digest": result["digest"][:12]})
            if ledger_path is not None:
                from ..ledger import record_from_result

                records.append(record_from_result(spec, result,
                                                  _process_code_digest()))
        except Exception:
            worker_post({"event": "finish", "scenario": spec.name,
                         "error": True})
            result = {"name": spec.name, "seed": spec.seed,
                      "error": traceback.format_exc(limit=8)}
        results.append(result)
    if records:
        from ..ledger import RunLedger

        try:
            RunLedger(ledger_path).append_many(records)
        except OSError as exc:
            for result in results:
                if "error" not in result:
                    result["ledger_error"] = str(exc)
    return results


class SweepRunner:
    """Run many scenarios, in-process or across a process pool, with a
    digest-keyed result cache in front.

    Parameters
    ----------
    workers:
        ``<= 1`` runs serially in this process; ``> 1`` fans scenarios
        out over a :class:`ProcessPoolExecutor`.
    use_cache:
        When True, a scenario whose (spec, code digest) key has a cached
        result is not re-run.  Fresh results are written to the cache
        either way, so ``use_cache=False`` acts as a forced refresh.
    use_templates:
        When True (the default), executed scenarios warm-start from the
        persistent round-template store under ``<cache_dir>/templates/``
        and persist any newly compiled bank.  Independent of
        ``use_cache``: a forced result refresh still benefits from (and
        refreshes) warm templates, and replay parity guarantees the
        digest is byte-identical either way.
    strict:
        When True, every to-be-executed scenario is built once in this
        process and run through the static pre-flight check
        (:func:`repro.check.check_simulator`) *before* any worker
        process spawns; a scenario with error-severity findings aborts
        the whole sweep with :class:`~repro.errors.PreflightError`.
        Cache hits skip pre-flight (their spec already ran clean).
    use_ledger:
        When True (the default), every executed scenario appends a
        provenance record to ``<cache_dir>/ledger.ndjsonl`` (see
        :mod:`repro.ledger`); cache hits are served without touching
        the ledger — their execution was already recorded.
    monitor:
        A :class:`~repro.runner.telemetry.SweepMonitor` to receive live
        events (worker start/heartbeat/finish, cache hits, sweep
        start/end).  None runs silent.
    """

    def __init__(self, workers: int = 1, cache_dir: str = ".repro_cache",
                 use_cache: bool = True, strict: bool = False,
                 use_templates: bool = True, use_ledger: bool = True,
                 monitor: SweepMonitor | None = None,
                 chunk_size: int | None = None) -> None:
        self.workers = max(1, int(workers))
        self.cache_dir = str(cache_dir)
        self.cache = ResultCache(cache_dir)
        self.use_cache = use_cache
        self.strict = strict
        self.template_root = str(cache_dir) if use_templates else None
        self.ledger_path = (str(Path(cache_dir) / LEDGER_FILENAME)
                            if use_ledger else None)
        self.monitor = monitor
        #: scenarios per pool task; ``None`` auto-sizes (see
        #: :meth:`_chunk_size_for`).  Chunking bounds the scheduler to
        #: O(N/chunk) future rescans and gives workers batched ledger
        #: appends, while staying small enough that worker loss or a
        #: crash forfeits at most one chunk of progress.
        self.chunk_size = chunk_size

    def _chunk_size_for(self, n: int) -> int:
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        # ~4 waves per worker for load balance, capped so a chunk stays
        # a small durability/retry window even at N=1000.
        return max(1, min(32, -(-n // (self.workers * 4))))

    def preflight(self, specs: list[ScenarioSpec]) -> None:
        """Statically check ``specs``; raise on the first broken one.

        Served through the digest-keyed check cache under this runner's
        cache directory, so a campaign whose candidates were already
        admission-gated (:func:`repro.generate.admit` with the same
        cache) pre-flights warm in O(1) per scenario.
        """
        from ..check.diagnostics import CheckReport, Severity, render_text
        from ..check.targets import cached_scenario_diagnostics
        from ..errors import PreflightError
        from .cache import CheckCache

        cache = CheckCache(self.cache_dir)
        code = code_digest()
        for spec in specs:
            diags = cached_scenario_diagnostics(spec, cache, code)
            if any(d.severity is Severity.ERROR for d in diags):
                raise PreflightError(
                    f"scenario {spec.name!r} failed pre-flight:\n"
                    + render_text(CheckReport(diagnostics=diags,
                                              targets_checked=1))
                )

    def run(self, specs: list[ScenarioSpec]) -> dict:
        """Execute ``specs``; returns the aggregated sweep report.

        Results appear in spec order regardless of completion order, so
        the report (and anything derived from it) is deterministic.
        Spec names must be unique — results and cache entries are keyed
        by name, so a duplicate raises :class:`ConfigurationError`
        instead of silently overwriting.
        """
        t0 = time.perf_counter()
        # Pin the effective round-template flag into every spec, so the
        # flag is visible in results/cache entries and flipping it (or
        # its default) re-keys exactly the affected runs.
        specs = [
            spec if spec.param("round_template") is not None
            else spec.with_param("round_template", True)
            for spec in specs
        ]
        seen: set[str] = set()
        for spec in specs:
            if spec.name in seen:
                raise ConfigurationError(f"duplicate scenario name {spec.name!r}")
            seen.add(spec.name)
        code = code_digest()
        keys = {spec.name: result_key(spec, code) for spec in specs}
        if self.monitor is not None:
            self.monitor.begin(len(specs))
        results: dict[str, dict] = {}
        to_run: list[ScenarioSpec] = []
        hits = 0
        for spec in specs:
            cached = self.cache.get(spec, keys[spec.name]) if self.use_cache else None
            if cached is not None:
                cached = dict(cached, cached=True)
                results[spec.name] = cached
                hits += 1
                if self.monitor is not None:
                    self.monitor.post({"event": "cache_hit",
                                       "scenario": spec.name})
            else:
                to_run.append(spec)

        if self.strict:
            self.preflight(to_run)

        by_name = {spec.name: spec for spec in to_run}
        cache_batch: list[tuple[ScenarioSpec, str, dict]] = []
        for name, result in self._execute(to_run):
            result = dict(result, cached=False)
            results[name] = result
            if "error" not in result:
                cache_batch.append((by_name[name], keys[name],
                                    {k: v for k, v in result.items()
                                     if k != "cached"}))
                if len(cache_batch) >= 32:
                    self.cache.put_many(cache_batch)
                    cache_batch = []
        if cache_batch:
            self.cache.put_many(cache_batch)

        ordered = [results[spec.name] for spec in specs]
        errors = [r["name"] for r in ordered if "error" in r]
        report = {
            "scenarios": ordered,
            "count": len(ordered),
            "cache_hits": hits,
            "executed": len(to_run),
            "errors": errors,
            "workers": self.workers,
            "code_digest": code,
            "wall_s": round(time.perf_counter() - t0, 6),
        }
        if self.monitor is not None:
            self.monitor.finish(report)
        return report

    # ------------------------------------------------------------------
    def _execute(self, specs: list[ScenarioSpec]):
        if not specs:
            return
        chunk = self._chunk_size_for(len(specs))
        chunks = [specs[i:i + chunk] for i in range(0, len(specs), chunk)]
        if self.workers == 1 or len(specs) == 1:
            if self.monitor is not None:
                # The serial path emits the same event stream a pool
                # worker would, straight into the monitor.
                configure_worker_telemetry(_DirectSink(self.monitor),
                                           self.monitor.heartbeat_s)
            try:
                for batch in chunks:
                    for spec, result in zip(
                            batch, _pool_worker_chunk(batch,
                                                      self.template_root,
                                                      self.ledger_path)):
                        yield spec.name, result
            finally:
                reset_worker_telemetry()
            return
        init = initargs = None
        pump = queue = manager = None
        if self.monitor is not None:
            import multiprocessing

            # A managed queue proxy pickles into workers regardless of
            # start method; a pump thread drains it into the monitor.
            manager = multiprocessing.Manager()
            queue = manager.Queue()
            pump = threading.Thread(target=_pump_events,
                                    args=(queue, self.monitor), daemon=True)
            pump.start()
            init = init_worker_telemetry
            initargs = (queue, self.monitor.heartbeat_s)
        try:
            with ProcessPoolExecutor(max_workers=self.workers,
                                     initializer=init,
                                     initargs=initargs or ()) as pool:
                # One future per *chunk*, not per scenario: at N=1000
                # the completion loop rescans O(N/chunk) futures per
                # wait instead of O(N), and each worker amortizes its
                # ledger fsync and template-store index over the chunk.
                pending = {pool.submit(_pool_worker_chunk, batch,
                                       self.template_root,
                                       self.ledger_path): batch
                           for batch in chunks}
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        batch = pending.pop(future)
                        try:
                            batch_results = future.result()
                        except Exception:  # worker died (signal, pool failure)
                            err = traceback.format_exc(limit=8)
                            batch_results = [
                                {"name": spec.name, "seed": spec.seed,
                                 "error": err}
                                for spec in batch
                            ]
                        for spec, result in zip(batch, batch_results):
                            yield spec.name, result
        finally:
            if queue is not None:
                queue.put(None)
                pump.join(timeout=5.0)
                manager.shutdown()


class _DirectSink:
    """Adapter giving the serial path the worker queue interface."""

    def __init__(self, monitor: SweepMonitor) -> None:
        self._monitor = monitor

    def put_nowait(self, event: dict) -> None:
        self._monitor.post(event)


def _pump_events(queue, monitor: SweepMonitor) -> None:
    """Drain worker events into the monitor until the None sentinel."""
    while True:
        try:
            event = queue.get()
        except (EOFError, OSError):  # manager torn down
            return
        if event is None:
            return
        monitor.post(event)
