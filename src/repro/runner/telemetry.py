"""Live sweep telemetry: worker events, progress rendering, NDJSON stream.

While a sweep runs, workers emit small event dicts — ``start`` when a
scenario begins executing, ``heartbeat`` every second while it runs,
``finish`` when it lands — over a managed multiprocessing queue; the
parent adds ``cache_hit`` events for warm results and pumps everything
into one :class:`SweepMonitor`.  The monitor

* maintains fleet state (completed/total, runs per second, warm-hit
  rate, ETA, what every worker is executing right now),
* optionally renders a live single-line status (one ``\\r``-refresh per
  event, rate-limited) to a terminal stream, and
* optionally appends every event as one NDJSON line to a file
  (``repro sweep --events FILE``) for external consumers.

Telemetry is strictly an observer: it reads worker-side wall clocks
never simulation state, events are timestamped by the *monitor* on
receipt (no cross-process clock agreement needed), and a full queue
drops events rather than ever blocking a worker.
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import threading
import time
from pathlib import Path
from typing import IO, Any

__all__ = [
    "SweepMonitor",
    "configure_worker_telemetry",
    "init_worker_telemetry",
    "reset_worker_telemetry",
    "worker_heartbeat",
    "worker_post",
]

#: default seconds between worker heartbeats
DEFAULT_HEARTBEAT_S = 1.0

# ----------------------------------------------------------------------
# worker side — a module-global sink set up by the pool initializer
# ----------------------------------------------------------------------
_SINK: Any = None
_HEARTBEAT_S: float = DEFAULT_HEARTBEAT_S


def init_worker_telemetry(queue: Any, heartbeat_s: float) -> None:
    """Pool-initializer entry point: install the event queue in this
    worker process (must be a top-level function to pickle)."""
    configure_worker_telemetry(queue, heartbeat_s)


def configure_worker_telemetry(sink: Any, heartbeat_s: float
                               = DEFAULT_HEARTBEAT_S) -> None:
    """Install ``sink`` (anything with ``put_nowait``) as this process's
    event outlet.  The serial sweep path installs the monitor directly;
    pool workers get a managed queue proxy."""
    global _SINK, _HEARTBEAT_S
    _SINK = sink
    _HEARTBEAT_S = heartbeat_s


def reset_worker_telemetry() -> None:
    """Remove the installed sink (telemetry becomes a no-op again)."""
    global _SINK
    _SINK = None


def worker_post(event: dict) -> None:
    """Best-effort event emission: never blocks, never raises.

    Telemetry must not be able to fail a sweep — a full queue or a
    torn-down manager just drops the event.
    """
    sink = _SINK
    if sink is None:
        return
    try:
        sink.put_nowait(dict(event, worker=os.getpid()))
    except Exception:
        pass


class worker_heartbeat:
    """Context manager emitting periodic heartbeats for one scenario.

    A daemon thread posts ``{"event": "heartbeat", "scenario": ...}``
    every heartbeat interval until the body exits, so the monitor can
    show per-worker liveness on long runs.  With no sink installed it
    does nothing at all (no thread is started).
    """

    def __init__(self, scenario: str) -> None:
        self.scenario = scenario
        self._stop: threading.Event | None = None
        self._thread: threading.Thread | None = None

    def __enter__(self) -> "worker_heartbeat":
        if _SINK is not None:
            self._stop = threading.Event()
            self._thread = threading.Thread(target=self._beat, daemon=True)
            self._thread.start()
        return self

    def _beat(self) -> None:
        assert self._stop is not None
        while not self._stop.wait(_HEARTBEAT_S):
            worker_post({"event": "heartbeat", "scenario": self.scenario})

    def __exit__(self, *exc_info: object) -> None:
        if self._stop is not None:
            self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)


# ----------------------------------------------------------------------
# parent side — the monitor
# ----------------------------------------------------------------------
class SweepMonitor:
    """Consume sweep events; keep fleet state; render and/or stream them.

    ``post`` is thread-safe (the pump thread and the runner's own
    cache-hit path both call it).  Event dicts are augmented with ``t``
    (seconds since :meth:`begin`) on receipt; with ``events_path`` set,
    every augmented event is appended to the file as one JSON line.
    """

    def __init__(self, stream: IO[str] | None = None,
                 events_path: str | Path | None = None,
                 render: bool = False, refresh_s: float = 0.2,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.events_path = Path(events_path) if events_path else None
        self.render = render
        self.refresh_s = refresh_s
        self.heartbeat_s = heartbeat_s
        self._events_fh: IO[str] | None = None
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()  # det-ok: DET001 — live-progress wall clock
        self._last_render = 0.0
        self._rendered = False
        # fleet state
        self.total = 0
        self.completed = 0
        self.cache_hits = 0
        self.executed = 0
        self.errors = 0
        self.events_seen = 0
        self.workers: dict[int, str] = {}
        # Running sum/count (not a per-run list): the fold and the
        # snapshot both stay O(1) at campaign scale.
        self._wall_sum = 0.0
        self._wall_n = 0

    # -- lifecycle -----------------------------------------------------
    def begin(self, total: int) -> None:
        """Reset the clock and announce the sweep size."""
        self._t0 = time.perf_counter()  # det-ok: DET001 — live-progress wall clock
        self.total = total
        self.post({"event": "sweep_start", "total": total})

    def finish(self, report: dict) -> None:
        """Emit the closing event and release the events file."""
        self.post({"event": "sweep_end",
                   "count": report.get("count"),
                   "cache_hits": report.get("cache_hits"),
                   "executed": report.get("executed"),
                   "errors": len(report.get("errors", ())),
                   "wall_s": report.get("wall_s")})
        with self._lock:
            if self._rendered:
                self.stream.write("\n")
                self.stream.flush()
                self._rendered = False
            if self._events_fh is not None:
                self._events_fh.close()
                self._events_fh = None

    # -- event intake --------------------------------------------------
    def post(self, event: dict) -> None:
        """Stamp, record, and fold one event into the fleet state."""
        with self._lock:
            event = dict(event, t=round(time.perf_counter() - self._t0, 3))  # det-ok: DET001 — live-progress wall clock
            self.events_seen += 1
            kind = event.get("event")
            worker = event.get("worker")
            if kind == "start" and worker is not None:
                self.workers[worker] = str(event.get("scenario"))
            elif kind == "heartbeat" and worker is not None:
                self.workers[worker] = str(event.get("scenario"))
            elif kind == "finish":
                self.completed += 1
                self.executed += 1
                if worker is not None:
                    self.workers.pop(worker, None)
                if event.get("error"):
                    self.errors += 1
                wall = event.get("wall_s")
                if isinstance(wall, (int, float)):
                    self._wall_sum += float(wall)
                    self._wall_n += 1
            elif kind == "cache_hit":
                self.completed += 1
                self.cache_hits += 1
            if self._events_fh is None and self.events_path is not None:
                self.events_path.parent.mkdir(parents=True, exist_ok=True)
                self._events_fh = open(self.events_path, "w")
            if self._events_fh is not None:
                self._events_fh.write(json.dumps(event, sort_keys=True) + "\n")
                self._events_fh.flush()
            # Only the closing event forces a redraw past the rate
            # limiter: finish/cache_hit land thousands of times in a
            # campaign, and forcing each one turns the limiter off
            # exactly when it matters most.
            self._maybe_render(force=kind == "sweep_end")

    # -- rendering -----------------------------------------------------
    def snapshot(self) -> dict:
        """The current fleet state as plain data (what the line shows)."""
        elapsed = time.perf_counter() - self._t0  # det-ok: DET001 — live-progress wall clock
        rate = self.completed / elapsed if elapsed > 0 else 0.0
        remaining = max(self.total - self.completed, 0)
        mean_wall = self._wall_sum / self._wall_n if self._wall_n else None
        slots = max(len(self.workers), 1)
        eta = (remaining * mean_wall / slots
               if mean_wall is not None and remaining else
               (remaining / rate if rate > 0 else None))
        return {
            "completed": self.completed,
            "total": self.total,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "errors": self.errors,
            "elapsed_s": round(elapsed, 3),
            "runs_per_s": round(rate, 3),
            "warm_rate": (round(self.cache_hits / self.completed, 3)
                          if self.completed else 0.0),
            "eta_s": round(eta, 1) if eta is not None else None,
            "workers": dict(sorted(self.workers.items())),
        }

    def status_line(self) -> str:
        """One-line fleet status (what ``--progress`` renders)."""
        s = self.snapshot()
        parts = [f"sweep {s['completed']}/{s['total']}"]
        if s["cache_hits"]:
            parts.append(f"{s['cache_hits']} warm")
        if s["errors"]:
            parts.append(f"{s['errors']} errors")
        parts.append(f"{s['runs_per_s']:.1f}/s")
        if s["eta_s"] is not None:
            parts.append(f"eta {s['eta_s']:.0f}s")
        busy = " ".join(f"[{pid}]{name}" for pid, name in s["workers"].items())
        if busy:
            parts.append(busy)
        return " · ".join(parts)

    def _maybe_render(self, force: bool = False) -> None:
        # caller holds the lock
        if not self.render:
            return
        now = time.perf_counter()  # det-ok: DET001 — live-progress wall clock
        if not force and now - self._last_render < self.refresh_s:
            return
        self._last_render = now
        width = max(shutil.get_terminal_size((100, 24)).columns - 1, 20)
        line = self.status_line()[:width]
        self.stream.write("\r" + line.ljust(width))
        self.stream.flush()
        self._rendered = True
