"""The gateway repository — the real-time database of Fig. 4/5.

"The virtual gateway ... dissects each message into convertible
elements and stores these convertible elements in a real-time database
denoted as the gateway repository" (Sec. IV).  Storage honours the
information semantics of each element (Fig. 5):

* **state** elements live in a state variable that is overwritten on
  every arrival (*update in place*), carrying two meta attributes: the
  static temporal-accuracy interval ``d_acc`` and the dynamic time of
  the last update ``t_update``.  A stored real-time image is
  *temporally accurate* while ``t_now < t_update + d_acc`` — note the
  paper's Eq. (1) prints the inequality inverted
  (``t_update + d_acc < t_now``), which would declare every *fresh*
  image inaccurate; we implement the evidently intended direction and
  record the deviation here.
* **event** elements live in a bounded queue and are consumed
  *exactly once* (relative values must each be applied once to keep
  sender/receiver state synchronization); queue sizes come from the
  interarrival/service-time relationship (Sec. IV).

Each element also carries the boolean request variable ``b_req``
(Sec. IV-A): the side sending into an event-triggered virtual network
sets it when a construction found the element missing, and the side
receiving from an event-triggered network may poll :meth:`is_requested`
to pull instances on demand.

``horizon`` implements Eq. (2): the remaining interval during which all
of a message's state elements stay temporally accurate.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from ..errors import GatewayError
from ..messaging import Semantics

__all__ = ["StateEntry", "EventEntry", "GatewayRepository"]


@dataclass
class StateEntry:
    """State variable + meta information (Fig. 5, upper half)."""

    name: str
    d_acc: int | None = None
    value: dict[str, Any] | None = None
    t_update: int | None = None
    b_req: bool = False
    stores: int = 0

    def store(self, fields: dict[str, Any], now: int) -> None:
        self.value = dict(fields)  # update in place
        self.t_update = now
        self.stores += 1

    def temporally_accurate(self, now: int) -> bool:
        """Eq. (1), direction-corrected; None d_acc = never expires."""
        if self.value is None or self.t_update is None:
            return False
        if self.d_acc is None:
            return True
        return now < self.t_update + self.d_acc

    def remaining_validity(self, now: int) -> int | None:
        """ns until the image expires (None if never stored)."""
        if self.t_update is None:
            return None
        if self.d_acc is None:
            return 2**63 - 1
        return self.t_update + self.d_acc - now


@dataclass
class EventEntry:
    """Bounded exactly-once queue (Fig. 5, lower half)."""

    name: str
    depth: int = 16
    queue: deque = field(default_factory=deque)
    b_req: bool = False
    stores: int = 0
    drops: int = 0
    takes: int = 0

    def store(self, fields: dict[str, Any], now: int) -> bool:
        if len(self.queue) >= self.depth:
            self.drops += 1
            return False
        self.queue.append((dict(fields), now))
        self.stores += 1
        return True

    def take(self) -> dict[str, Any] | None:
        if not self.queue:
            return None
        fields, _ = self.queue.popleft()
        self.takes += 1
        return fields

    def __len__(self) -> int:
        return len(self.queue)


class GatewayRepository:
    """All convertible-element buffers of one virtual gateway."""

    def __init__(self) -> None:
        self._state: dict[str, StateEntry] = {}
        self._event: dict[str, EventEntry] = {}
        self._rt_entries: tuple[tuple[StateEntry, ...], tuple[EventEntry, ...]] | None = None
        self.stale_blocks = 0

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------
    def declare(self, name: str, semantics: Semantics,
                d_acc: int | None = None, depth: int = 16) -> None:
        """Create the buffer for one convertible element (idempotent for
        identical declarations, error on semantic conflicts)."""
        self._rt_entries = None
        if semantics is Semantics.STATE:
            if name in self._event:
                raise GatewayError(f"element {name!r} already declared with event semantics")
            existing = self._state.get(name)
            if existing is None:
                self._state[name] = StateEntry(name=name, d_acc=d_acc)
            elif d_acc is not None and existing.d_acc is None:
                existing.d_acc = d_acc
            elif d_acc is not None and existing.d_acc != d_acc:
                raise GatewayError(
                    f"element {name!r} declared with conflicting d_acc "
                    f"({existing.d_acc} vs {d_acc})"
                )
        else:
            if name in self._state:
                raise GatewayError(f"element {name!r} already declared with state semantics")
            existing_e = self._event.get(name)
            if existing_e is None:
                self._event[name] = EventEntry(name=name, depth=depth)
            else:
                existing_e.depth = max(existing_e.depth, depth)

    def declared(self, name: str) -> bool:
        return name in self._state or name in self._event

    def semantics_of(self, name: str) -> Semantics:
        if name in self._state:
            return Semantics.STATE
        if name in self._event:
            return Semantics.EVENT
        raise GatewayError(f"element {name!r} not declared in repository")

    def names(self) -> list[str]:
        return sorted(set(self._state) | set(self._event))

    # ------------------------------------------------------------------
    # storage
    # ------------------------------------------------------------------
    def store(self, name: str, fields: dict[str, Any], now: int) -> bool:
        """Store one element instance; returns False on event overflow."""
        if name in self._state:
            self._state[name].store(fields, now)
            return True
        if name in self._event:
            return self._event[name].store(fields, now)
        raise GatewayError(f"element {name!r} not declared in repository")

    # ------------------------------------------------------------------
    # availability & retrieval (the m! edge semantics of Sec. IV-B.2)
    # ------------------------------------------------------------------
    def available(self, name: str, now: int) -> bool:
        """State: temporally accurate.  Event: non-empty queue."""
        if name in self._state:
            ok = self._state[name].temporally_accurate(now)
            if not ok and self._state[name].value is not None:
                self.stale_blocks += 1
            return ok
        if name in self._event:
            return len(self._event[name]) > 0
        raise GatewayError(f"element {name!r} not declared in repository")

    def all_available(self, names: Iterable[str], now: int,
                      set_requests: bool = True) -> bool:
        """Availability of a whole element set; on failure, sets the
        ``b_req`` request variables of the missing elements (Sec. IV-B.2)."""
        missing = [n for n in names if not self.available(n, now)]
        if missing and set_requests:
            for n in missing:
                self.request(n)
        return not missing

    def take(self, name: str, now: int) -> dict[str, Any] | None:
        """Retrieve for message construction: state elements are copied
        (a state variable serves many constructions), event elements are
        consumed exactly once."""
        if name in self._state:
            entry = self._state[name]
            if not entry.temporally_accurate(now):
                return None
            self.clear_request(name)
            return dict(entry.value or {})
        if name in self._event:
            fields = self._event[name].take()
            if fields is not None:
                self.clear_request(name)
            return fields
        raise GatewayError(f"element {name!r} not declared in repository")

    def peek_state(self, name: str) -> StateEntry:
        try:
            return self._state[name]
        except KeyError:
            raise GatewayError(f"no state element {name!r}") from None

    def peek_event(self, name: str) -> EventEntry:
        try:
            return self._event[name]
        except KeyError:
            raise GatewayError(f"no event element {name!r}") from None

    # ------------------------------------------------------------------
    # request variables (b_req)
    # ------------------------------------------------------------------
    def request(self, name: str) -> None:
        self._entry(name).b_req = True

    def clear_request(self, name: str) -> None:
        self._entry(name).b_req = False

    def is_requested(self, name: str) -> bool:
        return self._entry(name).b_req

    def requested(self) -> list[str]:
        return [n for n in self.names() if self._entry(n).b_req]

    def _entry(self, name: str):
        if name in self._state:
            return self._state[name]
        if name in self._event:
            return self._event[name]
        raise GatewayError(f"element {name!r} not declared in repository")

    # ------------------------------------------------------------------
    # Eq. (2)
    # ------------------------------------------------------------------
    def horizon(self, names: Iterable[str], now: int) -> int | None:
        """Remaining validity of a message's state elements (Eq. 2).

        ``horizon(m) = min over state elements c of (t_update^c + d_acc^c - t_now)``.
        Event elements do not constrain the horizon.  Returns None if
        some state element was never stored (no image to be valid).
        """
        best: int | None = None
        for n in names:
            if n in self._state:
                rem = self._state[n].remaining_validity(now)
                if rem is None:
                    return None
                best = rem if best is None else min(best, rem)
        return best

    # ------------------------------------------------------------------
    # round-template support (consumed by the owning gateway's hooks)
    # ------------------------------------------------------------------
    #: sentinel standing in for a never-stored ``t_update`` in integer
    #: round-template state; a None->timestamp transition then shows up
    #: as an astronomically large delta the gateway's rt_check rejects.
    RT_T_UNSET = -(2**62)

    def _rt_sorted(self) -> tuple[tuple[StateEntry, ...], tuple[EventEntry, ...]]:
        """Entries in sorted-name order, cached between declarations —
        the participant hooks run every round boundary."""
        entries = self._rt_entries
        if entries is None:
            entries = self._rt_entries = (
                tuple(self._state[n] for n in sorted(self._state)),
                tuple(self._event[n] for n in sorted(self._event)),
            )
        return entries

    def rt_counters(self) -> dict[str, int]:
        states, events = self._rt_sorted()
        out = {"stale_blocks": self.stale_blocks}
        for e in states:
            out[f"s.{e.name}.stores"] = e.stores
            out[f"s.{e.name}.t"] = (e.t_update if e.t_update is not None
                                    else self.RT_T_UNSET)
        for ev in events:
            out[f"e.{ev.name}.stores"] = ev.stores
            out[f"e.{ev.name}.takes"] = ev.takes
            out[f"e.{ev.name}.drops"] = ev.drops
        return out

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        states, events = self._rt_sorted()
        self.stale_blocks += delta[prefix + "stale_blocks"] * k
        for e in states:
            e.stores += delta[prefix + f"s.{e.name}.stores"] * k
            dt = delta[prefix + f"s.{e.name}.t"]
            if dt and e.t_update is not None:
                e.t_update += dt * k
        for ev in events:
            ev.stores += delta[prefix + f"e.{ev.name}.stores"] * k
            ev.takes += delta[prefix + f"e.{ev.name}.takes"] * k
            ev.drops += delta[prefix + f"e.{ev.name}.drops"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        """Behavioural repository state at a round boundary (None vetoes).

        A state entry's behaviour is its availability class — never
        stored, never expiring, stale, expiring within the upcoming
        round, or comfortably live — plus the ``b_req`` bit; the exact
        expiry instant is deliberately *not* keyed (it shrinks every
        round, which would defeat template reuse for no behavioural
        reason) and the live->stale flip is bounded by
        :meth:`rt_headroom` instead.  Queued event instances carry
        payload identity that replay cannot extrapolate: veto.
        """
        states, events = self._rt_sorted()
        cells = []
        for e in states:
            if e.value is None or e.t_update is None:
                cls = "unset"
            elif e.d_acc is None:
                cls = "inf"
            else:
                exp_rel = e.t_update + e.d_acc - boundary
                if exp_rel <= 0:
                    cls = "stale"
                elif exp_rel <= round_len:
                    cls = "edge"
                else:
                    cls = "live"
            cells.append((e.name, cls, int(e.b_req)))
        for ev in events:
            if ev.queue:
                return None
            cells.append((ev.name, "event", int(ev.b_req)))
        return tuple(cells)

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        """Whole rounds before any live state image goes stale."""
        best: int | None = None
        for e in self._rt_sorted()[0]:
            if e.t_update is None or e.d_acc is None or e.value is None:
                continue
            exp_rel = e.t_update + e.d_acc - boundary
            if exp_rel <= 0:
                continue  # already stale; no upcoming flip
            h = (exp_rel - 1) // round_len
            if best is None or h < best:
                best = h
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GatewayRepository state={sorted(self._state)} event={sorted(self._event)}>"
