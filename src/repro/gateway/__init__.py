"""Virtual gateways (S9) — the paper's primary contribution.

Gateway repository (Fig. 5, Eq. 1/2), message dissection/construction
(Fig. 4), selective-redirection filters (Sec. III-B.1), timed-automata
error containment (Sec. IV-B.2), and the :class:`VirtualGateway`
orchestrator supporting hidden and visible operation (Sec. III).
"""

from .elements import common_convertible_elements, construct, dissect
from .filters import (
    BudgetFilter,
    Decision,
    FilterChain,
    MessageFilter,
    MinIntervalFilter,
    ValueFilter,
)
from .gateway import GatewaySide, RedirectionRule, VirtualGateway
from .monitor import MessageMonitor
from .repository import EventEntry, GatewayRepository, StateEntry

__all__ = [
    "GatewayRepository",
    "StateEntry",
    "EventEntry",
    "dissect",
    "construct",
    "common_convertible_elements",
    "Decision",
    "MessageFilter",
    "ValueFilter",
    "MinIntervalFilter",
    "BudgetFilter",
    "FilterChain",
    "MessageMonitor",
    "VirtualGateway",
    "GatewaySide",
    "RedirectionRule",
]
