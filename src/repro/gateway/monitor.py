"""Error containment: timed-automata monitors inside the gateway.

Sec. III-B.3 / IV-B.2: "A virtual gateway supports error containment,
when the selective redirection of information is controlled by error
detection mechanisms.  In the DECOS integrated architecture, virtual
gateways perform error containment in the temporal domain based on
temporal specifications at the port and link level."

A :class:`MessageMonitor` binds one deterministic timed automaton from
the link specification to the simulation: receptions are fed through
:meth:`on_message` *before* the instance may be dissected into the
repository; reaching the automaton's error state blocks the message
(the gateway stops forwarding) and triggers the configured error
handling — by default a restart of the gateway service after
``restart_delay``, the example the paper gives for the error state.

Timeout edges (``x >= tmax`` without a reception) are driven by the
simulation clock through the runtime's wake-up computation, so late and
omission failures are detected even though nothing arrives.
"""

from __future__ import annotations

from collections.abc import Callable, MutableMapping
from typing import Any

from ..automata import AutomatonRuntime, TimedAutomaton, Transition
from ..sim import EventPriority, Simulator, TraceCategory

__all__ = ["MessageMonitor"]


class MessageMonitor:
    """One automaton runtime wired to the kernel and a gateway."""

    def __init__(
        self,
        sim: Simulator,
        automaton: TimedAutomaton,
        name: str = "",
        on_error: Callable[["MessageMonitor"], None] | None = None,
        can_send: Callable[[str], bool] | None = None,
        do_send: Callable[[str], None] | None = None,
        has_pending: Callable[[str | None], bool] | None = None,
        functions: dict[str, Callable[..., Any]] | None = None,
    ) -> None:
        self.sim = sim
        self.name = name or f"monitor.{automaton.name}"
        self._on_error_cb = on_error
        self._can_send = can_send or (lambda m: False)
        self._do_send = do_send or (lambda m: None)
        self._has_pending = has_pending or (lambda m: False)
        self._functions = dict(functions or {})
        self.variables: dict[str, Any] = {}
        self.violations = 0
        self.accepted = 0
        self.runtime = AutomatonRuntime(automaton, self)
        self._arm()

    # ------------------------------------------------------------------
    # AutomatonEnvironment protocol
    # ------------------------------------------------------------------
    def now(self) -> int:
        return self.sim.now

    def state_variables(self) -> MutableMapping[str, Any]:
        return self.variables

    def functions(self) -> dict[str, Callable[..., Any]]:
        return self._functions

    def can_send(self, message: str) -> bool:
        return self._can_send(message)

    def do_send(self, message: str) -> None:
        self._do_send(message)

    def has_pending(self, message: str | None) -> bool:
        return self._has_pending(message)

    def schedule_poll(self, at_time: int) -> None:
        at = max(at_time, self.sim.now)
        self.sim.at(at, self._poll, priority=EventPriority.SERVICE,
                    label=f"{self.name}.poll")

    def on_error(self, runtime: AutomatonRuntime, transition: Transition | None) -> None:
        self.violations += 1
        self.sim.metrics.inc("automaton.errors")
        self.sim.trace.record(
            self.sim.now, TraceCategory.AUTOMATON_ERROR, self.name,
            automaton=runtime.automaton.name,
            via=str(transition) if transition else "implicit",
        )
        if self._on_error_cb is not None:
            self._on_error_cb(self)

    # ------------------------------------------------------------------
    # gateway-facing API
    # ------------------------------------------------------------------
    def on_message(self, message: str) -> bool:
        """Feed a reception through the temporal specification.

        Returns True iff the reception conforms (the gateway may then
        dissect the instance); on False the automaton has entered its
        error state and ``on_error`` already fired.
        """
        accepted = self.runtime.on_message(message)
        if accepted:
            self.accepted += 1
            self.sim.metrics.inc("automaton.transitions")
            tr = self.sim.trace
            if tr.wants(TraceCategory.AUTOMATON_TRANSITION):
                tr.record(
                    self.sim.now, TraceCategory.AUTOMATON_TRANSITION, self.name,
                    location=self.runtime.location,
                )
            else:
                tr.tick(TraceCategory.AUTOMATON_TRANSITION)
            self._poll()  # service-completion edges fire immediately
        return accepted

    def restart(self) -> None:
        """The paper's example error handling: restart the service."""
        self.runtime.reset()
        self.sim.trace.record(
            self.sim.now, TraceCategory.GATEWAY_RESTART, self.name,
            automaton=self.runtime.automaton.name,
        )
        self._arm()

    @property
    def in_error(self) -> bool:
        return self.runtime.in_error

    def _poll(self) -> None:
        if not self.runtime.in_error:
            self.runtime.poll()

    def _arm(self) -> None:
        """Schedule the first time-driven wake-up (timeout detection)."""
        nxt = self.runtime.next_wakeup()
        if nxt is not None:
            self.schedule_poll(nxt)
