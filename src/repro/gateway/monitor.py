"""Error containment: timed-automata monitors inside the gateway.

Sec. III-B.3 / IV-B.2: "A virtual gateway supports error containment,
when the selective redirection of information is controlled by error
detection mechanisms.  In the DECOS integrated architecture, virtual
gateways perform error containment in the temporal domain based on
temporal specifications at the port and link level."

A :class:`MessageMonitor` binds one deterministic timed automaton from
the link specification to the simulation: receptions are fed through
:meth:`on_message` *before* the instance may be dissected into the
repository; reaching the automaton's error state blocks the message
(the gateway stops forwarding) and triggers the configured error
handling — by default a restart of the gateway service after
``restart_delay``, the example the paper gives for the error state.

Timeout edges (``x >= tmax`` without a reception) are driven by the
simulation clock through the runtime's wake-up computation, so late and
omission failures are detected even though nothing arrives.
"""

from __future__ import annotations

from collections.abc import Callable, MutableMapping
from typing import Any

from ..automata import AutomatonRuntime, TimedAutomaton, Transition
from ..automata.expr import BinOp, Call, Const, Expr, Neg, Var
from ..sim import EventPriority, Simulator, TraceCategory

__all__ = ["MessageMonitor"]

_CMP_OPS = ("<", "<=", "==", "!=", ">=", ">")


class MessageMonitor:
    """One automaton runtime wired to the kernel and a gateway."""

    def __init__(
        self,
        sim: Simulator,
        automaton: TimedAutomaton,
        name: str = "",
        on_error: Callable[["MessageMonitor"], None] | None = None,
        can_send: Callable[[str], bool] | None = None,
        do_send: Callable[[str], None] | None = None,
        has_pending: Callable[[str | None], bool] | None = None,
        functions: dict[str, Callable[..., Any]] | None = None,
    ) -> None:
        self.sim = sim
        self.name = name or f"monitor.{automaton.name}"
        self._on_error_cb = on_error
        self._can_send = can_send or (lambda m: False)
        self._do_send = do_send or (lambda m: None)
        self._has_pending = has_pending or (lambda m: False)
        self._functions = dict(functions or {})
        self.variables: dict[str, Any] = {}
        self.violations = 0
        self.accepted = 0
        self.runtime = AutomatonRuntime(automaton, self)
        #: per-clock guard cut points (see :meth:`rt_fingerprint`);
        #: None marks an automaton whose guards resist the analysis.
        self._rt_cuts: dict[str, tuple[int, ...]] | None = self._clock_cuts()
        self._arm()

    # ------------------------------------------------------------------
    # AutomatonEnvironment protocol
    # ------------------------------------------------------------------
    def now(self) -> int:
        return self.sim.now

    def state_variables(self) -> MutableMapping[str, Any]:
        return self.variables

    def functions(self) -> dict[str, Callable[..., Any]]:
        return self._functions

    def can_send(self, message: str) -> bool:
        return self._can_send(message)

    def do_send(self, message: str) -> None:
        self._do_send(message)

    def has_pending(self, message: str | None) -> bool:
        return self._has_pending(message)

    def schedule_poll(self, at_time: int) -> None:
        at = max(at_time, self.sim.now)
        self.sim.at(at, self._poll, priority=EventPriority.SERVICE,
                    label=f"{self.name}.poll")

    def on_error(self, runtime: AutomatonRuntime, transition: Transition | None) -> None:
        self.violations += 1
        self.sim.metrics.inc("automaton.errors")
        self.sim.trace.record(
            self.sim.now, TraceCategory.AUTOMATON_ERROR, self.name,
            automaton=runtime.automaton.name,
            via=str(transition) if transition else "implicit",
        )
        if self._on_error_cb is not None:
            self._on_error_cb(self)

    # ------------------------------------------------------------------
    # gateway-facing API
    # ------------------------------------------------------------------
    def on_message(self, message: str) -> bool:
        """Feed a reception through the temporal specification.

        Returns True iff the reception conforms (the gateway may then
        dissect the instance); on False the automaton has entered its
        error state and ``on_error`` already fired.
        """
        accepted = self.runtime.on_message(message)
        if accepted:
            self.accepted += 1
            self.sim.metrics.inc("automaton.transitions")
            tr = self.sim.trace
            if tr.wants(TraceCategory.AUTOMATON_TRANSITION):
                tr.record(
                    self.sim.now, TraceCategory.AUTOMATON_TRANSITION, self.name,
                    location=self.runtime.location,
                )
            else:
                tr.tick(TraceCategory.AUTOMATON_TRANSITION)
            self._poll()  # service-completion edges fire immediately
        return accepted

    def restart(self) -> None:
        """The paper's example error handling: restart the service."""
        self.runtime.reset()
        self.sim.trace.record(
            self.sim.now, TraceCategory.GATEWAY_RESTART, self.name,
            automaton=self.runtime.automaton.name,
        )
        self._arm()

    @property
    def in_error(self) -> bool:
        return self.runtime.in_error

    def _poll(self) -> None:
        if not self.runtime.in_error:
            self.runtime.poll()

    def _arm(self) -> None:
        """Schedule the first time-driven wake-up (timeout detection)."""
        nxt = self.runtime.next_wakeup()
        if nxt is not None:
            self.schedule_poll(nxt)

    # ------------------------------------------------------------------
    # round-template support (consumed by the owning gateway's hooks)
    # ------------------------------------------------------------------
    def _clock_cuts(self) -> dict[str, tuple[int, ...]] | None:
        """Per-clock sorted guard cut points, or None if any guard resists
        the analysis (time-dependent built-ins, clocks in compound terms).

        Guard outcomes depend on a clock only through comparisons against
        statically evaluable constants, so the clock's *behavioural*
        state is the cell of the partition its valuation falls into —
        that cell, not the raw age, is what a round-template fingerprint
        must capture (a raw age grows every round and would make an idle
        monitor unreplayable for no behavioural reason).
        """
        auto = self.runtime.automaton
        clocks = set(auto.clocks)
        params = auto.parameters
        cuts: dict[str, set[int]] = {c: set() for c in auto.clocks}
        for t in auto.transitions:
            for term in t.guard.terms:
                if not self._collect_cuts(term, clocks, params, cuts):
                    return None
        return {c: tuple(sorted(cuts[c])) for c in auto.clocks}

    @classmethod
    def _collect_cuts(cls, term: Expr, clocks: set[str],
                      params: dict[str, int | float],
                      cuts: dict[str, set[int]]) -> bool:
        """Fold one guard term into ``cuts``; False = analysis defeat."""
        if isinstance(term, BinOp) and term.op in _CMP_OPS:
            for side, other in ((term.lhs, term.rhs), (term.rhs, term.lhs)):
                if isinstance(side, Var) and side.name in clocks:
                    v = cls._static_eval(other, params)
                    if v is None:
                        return False
                    if isinstance(v, float):
                        if not v.is_integer():
                            return False
                        v = int(v)
                    # A comparison flips where the integer valuation
                    # crosses the constant: `<`/`>=` cut at v, `<=`/`>`
                    # at v+1, equality needs both edges of the point.
                    if term.op in ("<", ">="):
                        cuts[side.name].add(v)
                    elif term.op in ("<=", ">"):
                        cuts[side.name].add(v + 1)
                    else:
                        cuts[side.name].update((v, v + 1))
                    return True
        if cls._mentions_time(term, clocks):
            return False
        return True  # pure state-variable term: values live in the fp

    @staticmethod
    def _mentions_time(term: Expr, clocks: set[str]) -> bool:
        if isinstance(term, Var):
            return term.name in clocks or term.name == "t_now"
        if isinstance(term, BinOp):
            return (MessageMonitor._mentions_time(term.lhs, clocks)
                    or MessageMonitor._mentions_time(term.rhs, clocks))
        if isinstance(term, Neg):
            return MessageMonitor._mentions_time(term.operand, clocks)
        if isinstance(term, Call):
            # horizon(m) and friends read time-varying environment state
            # the partition analysis cannot see: treat as time-dependent.
            return True
        return False

    @staticmethod
    def _static_eval(expr: Expr, params: dict[str, int | float]) -> int | float | None:
        if isinstance(expr, Const):
            v = expr.value
            return v if isinstance(v, (int, float)) else None
        if isinstance(expr, Var):
            return params.get(expr.name)
        if isinstance(expr, Neg):
            v = MessageMonitor._static_eval(expr.operand, params)
            return None if v is None else -v
        if isinstance(expr, BinOp) and expr.op in ("+", "-", "*", "/"):
            lhs = MessageMonitor._static_eval(expr.lhs, params)
            rhs = MessageMonitor._static_eval(expr.rhs, params)
            if lhs is None or rhs is None:
                return None
            return {"+": lhs + rhs, "-": lhs - rhs,
                    "*": lhs * rhs, "/": lhs / rhs if rhs else None}[expr.op]
        return None

    def rt_counters(self) -> dict[str, int]:
        """This monitor's share of the gateway's ``rt_state``."""
        rt = self.runtime
        out = {
            "accepted": self.accepted,
            "violations": self.violations,
            "transitions": rt.transitions_taken,
            "errors": rt.error_count,
        }
        for c in sorted(rt._clock_resets):
            out[f"clk.{c}"] = rt._clock_resets[c]
        return out

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        rt = self.runtime
        self.accepted += delta[prefix + "accepted"] * k
        self.violations += delta[prefix + "violations"] * k
        rt.transitions_taken += delta[prefix + "transitions"] * k
        rt.error_count += delta[prefix + "errors"] * k
        for c in sorted(rt._clock_resets):
            rt._clock_resets[c] += delta[prefix + "clk." + c] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        """Behavioural state at a round boundary, or None to veto.

        Clock valuations enter as partition-cell indices over the guard
        cut points; a cut falling *inside* the upcoming round means a
        guard outcome flips mid-round, so that boundary runs live.
        """
        cuts = self._rt_cuts
        if cuts is None or self.variables:
            return None
        rt = self.runtime
        cells = []
        for c in sorted(rt._clock_resets):
            age = boundary - rt._clock_resets[c]
            table = cuts.get(c, ())
            idx = 0
            for cut in table:
                if age >= cut:
                    idx += 1
                elif cut <= age + round_len:
                    return None  # flips mid-round
                else:
                    break
            cells.append((c, idx))
        return (rt.location, tuple(cells))

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        """Whole rounds before any clock crosses its next guard cut."""
        cuts = self._rt_cuts
        if cuts is None:
            return 0
        best: int | None = None
        rt = self.runtime
        for c in sorted(rt._clock_resets):
            age = boundary - rt._clock_resets[c]
            for cut in cuts.get(c, ()):
                if age < cut:
                    h = (cut - age - 1) // round_len
                    if best is None or h < best:
                        best = h
                    break
        return best
