"""Selective-redirection filters (Sec. III-B.1).

"Selective redirection occurs when filtering mechanisms are applied in
order to decide on whether information is forwarded or blocked by a
gateway.  This decision requires a filtering specification in the
temporal and value domain that can be evaluated on the interface state
of the gateway."

* **Value domain** — :class:`ValueFilter` evaluates a guard expression
  (same language as automata guards) over the fields of one element of
  the arriving instance, plus control information (the message name).
* **Temporal domain** — :class:`MinIntervalFilter` monitors the
  temporal pattern: at most one forwarded instance per ``min_interval``
  (down-sampling an over-eager producer); :class:`BudgetFilter` bounds
  forwarded instances per sliding window (rate policing).

Filters compose in a :class:`FilterChain`; the first DENY wins.  Every
decision is counted so E4 can report the bandwidth the gateway saved.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Protocol

from ..automata.expr import EvalContext, parse_expr
from ..errors import GatewayError
from ..messaging import MessageInstance

__all__ = [
    "Decision",
    "MessageFilter",
    "ValueFilter",
    "MinIntervalFilter",
    "BudgetFilter",
    "FilterChain",
]


class Decision(str, Enum):
    """Outcome of one filter evaluation."""

    FORWARD = "forward"
    BLOCK = "block"


class MessageFilter(Protocol):
    """One filtering rule evaluated on the gateway's interface state."""

    def decide(self, message: str, instance: MessageInstance, now: int) -> Decision:
        ...


@dataclass
class ValueFilter:
    """Forward only instances whose element fields satisfy a guard.

    ``expression`` is evaluated with the fields of ``element`` in scope
    plus ``message_name`` (control information); e.g.
    ``ValueFilter("Value", "v >= 0")`` blocks negative readings, and
    ``ValueFilter("Change", "delta != 0")`` blocks no-op events.
    """

    element: str
    expression: str

    def __post_init__(self) -> None:
        self._expr = parse_expr(self.expression)

    def decide(self, message: str, instance: MessageInstance, now: int) -> Decision:
        if not instance.mtype.has_element(self.element):
            return Decision.FORWARD  # rule does not apply to this message
        fields = dict(instance.values[self.element])
        fields.setdefault("message_name", message)
        ctx = EvalContext(fields, {"t_now": now}, bareword_fallback=True)
        try:
            ok = bool(self._expr.evaluate(ctx))
        except Exception as exc:
            raise GatewayError(
                f"value filter {self.expression!r} failed on {message!r}: {exc}"
            ) from exc
        return Decision.FORWARD if ok else Decision.BLOCK


@dataclass
class MinIntervalFilter:
    """Down-sampling: at most one forward per ``min_interval`` ns."""

    min_interval: int
    _last_forward: int | None = None

    def __post_init__(self) -> None:
        if self.min_interval <= 0:
            raise GatewayError("min_interval must be positive")

    def decide(self, message: str, instance: MessageInstance, now: int) -> Decision:
        if self._last_forward is not None and now - self._last_forward < self.min_interval:
            return Decision.BLOCK
        self._last_forward = now
        return Decision.FORWARD


@dataclass
class BudgetFilter:
    """Rate policing: at most ``budget`` forwards per ``window`` ns."""

    budget: int
    window: int

    def __post_init__(self) -> None:
        if self.budget < 1 or self.window <= 0:
            raise GatewayError("budget must be >= 1 and window positive")
        self._history: deque[int] = deque()

    def decide(self, message: str, instance: MessageInstance, now: int) -> Decision:
        while self._history and now - self._history[0] >= self.window:
            self._history.popleft()
        if len(self._history) >= self.budget:
            return Decision.BLOCK
        self._history.append(now)
        return Decision.FORWARD


class FilterChain:
    """AND-composition of filters; first BLOCK wins."""

    def __init__(self, *filters: MessageFilter) -> None:
        self._filters: list[MessageFilter] = list(filters)
        self.forwarded = 0
        self.blocked = 0

    def add(self, f: MessageFilter) -> "FilterChain":
        self._filters.append(f)
        return self

    def decide(self, message: str, instance: MessageInstance, now: int) -> Decision:
        for f in self._filters:
            if f.decide(message, instance, now) is Decision.BLOCK:
                self.blocked += 1
                return Decision.BLOCK
        self.forwarded += 1
        return Decision.FORWARD

    def __len__(self) -> int:
        return len(self._filters)
