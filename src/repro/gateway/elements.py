"""Message dissection and construction (the two halves of Fig. 4).

Dissection splits a received message instance into its convertible
elements — "a part of a message that needs to be subdivided no further
by the virtual gateway" (Sec. IV-A) — discarding the elements that are
only of local interest to the source virtual network.

Construction is the inverse: given a destination message type and a
supply of element values (the gateway repository plus conversion
results), recombine them into a full instance.  "The messages at the
two virtual networks need not consist of the exact same set of
convertible elements" — construction only demands the *destination's*
convertible elements; everything else (keys, local elements) takes the
destination type's static/default values.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from ..errors import CodecError, GatewayError
from ..messaging import MessageInstance, MessageType
from ..messaging.datatypes import (
    BoolType,
    FieldType,
    FloatType,
    IntType,
    StringType,
    TimestampType,
    UIntType,
)

__all__ = ["dissect", "construct", "common_convertible_elements", "coerce_field"]


def coerce_field(value: Any, ftype: FieldType) -> Any:
    """Generic syntax transformation between elementary types (Sec. IV).

    "Generic transformation rules are possible due to widely-used
    standards for data types": the gateway converts a source field value
    into the destination field's type where a standard rule exists —
    numeric widening/narrowing (with saturation at the destination
    range), float↔int (rounding), bool↔int, and stringification.
    Raises :class:`CodecError` when no rule applies.
    """
    try:
        return ftype.validate(value)
    except CodecError:
        pass
    if isinstance(ftype, (IntType, UIntType, TimestampType)):
        if isinstance(value, bool):
            return ftype.validate(1 if value else 0)
        if isinstance(value, (int, float)):
            v = round(value)
            if isinstance(ftype, IntType):
                lo, hi = -(1 << (ftype.length - 1)), (1 << (ftype.length - 1)) - 1
            else:
                lo, hi = 0, (1 << ftype.length) - 1
            return ftype.validate(max(lo, min(hi, v)))  # saturate
    if isinstance(ftype, FloatType) and isinstance(value, (int, float, bool)):
        return ftype.validate(float(value))
    if isinstance(ftype, BoolType) and isinstance(value, (int, float)):
        return ftype.validate(bool(value))
    if isinstance(ftype, StringType):
        text = str(value)
        return ftype.validate(text[: ftype.length])
    raise CodecError(
        f"no generic transformation from {type(value).__name__} to "
        f"{type(ftype).__name__}"
    )


def dissect(instance: MessageInstance) -> dict[str, dict[str, Any]]:
    """Extract ``{element name: field values}`` for convertible elements."""
    out: dict[str, dict[str, Any]] = {}
    for element in instance.mtype.convertible_elements():
        out[element.name] = dict(instance.values[element.name])
    return out


def construct(
    mtype: MessageType,
    supply: Callable[[str], Mapping[str, Any] | None],
    coerce: bool = True,
) -> MessageInstance | None:
    """Build an instance of ``mtype`` from a per-element supplier.

    ``supply(element_name)`` must return the field values for a
    convertible element or None if unavailable; returning None aborts
    the construction (the caller is responsible for having *checked*
    availability first — aborting after event elements were consumed
    would lose them, so the gateway always checks, then constructs).

    Field values the destination type does not declare are ignored;
    declared fields missing from the supply keep their defaults.  This
    is the "recombination ... into the syntactic structure of messages
    for the second virtual network" of Sec. IV-B.
    """
    values: dict[str, dict[str, Any]] = {}
    for element in mtype.convertible_elements():
        fields = supply(element.name)
        if fields is None:
            return None
        by_name = {f.name: f for f in element.fields}
        filtered: dict[str, Any] = {}
        for k, v in fields.items():
            fdef = by_name.get(k)
            if fdef is None:
                continue  # source-only field, not part of the dst syntax
            if coerce:
                try:
                    v = coerce_field(v, fdef.ftype)
                except CodecError as exc:
                    raise GatewayError(
                        f"cannot construct {mtype.name!r}: field "
                        f"{element.name}.{k} — {exc}"
                    ) from exc
            filtered[k] = v
        values[element.name] = filtered
    try:
        return mtype.instance(values)
    except Exception as exc:
        raise GatewayError(
            f"cannot construct {mtype.name!r} from repository contents: {exc}"
        ) from exc


def common_convertible_elements(a: MessageType, b: MessageType) -> set[str]:
    """Element names convertible in both types (the redirection overlap).

    "Redirection of information through the gateway occurs when messages
    of the two virtual networks ... share common convertible elements"
    (Sec. IV-A).
    """
    return {e.name for e in a.convertible_elements()} & {
        e.name for e in b.convertible_elements()
    }
