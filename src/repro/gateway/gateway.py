"""The virtual gateway — the paper's primary contribution (Sec. III/IV).

A :class:`VirtualGateway` interconnects the virtual networks of two
DASs by selectively redirecting information contained in messages.  Its
operation follows Fig. 4 exactly:

1. **Reception** — the gateway holds a link (set of ports) to each
   virtual network.  Arriving instances of exported messages are
   *tapped* at the architecture level on the gateway's host component.
2. **Filtering** — selective redirection: value- and time-domain
   filters decide forward/block (Sec. III-B.1).
3. **Error containment** — the link specification's deterministic timed
   automata monitor the temporal pattern; a violation (too-early, late,
   omission) drives the automaton into its error state, the message is
   blocked, and the gateway service restarts after ``restart_delay``
   (Sec. IV-B.2).
4. **Dissection** — accepted instances are dissected into convertible
   elements and stored in the :class:`~repro.gateway.repository.GatewayRepository`
   (update-in-place state variables with ``d_acc``/``t_update``;
   exactly-once event queues).  Transfer-semantics rules convert
   between event and state semantics on the way (Fig. 6's
   ``MovementEvent`` → ``MovementState``).
5. **Construction** — outgoing messages for the other virtual network
   are recombined from repository elements under the *destination's*
   syntactic specification and message name (naming resolution): for a
   TT destination the gateway acts as the message's producer and is
   sampled at the network's a-priori instants; for an ET destination a
   construction is attempted whenever a relevant element arrives
   (missing elements set their ``b_req`` request variables and the
   construction re-fires when they show up).

**Hidden vs visible** (Sec. III): a hidden gateway runs at the
architecture level — taps fire immediately at SERVICE priority.  Pass a
``partition`` to get a *visible* gateway: every reception defers into
the gateway job's next partition window, adding the application-level
latency that E5 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING, Any

from ..errors import GatewayError
from ..messaging import MessageInstance, MessageType, NameMapping, Semantics
from ..sim import EventPriority, FlowStage, Process, Simulator, TraceCategory
from ..spec import LinkSpec, TransferSemantics
from ..spec.transfer import ConversionState, DerivedElement
from ..vn import ETVirtualNetwork, TTVirtualNetwork, VirtualNetworkBase
from .elements import common_convertible_elements, construct, dissect
from .filters import Decision, FilterChain, MessageFilter
from .monitor import MessageMonitor
from .repository import GatewayRepository

if TYPE_CHECKING:  # pragma: no cover
    from ..platform.partition import Partition

__all__ = ["GatewaySide", "RedirectionRule", "VirtualGateway"]


@dataclass
class GatewaySide:
    """One of the gateway's two attachments (VN + link specification)."""

    vn: VirtualNetworkBase
    link: LinkSpec

    @property
    def das(self) -> str:
        return self.vn.das


@dataclass
class RedirectionRule:
    """Redirect ``src`` (on ``src_side``) to ``dst`` on the other side."""

    src: str
    dst: str
    src_side: str  # "a" or "b"
    filters: FilterChain = dc_field(default_factory=FilterChain)
    #: Sec. IV-A: "The gateway side receiving messages from an event-
    #: triggered virtual network can initiate receptions conditionally,
    #: based on the value of the request variable."  With conditional
    #: import on, an arriving instance is stored only while some element
    #: it supplies has its ``b_req`` set (a consumer asked for it).
    conditional_import: bool = False
    #: resolved during start():
    src_type: MessageType | None = None
    dst_type: MessageType | None = None
    needed_elements: tuple[str, ...] = ()
    forwarded: int = 0
    blocked_filter: int = 0
    blocked_monitor: int = 0
    blocked_halted: int = 0
    skipped_unrequested: int = 0
    #: flow id of the last instance stored via this rule — becomes the
    #: ``parent`` of the next constructed (child) flow, stitching
    #: cross-VN journeys across the store/construct boundary.
    last_flow: int | None = None


class VirtualGateway(Process):
    """Hidden (or, with a partition, visible) virtual gateway."""

    priority = EventPriority.SERVICE

    def __init__(
        self,
        sim: Simulator,
        name: str,
        host: str,
        side_a: GatewaySide,
        side_b: GatewaySide,
        restart_delay: int = 10_000_000,
        partition: "Partition | None" = None,
    ) -> None:
        super().__init__(sim, f"gateway.{name}")
        self.host = host
        self.sides: dict[str, GatewaySide] = {"a": side_a, "b": side_b}
        self.restart_delay = restart_delay
        self.partition = partition
        self.repository = GatewayRepository()
        self.rules: list[RedirectionRule] = []
        self.name_mapping = NameMapping(side_a.vn.namespace, side_b.vn.namespace)
        self._monitors: dict[tuple[str, str], MessageMonitor] = {}
        self._conversions: list[tuple[DerivedElement, ConversionState, str]] = []
        self._halted: set[tuple[str, str]] = set()
        self._rt_mons: tuple[tuple[tuple[str, str], str, MessageMonitor], ...] | None = None
        self._rt_halted_fp: tuple[tuple[str, str], ...] = ()
        self._started_rules = False
        # statistics ----------------------------------------------------
        self.instances_received = 0
        self.instances_forwarded = 0
        self.instances_blocked = 0
        self.conversion_applications = 0
        self.restarts = 0
        m = sim.metrics
        self._m_received = m.counter("gateway.receptions")
        self._m_forwarded = m.counter("gateway.forwards")
        self._m_blocked = m.counter("gateway.blocks")
        self._m_restarts = m.counter("gateway.restarts")
        sim.register_checkable(self)
        # Gateway redirection reacts to message arrivals — a blocking
        # interleaving source under strict round templates, but a
        # fingerprinted dynamic participant in quasi-periodic mode:
        # steady-state periodic redirection repeats at the hyperperiod,
        # and the fingerprint (monitor locations and clock cells,
        # repository availability classes, halted rules) forces any
        # transient — restarts, expiring images, queued events — to run
        # live.
        sim.round_template.register_dynamic(self.name, self)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    def add_rule(
        self,
        src: str,
        dst: str | None = None,
        direction: str = "a_to_b",
        filters: FilterChain | None = None,
        conditional_import: bool = False,
    ) -> RedirectionRule:
        """Declare one selective redirection; ``dst`` defaults to ``src``
        (coherent naming); different names realize renaming."""
        if direction not in ("a_to_b", "b_to_a"):
            raise GatewayError(f"direction must be a_to_b or b_to_a, got {direction!r}")
        if self._started_rules:
            raise GatewayError("rules must be added before start()")
        rule = RedirectionRule(
            src=src,
            dst=dst if dst is not None else src,
            src_side="a" if direction == "a_to_b" else "b",
            filters=filters if filters is not None else FilterChain(),
            conditional_import=conditional_import,
        )
        self.rules.append(rule)
        return rule

    def add_filter(self, rule: RedirectionRule, f: MessageFilter) -> None:
        rule.filters.add(f)

    # ------------------------------------------------------------------
    # startup: resolve rules, declare repository, wire taps & producers
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        if not self.rules:
            raise GatewayError(f"gateway {self.name!r} has no redirection rules")
        self._started_rules = True
        for rule in self.rules:
            self._resolve_rule(rule)
        self._setup_conversions()
        for rule in self.rules:
            self._wire_rule(rule)
        self._setup_monitors()

    def _resolve_rule(self, rule: RedirectionRule) -> None:
        src_side = self.sides[rule.src_side]
        dst_side = self.sides[self._other(rule.src_side)]
        rule.src_type = src_side.vn.namespace.lookup(rule.src)
        rule.dst_type = dst_side.vn.namespace.lookup(rule.dst)
        rule.needed_elements = tuple(
            e.name for e in rule.dst_type.convertible_elements()
        )
        if not rule.needed_elements:
            raise GatewayError(
                f"destination message {rule.dst!r} has no convertible elements"
            )
        # Naming-resolution table (Sec. III-A.1).
        if rule.src_side == "a":
            self.name_mapping.bind(rule.src, rule.dst)
        else:
            self.name_mapping.bind(rule.dst, rule.src)
        # Declare the source's convertible elements.
        for element in rule.src_type.convertible_elements():
            self.repository.declare(
                element.name, element.semantics,
                d_acc=self._d_acc_for(rule, element.name),
                depth=self._depth_for(rule, element.name),
            )
        # Declare destination elements not directly supplied (derived).
        for element in rule.dst_type.convertible_elements():
            self.repository.declare(
                element.name, element.semantics,
                d_acc=self._d_acc_for(rule, element.name),
                depth=self._depth_for(rule, element.name),
            )
        if not (
            common_convertible_elements(rule.src_type, rule.dst_type)
            or self._transfer_bridges(rule)
        ):
            raise GatewayError(
                f"rule {rule.src!r}->{rule.dst!r}: the message types share no "
                "convertible elements and no transfer-semantics rule bridges them"
            )

    def _transfer_bridges(self, rule: RedirectionRule) -> bool:
        assert rule.src_type is not None and rule.dst_type is not None
        src_names = {e.name for e in rule.src_type.convertible_elements()}
        for ts in self._all_transfer():
            for name in ts.names():
                de = ts.derived(name)
                if rule.dst_type.has_element(name):
                    source = de.source_element
                    if source in src_names:
                        return True
                    if source is None and ts.sources_for(name) & {
                        f.name for e in rule.src_type.convertible_elements() for f in e.fields
                    }:
                        return True
        return False

    def _d_acc_for(self, rule: RedirectionRule, element: str) -> int | None:
        """Temporal accuracy from whichever link spec declares the port."""
        for side_key in (rule.src_side, self._other(rule.src_side)):
            link = self.sides[side_key].link
            for port in link.ports:
                if port.message_type.has_element(element) and port.temporal_accuracy:
                    return port.temporal_accuracy
        return None

    def _depth_for(self, rule: RedirectionRule, element: str) -> int:
        for side_key in (rule.src_side, self._other(rule.src_side)):
            link = self.sides[side_key].link
            for port in link.ports:
                if port.message_type.has_element(element) and port.semantics is Semantics.EVENT:
                    return max(port.queue_depth, 1)
        return 16

    def _all_transfer(self) -> list[TransferSemantics]:
        return [side.link.transfer for side in self.sides.values()]

    def _setup_conversions(self) -> None:
        """Instantiate conversion state for derived elements the rules need."""
        needed: set[str] = set()
        direct: set[str] = set()
        for rule in self.rules:
            assert rule.src_type is not None
            needed.update(rule.needed_elements)
            direct.update(e.name for e in rule.src_type.convertible_elements())
        for ts in self._all_transfer():
            for name in ts.names():
                if name not in needed or name in direct:
                    continue
                de = ts.derived(name)
                source = de.source_element
                if source is None:
                    source = self._infer_source(ts, name)
                self._conversions.append((de, ConversionState(de), source))
                semantics = de.fields[0].semantics
                if not self.repository.declared(name):
                    self.repository.declare(name, semantics)

    def _infer_source(self, ts: TransferSemantics, derived_name: str) -> str:
        wanted = ts.sources_for(derived_name)
        for rule in self.rules:
            assert rule.src_type is not None
            for element in rule.src_type.convertible_elements():
                if wanted <= {f.name for f in element.fields}:
                    return element.name
        raise GatewayError(
            f"cannot infer the source element of derived element {derived_name!r}; "
            "set source= in the transfer semantics"
        )

    # ------------------------------------------------------------------
    def _wire_rule(self, rule: RedirectionRule) -> None:
        src_side = self.sides[rule.src_side]
        dst_side = self.sides[self._other(rule.src_side)]
        src_side.vn.tap(
            rule.src, self.host,
            lambda message, instance, arrival, r=rule: self._receive(r, instance, arrival),
        )
        dst_vn = dst_side.vn
        if isinstance(dst_vn, TTVirtualNetwork):
            dst_vn.attach_gateway_producer(
                rule.dst, self.host,
                provider=lambda r=rule: self._construct(r),
            )
            timing = None
            if dst_side.link.has_port(rule.dst):
                timing = dst_side.link.port(rule.dst).tt
            if timing is None:
                raise GatewayError(
                    f"TT destination {rule.dst!r} needs a TT port spec in the "
                    f"link specification of DAS {dst_side.das!r}"
                )
            dst_vn.set_timing(rule.dst, timing)
        elif isinstance(dst_vn, ETVirtualNetwork):
            priority = 100
            if dst_side.link.has_port(rule.dst):
                priority = dst_side.link.port(rule.dst).priority
            dst_vn.attach_gateway_producer(rule.dst, self.host, priority=priority)
        else:  # pragma: no cover - only two paradigms exist
            raise GatewayError(f"unsupported VN type {type(dst_vn).__name__}")

    def _setup_monitors(self) -> None:
        for rule in self.rules:
            link = self.sides[rule.src_side].link
            automaton = link.automaton_for_message(rule.src)
            if automaton is None or rule.src not in automaton.receive_messages():
                continue
            key = (rule.src_side, rule.src)
            if key in self._monitors:
                continue
            self._monitors[key] = MessageMonitor(
                self.sim, automaton,
                name=f"{self.name}.monitor.{rule.src}",
                on_error=lambda m, k=key: self._on_monitor_error(k, m),
                can_send=lambda msg: self._can_send_message(msg),
                do_send=lambda msg: self._send_message(msg),
                functions={
                    "horizon": self._fn_horizon,
                    "requ": self._fn_requ,
                },
            )
            # Timeout polls are legitimate in-round events for the
            # round-template engine (the ``{gateway}.restart`` label
            # stays unregistered on purpose: restart rounds run live).
            self.sim.round_template.register_labels(
                {f"{self.name}.monitor.{rule.src}.poll"}
            )

    # ------------------------------------------------------------------
    # reception pipeline
    # ------------------------------------------------------------------
    def _receive(self, rule: RedirectionRule, instance: MessageInstance, arrival: int) -> None:
        if self.partition is not None:
            # Visible gateway: processing waits for the gateway job's
            # partition window (application level, Sec. III).
            self.partition.defer(lambda: self._process(rule, instance, arrival))
        else:
            self._process(rule, instance, arrival)

    def _flow_of(self, instance: MessageInstance) -> int | None:
        """The instance's flow id, when flow tracing is on (else None)."""
        if not self.sim.flows.enabled:
            return None
        return instance.meta.get("flow")

    def _flow_block(self, fid: int | None, message: str, reason: str) -> None:
        if fid is not None:
            self.sim.flows.hop(self.sim.now, self.name, fid,
                               FlowStage.GATEWAY_BLOCK,
                               message=message, reason=reason)

    def _process(self, rule: RedirectionRule, instance: MessageInstance, arrival: int) -> None:
        self.instances_received += 1
        self._m_received.inc()
        tr = self.sim.trace
        fid = self._flow_of(instance)
        if fid is not None:
            # arrival < now for visible gateways (partition defer): the
            # difference is the application-level reception latency.
            self.sim.flows.hop(self.sim.now, self.name, fid,
                               FlowStage.GATEWAY_RX,
                               message=rule.src, arrival=arrival)
        key = (rule.src_side, rule.src)
        if key in self._halted:
            rule.blocked_halted += 1
            self.instances_blocked += 1
            self._m_blocked.inc()
            if tr.wants(TraceCategory.GATEWAY_BLOCK):
                self.trace(TraceCategory.GATEWAY_BLOCK, message=rule.src, reason="halted")
            else:
                tr.tick(TraceCategory.GATEWAY_BLOCK)
            self._flow_block(fid, rule.src, "halted")
            return
        if rule.conditional_import and not self._import_requested(rule):
            # No consumer has requested any element this rule supplies:
            # skip the reception (resource saving, not an error).
            rule.skipped_unrequested += 1
            self._flow_block(fid, rule.src, "unrequested")
            return
        if rule.filters.decide(rule.src, instance, self.sim.now) is Decision.BLOCK:
            rule.blocked_filter += 1
            self.instances_blocked += 1
            self._m_blocked.inc()
            if tr.wants(TraceCategory.GATEWAY_BLOCK):
                self.trace(TraceCategory.GATEWAY_BLOCK, message=rule.src, reason="filtered")
            else:
                tr.tick(TraceCategory.GATEWAY_BLOCK)
            self._flow_block(fid, rule.src, "filtered")
            return
        monitor = self._monitors.get(key)
        if monitor is not None and not monitor.on_message(rule.src):
            rule.blocked_monitor += 1
            self.instances_blocked += 1
            self._m_blocked.inc()
            if tr.wants(TraceCategory.GATEWAY_BLOCK):
                self.trace(
                    TraceCategory.GATEWAY_BLOCK, message=rule.src,
                    reason="temporal violation",
                )
            else:
                tr.tick(TraceCategory.GATEWAY_BLOCK)
            self._flow_block(fid, rule.src, "temporal violation")
            return
        self._store(rule, instance, arrival)
        self._push_et_outputs(rule)

    def _store(self, rule: RedirectionRule, instance: MessageInstance, arrival: int) -> None:
        now = self.sim.now
        stored = dissect(instance)
        for element_name, fields in stored.items():
            self.repository.store(element_name, fields, now)
            for de, conv_state, source in self._conversions:
                if source == element_name:
                    derived = conv_state.apply(fields, now)
                    self.repository.store(de.name, derived, now)
                    self.conversion_applications += 1
        tr = self.sim.trace
        if tr.wants(TraceCategory.GATEWAY_FORWARD):
            self.trace(
                TraceCategory.GATEWAY_FORWARD, message=rule.src,
                elements=sorted(stored), stage="stored",
            )
        else:
            tr.tick(TraceCategory.GATEWAY_FORWARD)
        fid = self._flow_of(instance)
        if fid is not None:
            rule.last_flow = fid
            self.sim.flows.hop(now, self.name, fid, FlowStage.GATEWAY_STORED,
                               message=rule.src)

    def _push_et_outputs(self, rule: RedirectionRule) -> None:
        """Attempt constructions for ET destinations fed by this rule."""
        dst_side = self.sides[self._other(rule.src_side)]
        if not isinstance(dst_side.vn, ETVirtualNetwork):
            return
        instance = self._construct(rule)
        if instance is not None:
            dst_side.vn.send(rule.dst, instance, sender_job=self.name)

    # ------------------------------------------------------------------
    # construction pipeline
    # ------------------------------------------------------------------
    def _construct(self, rule: RedirectionRule) -> MessageInstance | None:
        now = self.sim.now
        assert rule.dst_type is not None
        if not self.repository.all_available(rule.needed_elements, now):
            return None
        instance = construct(
            rule.dst_type, lambda name: self.repository.take(name, now)
        )
        if instance is not None:
            rule.forwarded += 1
            self.instances_forwarded += 1
            self._m_forwarded.inc()
            tr = self.sim.trace
            if tr.wants(TraceCategory.GATEWAY_FORWARD):
                self.trace(
                    TraceCategory.GATEWAY_FORWARD, message=rule.dst, stage="constructed",
                )
            else:
                tr.tick(TraceCategory.GATEWAY_FORWARD)
            fl = self.sim.flows
            if fl.enabled:
                # The constructed message is a *child* flow: its parent
                # is the flow that last updated this rule's repository
                # elements, so cross-VN journeys chain through here.
                fid = fl.new_flow()
                instance.meta["flow"] = fid
                fl.origin(now, self.name, fid, rule.dst,
                          FlowStage.ORIGIN_GW_CONSTRUCT,
                          parent=rule.last_flow)
        return instance

    def _can_send_message(self, message: str) -> bool:
        rule = self._rule_for_dst(message)
        if rule is None:
            return False
        return self.repository.all_available(rule.needed_elements, self.sim.now)

    def _send_message(self, message: str) -> None:
        rule = self._rule_for_dst(message)
        if rule is None:
            raise GatewayError(f"automaton sends unknown message {message!r}")
        dst_side = self.sides[self._other(rule.src_side)]
        instance = self._construct(rule)
        if instance is not None and isinstance(dst_side.vn, ETVirtualNetwork):
            dst_side.vn.send(rule.dst, instance, sender_job=self.name)

    def _import_requested(self, rule: RedirectionRule) -> bool:
        """Is any element this rule supplies (directly or via conversion)
        currently requested (``b_req`` set)?"""
        assert rule.src_type is not None
        supplied = {e.name for e in rule.src_type.convertible_elements()}
        for de, _state, source in self._conversions:
            if source in supplied:
                supplied.add(de.name)
        return any(
            self.repository.declared(name) and self.repository.is_requested(name)
            for name in supplied
        )

    def _rule_for_dst(self, message: str) -> RedirectionRule | None:
        for rule in self.rules:
            if rule.dst == message:
                return rule
        return None

    # ------------------------------------------------------------------
    # guard functions exposed to automata (Sec. IV-B.2)
    # ------------------------------------------------------------------
    def _fn_horizon(self, message: str) -> int:
        """horizon(m): Eq. (2) over m's convertible state elements."""
        rule = self._rule_for_dst(str(message))
        if rule is None:
            raise GatewayError(f"horizon() of unknown message {message!r}")
        h = self.repository.horizon(rule.needed_elements, self.sim.now)
        return h if h is not None else -(2**62)

    def _fn_requ(self, element: str) -> bool:
        """requ(c): the b_req request variable of a convertible element."""
        return self.repository.is_requested(str(element))

    # ------------------------------------------------------------------
    # error handling (restart of the gateway service)
    # ------------------------------------------------------------------
    def _on_monitor_error(self, key: tuple[str, str], monitor: MessageMonitor) -> None:
        if key in self._halted:
            return
        self._halted.add(key)
        self._rt_halted_fp = tuple(sorted(self._halted))
        self.sim.metrics.inc("gateway.monitor_errors")
        self.trace(
            TraceCategory.GATEWAY_ERROR, message=key[1], side=key[0],
            violations=monitor.violations,
        )
        self.call_after(
            self.restart_delay,
            lambda: self._restart(key),
            label=f"{self.name}.restart",
        )

    def _restart(self, key: tuple[str, str]) -> None:
        monitor = self._monitors.get(key)
        if monitor is not None:
            monitor.restart()
        self._halted.discard(key)
        self._rt_halted_fp = tuple(sorted(self._halted))
        self.restarts += 1
        self._m_restarts.inc()
        self.trace(TraceCategory.GATEWAY_RESTART, message=key[1], side=key[0])

    def is_halted(self, message: str, side: str = "a") -> bool:
        return (side, message) in self._halted

    # ------------------------------------------------------------------
    # round-template participant protocol (see repro.sim.round_template)
    # ------------------------------------------------------------------
    def _monitor_prefix(self, key: tuple[str, str]) -> str:
        return f"m.{key[0]}.{key[1]}."

    def _rt_monitors(self) -> tuple[tuple[tuple[str, str], str, MessageMonitor], ...]:
        """(key, delta prefix, monitor) in sorted-key order, cached —
        the participant hooks run every round boundary and re-sorting
        a never-changing dict dominates their cost.  Monitors are only
        ever added (at setup), so a length check invalidates."""
        mons = self._rt_mons
        if mons is None or len(mons) != len(self._monitors):
            mons = self._rt_mons = tuple(
                (key, self._monitor_prefix(key), self._monitors[key])
                for key in sorted(self._monitors)
            )
        return mons

    def rt_state(self) -> dict[str, int]:
        state = {
            "received": self.instances_received,
            "forwarded": self.instances_forwarded,
            "blocked": self.instances_blocked,
            "conversions": self.conversion_applications,
            "restarts": self.restarts,
        }
        for i, rule in enumerate(self.rules):
            state[f"r{i}.forwarded"] = rule.forwarded
            state[f"r{i}.blocked_filter"] = rule.blocked_filter
            state[f"r{i}.blocked_monitor"] = rule.blocked_monitor
            state[f"r{i}.blocked_halted"] = rule.blocked_halted
            state[f"r{i}.skipped"] = rule.skipped_unrequested
        for _key, prefix, monitor in self._rt_monitors():
            for name, v in monitor.rt_counters().items():
                state[prefix + name] = v
        for name, v in self.repository.rt_counters().items():
            state["rep." + name] = v
        return state

    def rt_check(self, delta: dict[str, int]) -> bool:
        # Plain monotonic statistics plus forward-moving timestamps
        # (repository t_update, monitor clock resets).  A negative delta
        # is a re-anchoring event, an astronomical one a None->value
        # sentinel transition — both discrete, both unreplayable.
        for d in delta.values():
            if d < 0 or d > 2**60:
                return False
        return True

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        self.instances_received += delta["received"] * k
        self.instances_forwarded += delta["forwarded"] * k
        self.instances_blocked += delta["blocked"] * k
        self.conversion_applications += delta["conversions"] * k
        self.restarts += delta["restarts"] * k
        for i, rule in enumerate(self.rules):
            rule.forwarded += delta[f"r{i}.forwarded"] * k
            rule.blocked_filter += delta[f"r{i}.blocked_filter"] * k
            rule.blocked_monitor += delta[f"r{i}.blocked_monitor"] * k
            rule.blocked_halted += delta[f"r{i}.blocked_halted"] * k
            rule.skipped_unrequested += delta[f"r{i}.skipped"] * k
        for _key, prefix, monitor in self._rt_monitors():
            monitor.rt_advance(delta, k, prefix)
        self.repository.rt_advance(delta, k, "rep.")

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        # Value filters and conditional imports make forward/block
        # decisions from message payloads and repository request state;
        # replay would extrapolate their counters from stale values.
        for rule in self.rules:
            if len(rule.filters) or rule.conditional_import:
                return None
        fp: list[Any] = [self._rt_halted_fp]
        for key, _prefix, monitor in self._rt_monitors():
            mfp = monitor.rt_fingerprint(boundary, round_len)
            if mfp is None:
                return None
            fp.append((key[0], key[1]) + mfp)
        rfp = self.repository.rt_fingerprint(boundary, round_len)
        if rfp is None:
            return None
        fp.append(rfp)
        return tuple(fp)

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        best = self.repository.rt_headroom(boundary, round_len)
        for _key, _prefix, monitor in self._rt_monitors():
            h = monitor.rt_headroom(boundary, round_len)
            if h is not None and (best is None or h < best):
                best = h
        return best

    # ------------------------------------------------------------------
    @staticmethod
    def _other(side: str) -> str:
        return "b" if side == "a" else "a"

    def monitor_for(self, message: str, side: str = "a") -> MessageMonitor | None:
        return self._monitors.get((side, message))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<VirtualGateway {self.name!r} {self.sides['a'].das}<->{self.sides['b'].das} "
            f"rules={len(self.rules)} fwd={self.instances_forwarded}>"
        )
