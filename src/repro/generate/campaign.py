"""Campaign assembly: candidate streams, admission gating, aggregation.

``generate_candidates`` mints seeded :class:`ScenarioSpec`\\ s whose
only generator-specific payload is the profile name — the topology is
re-drawn from the spec seed wherever the spec lands.  ``admit`` runs
every candidate through the static verifier (the SPEC/SCHED/FLOW
admission rules, served through the digest-keyed check cache) and
splits the stream into runnable scenarios and counted rejections;
rejected configurations are **never** simulated.  ``fault_summary``
folds a finished Monte-Carlo campaign's ``gen.*`` metrics counters
into per-fault-kind survival/containment statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runner.scenarios import ScenarioSpec, derive_seed
from .params import GenProfile, profile_by_name
from .topology import draw_topology

__all__ = [
    "AdmissionSummary",
    "admit",
    "fault_summary",
    "generate_candidates",
]


def generate_candidates(count: int, profile: str | GenProfile = "mixed",
                        base_seed: int = 0) -> list[ScenarioSpec]:
    """Mint ``count`` candidate specs for a profile.

    Names embed the profile and campaign seed, and per-candidate seeds
    are hash-derived from the name (like the registry), so candidate
    ``i`` of campaign ``(profile, base_seed)`` is globally stable: the
    same triple always denotes the same topology.
    """
    prof = profile if isinstance(profile, GenProfile) else profile_by_name(profile)
    specs = []
    for i in range(count):
        name = f"gen-{prof.name}-{base_seed}-{i:05d}"
        specs.append(ScenarioSpec(
            name=name,
            builder="generated",
            horizon_ns=prof.horizon_ns,
            seed=derive_seed(name, base_seed),
            trace_mode=prof.trace_mode,
            # round_template is pinned here (not left for the sweep
            # runner's pin) so admission and pre-flight key the check
            # cache under the same spec digest — one entry per
            # candidate, warm on both paths.
            params=(("gen_profile", prof.name), ("round_template", True)),
            tags=("generated", prof.name),
        ))
    return specs


@dataclass
class AdmissionSummary:
    """What the oracle did to a candidate stream."""

    total: int = 0
    admitted: int = 0
    rejected: int = 0
    #: rejecting rule -> count (a rejected candidate counts once per
    #: distinct rule it violated; ``BUILD`` marks builder crashes)
    rejected_rules: dict[str, int] = field(default_factory=dict)
    rejected_names: list[str] = field(default_factory=list)

    @property
    def rejection_rate(self) -> float:
        return self.rejected / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {
            "total": self.total,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "rejection_rate": round(self.rejection_rate, 4),
            "rejected_rules": dict(sorted(self.rejected_rules.items())),
        }


def admit(specs: list[ScenarioSpec],
          cache: object | None = None) -> tuple[list[ScenarioSpec], AdmissionSummary]:
    """Gate candidates through the static verifier; never run rejects.

    ``cache`` is an optional :class:`repro.runner.cache.CheckCache`:
    with it, re-admitting an unchanged candidate (same spec digest +
    code digest) rehydrates its stored diagnostics in O(1) — which also
    makes a subsequent ``--strict`` pre-flight over the admitted set
    warm.  Rejection is exactly the pre-flight criterion (any
    error-severity diagnostic), so nothing that passes admission can
    fail ``--strict`` later: zero gate escapes by construction.
    """
    from ..check.diagnostics import Severity
    from ..check.targets import cached_scenario_diagnostics

    code = ""
    if cache is not None:
        from ..runner.cache import code_digest

        code = code_digest()
    summary = AdmissionSummary(total=len(specs))
    admitted: list[ScenarioSpec] = []
    for spec in specs:
        try:
            diags = cached_scenario_diagnostics(spec, cache, code)
            errors = sorted({d.rule for d in diags
                             if d.severity is Severity.ERROR})
        except Exception:  # a crashing builder is a rejection, not an abort
            errors = ["BUILD"]
        if errors:
            summary.rejected += 1
            summary.rejected_names.append(spec.name)
            for rule in errors:
                summary.rejected_rules[rule] = summary.rejected_rules.get(rule, 0) + 1
        else:
            summary.admitted += 1
            admitted.append(spec)
    return admitted, summary


def fault_summary(results: list[dict], specs: list[ScenarioSpec]) -> dict:
    """Survival/containment statistics for a finished fault campaign.

    For each run the topology is re-drawn from its spec (cheap, pure)
    to learn which fault it carried; the run's ``gen.*`` counters then
    classify it:

    * **survived** — the relay chain delivered *fresh* values after the
      fault instant (``gen.chain_fresh_post_fault > 0``; plain
      ``delivering`` additionally counts TT state re-dispatch of stale
      values, the fail-silent masking the paper's state semantics
      provide),
    * **contained** — background traffic on fault-disjoint VNs kept
      flowing after the fault (``gen.noise_post_fault > 0``; only runs
      that have noise VNs enter this denominator).
    """
    by_name = {spec.name: spec for spec in specs}
    kinds: dict[str, dict[str, int]] = {}
    for result in results:
        spec = by_name.get(result.get("name", ""))
        if spec is None or "error" in result:
            continue
        topo = draw_topology(spec.seed,
                             profile_by_name(str(spec.param("gen_profile",
                                                            "mixed"))))
        kind = topo.fault.kind if topo.fault is not None else "none"
        bucket = kinds.setdefault(kind, {
            "runs": 0, "survived": 0, "delivering": 0,
            "containment_runs": 0, "contained": 0,
        })
        snapshot = result.get("metrics", {}) or {}
        metrics = snapshot.get("counters", snapshot)
        bucket["runs"] += 1
        if topo.fault is None:
            survived = delivering = metrics.get("gen.chain_deliveries", 0) > 0
        else:
            # "delivering" counts TT state re-dispatch of stale values
            # (fail-silent masking); "survived" demands fresh values.
            survived = metrics.get("gen.chain_fresh_post_fault", 0) > 0
            delivering = metrics.get("gen.chain_post_fault", 0) > 0
        if survived:
            bucket["survived"] += 1
        if delivering:
            bucket["delivering"] += 1
        if topo.noise:
            bucket["containment_runs"] += 1
            if topo.fault is None or metrics.get("gen.noise_post_fault", 0) > 0:
                bucket["contained"] += 1
    out: dict[str, dict] = {}
    for kind, bucket in sorted(kinds.items()):
        entry: dict[str, object] = dict(bucket)
        entry["survival_rate"] = (round(bucket["survived"] / bucket["runs"], 4)
                                  if bucket["runs"] else 0.0)
        entry["containment_rate"] = (
            round(bucket["contained"] / bucket["containment_runs"], 4)
            if bucket["containment_runs"] else None)
        out[kind] = entry
    return out
