"""Seeded procedural scenario generation for campaign-scale sweeps.

The generator turns the scenario substrate inside out: instead of a
hand-written registry of 16 configurations, ``(profile, seed)`` pairs
deterministically mint N-node × M-VN × K-gateway relay-chain clusters
— bounded random link specs, port sets, TDMA schedules, and optional
Monte-Carlo fault plans — and the static verifier (SPEC/SCHED/FLOW
rules) acts as the admission oracle: candidates whose drawn queue
depths or temporal accuracies are infeasible are counted and rejected
before any simulation.

Entry points: :func:`generate_candidates` + :func:`admit` (used by
``repro sweep --generated``), :func:`fault_summary` (used by ``repro
campaign faults``), and :func:`build_generated` (the ``"generated"``
scenario builder, registered lazily in the runner's builder registry).

Determinism contract: the only randomness in this package is a
``random.Random`` seeded from the scenario spec, enforced by the
determinism lint (see :mod:`repro.check.determinism`).
"""

from .builder import build_generated
from .campaign import AdmissionSummary, admit, fault_summary, generate_candidates
from .params import PROFILES, GenProfile, profile_by_name
from .topology import Topology, draw_topology

__all__ = [
    "AdmissionSummary",
    "GenProfile",
    "PROFILES",
    "Topology",
    "admit",
    "build_generated",
    "draw_topology",
    "fault_summary",
    "generate_candidates",
    "profile_by_name",
]
