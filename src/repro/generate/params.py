"""The generator's parameter space: named, bounded campaign profiles.

A profile is pure data describing the *bounds* of the procedural draw —
node counts, virtual-network counts, gateway-chain lengths, the period
and queue-depth palettes, temporal-accuracy choices, and the fault-
campaign mix.  The draw itself (:mod:`repro.generate.topology`) is a
pure function of ``(seed, profile)``: a scenario spec only needs to
carry the profile *name*, and every worker process re-derives the
identical topology from the scenario seed.

All times are nanoseconds (the simulator's unit).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim import MS

__all__ = ["GenProfile", "PROFILES", "profile_by_name"]


@dataclass(frozen=True)
class GenProfile:
    """Bounds of the procedural draw for one campaign flavor."""

    name: str
    #: inclusive (lo, hi) bounds on cluster node count N
    nodes: tuple[int, int]
    #: inclusive (lo, hi) bounds on virtual-network count M (>= 2)
    vns: tuple[int, int]
    #: inclusive (lo, hi) bounds on gateway-chain length K (clamped to M-1)
    gateways: tuple[int, int]
    #: run horizon of every generated scenario
    horizon_ns: int
    #: palette of TT dispatch periods for chain hops and noise traffic
    periods_ns: tuple[int, ...] = (5 * MS, 10 * MS, 20 * MS, 40 * MS)
    #: palette of ET sender periods (also the declared min_interarrival)
    sender_periods_ns: tuple[int, ...] = (2 * MS, 3 * MS, 5 * MS, 7 * MS, 10 * MS)
    #: palette of event queue depths (FLOW003's rejection surface)
    queue_depths: tuple[int, ...] = (2, 4, 8, 16, 32)
    #: palette of terminal temporal accuracies (FLOW002's rejection surface)
    d_acc_ns: tuple[int, ...] = (30 * MS, 60 * MS, 120 * MS, 250 * MS, 500 * MS)
    #: palette of intermediate-hop temporal accuracies (they feed the
    #: age bound of everything downstream, so they stay moderate)
    hop_d_acc_ns: tuple[int, ...] = (60 * MS, 100 * MS, 150 * MS)
    #: probability the chain also relays an event-semantic element
    #: (arming the FLOW003 queue-pressure check on TT-destination hops)
    event_element_rate: float = 0.5
    #: probability a candidate carries a fault plan (Monte-Carlo mode)
    fault_rate: float = 0.0
    #: trace mode of generated scenarios (counters keeps digests cheap)
    trace_mode: str = "counters"


#: The built-in campaign profiles, by name.
PROFILES: dict[str, GenProfile] = {
    p.name: p
    for p in (
        GenProfile(name="mixed", nodes=(3, 8), vns=(2, 5), gateways=(1, 3),
                   horizon_ns=120 * MS),
        GenProfile(name="small", nodes=(3, 4), vns=(2, 3), gateways=(1, 2),
                   horizon_ns=80 * MS),
        GenProfile(name="large", nodes=(6, 12), vns=(4, 8), gateways=(2, 5),
                   horizon_ns=150 * MS),
        GenProfile(name="faults", nodes=(3, 8), vns=(2, 5), gateways=(1, 3),
                   horizon_ns=200 * MS, fault_rate=1.0),
        # Throughput benchmarking: small clusters, short horizon, so the
        # measured runs/s isolates the campaign engine's constant costs.
        GenProfile(name="bench", nodes=(3, 5), vns=(2, 3), gateways=(1, 2),
                   horizon_ns=60 * MS),
    )
}


def profile_by_name(name: str) -> GenProfile:
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown generator profile {name!r} (known: {sorted(PROFILES)})"
        ) from None
