"""Deterministic topology draws: ``(seed, profile) -> Topology``.

The draw is the generator's only source of randomness, and it is a
pure function: one ``random.Random(seed)`` instance, consumed in a
fixed order, produces every structural choice — node count, the
virtual-network relay chain, per-hop link specs, noise traffic, and
the optional fault plan.  The resulting :class:`Topology` is plain
frozen data, so two draws from the same seed compare equal and the
builder (:mod:`repro.generate.builder`) rebuilds byte-identical
simulators in every worker process.

The draw is *bounded but not admissible by construction*: queue depths
and temporal accuracies are sampled from palettes wide enough that a
fraction of candidates violates the FLOW admission rules (gateway
buffer pressure FLOW003, end-to-end age FLOW002).  That is the point —
the static verifier is the oracle that separates runnable
configurations from rejected ones (see :mod:`repro.generate.campaign`).
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from .params import GenProfile

__all__ = ["FaultPlan", "HopSpec", "NoiseSpec", "Topology", "VNSpec", "draw_topology"]


@dataclass(frozen=True)
class VNSpec:
    """One virtual network (= one DAS) in the generated cluster."""

    name: str
    kind: str  # "TT" | "ET"


@dataclass(frozen=True)
class HopSpec:
    """Gateway ``i`` relaying ``msgHop{i}`` (chain VN ``i``) into
    ``msgHop{i+1}`` (chain VN ``i+1``)."""

    index: int
    host: str
    #: depth of the ET-side input port (meaningful when the source VN
    #: is ET; this is FLOW003's queue under pressure)
    src_queue_depth: int
    dst_kind: str  # kind of chain VN i+1
    #: TT dispatch period of the destination port (TT destinations)
    dst_period_ns: int
    #: temporal accuracy declared on the destination port (TT destinations)
    dst_d_acc_ns: int
    #: depth of the ET-side output port (ET destinations)
    dst_queue_depth: int


@dataclass(frozen=True)
class NoiseSpec:
    """Background ET traffic on a VN disjoint from the relay chain —
    the containment witness in fault campaigns."""

    vn: str
    sender_node: str
    consumer_node: str
    period_ns: int


@dataclass(frozen=True)
class FaultPlan:
    """The Monte-Carlo fault draw: what breaks, where, and when."""

    kind: str  # "crash" | "babble" | "timing"
    target: str  # node name (crash/babble) or job name (timing)
    at_ns: int
    until_ns: int | None = None
    burst_period_ns: int = 50_000  # babble only
    speedup: float = 4.0  # timing only


@dataclass(frozen=True)
class Topology:
    """Everything the builder needs, as comparable frozen data."""

    seed: int
    profile: str
    nodes: tuple[str, ...]
    #: the relay chain, length K+1; chain_vns[0] is ET (the sender's
    #: DAS), chain_vns[-1] is TT (the terminal consumer's DAS)
    chain_vns: tuple[VNSpec, ...]
    hops: tuple[HopSpec, ...]  # length K
    sender_node: str
    sender_period_ns: int
    consumer_node: str
    #: temporal accuracy the terminal consumer demands end to end
    #: (FLOW002 rejects chains whose age bound exceeds it)
    terminal_d_acc_ns: int
    #: whether chain messages carry an event-semantic ``Tick`` element
    #: (arming FLOW003 on every TT-destination hop)
    has_event_element: bool
    noise: tuple[NoiseSpec, ...]
    fault: FaultPlan | None


_BURST_PERIODS_NS = (20_000, 50_000, 100_000)
_TIMING_SPEEDUPS = (2.0, 4.0, 8.0)


def draw_topology(seed: int, profile: GenProfile) -> Topology:
    """Draw one candidate topology; pure in ``(seed, profile)``."""
    rng = Random(seed)

    n_nodes = rng.randint(*profile.nodes)
    n_vns = rng.randint(*profile.vns)
    chain_len = max(1, min(rng.randint(*profile.gateways), n_vns - 1))
    nodes = tuple(f"node{i}" for i in range(n_nodes))

    # --- the relay chain: ET entry, drawn middle, TT terminal ---------
    kinds = ["ET"]
    for _ in range(chain_len - 1):
        kinds.append("TT" if rng.random() < 0.5 else "ET")
    kinds.append("TT")
    chain_vns = tuple(VNSpec(name=f"vn{i}", kind=kind)
                      for i, kind in enumerate(kinds))

    sender_node = rng.choice(nodes)
    sender_period = rng.choice(profile.sender_periods_ns)
    consumer_node = rng.choice(nodes)
    terminal_d_acc = rng.choice(profile.d_acc_ns)
    has_event = rng.random() < profile.event_element_rate

    hops = []
    for i in range(chain_len):
        dst = chain_vns[i + 1]
        terminal = i == chain_len - 1
        hops.append(HopSpec(
            index=i,
            host=rng.choice(nodes),
            src_queue_depth=rng.choice(profile.queue_depths),
            dst_kind=dst.kind,
            dst_period_ns=(rng.choice(profile.periods_ns)
                           if dst.kind == "TT" else 0),
            dst_d_acc_ns=(terminal_d_acc if terminal
                          else rng.choice(profile.hop_d_acc_ns)),
            dst_queue_depth=rng.choice(profile.queue_depths),
        ))

    # --- background ET traffic on the VNs the chain does not use ------
    noise = tuple(
        NoiseSpec(
            vn=f"noise{j}",
            sender_node=rng.choice(nodes),
            consumer_node=rng.choice(nodes),
            period_ns=rng.choice(profile.sender_periods_ns),
        )
        for j in range(n_vns - chain_len - 1)
    )

    # --- the Monte-Carlo fault draw -----------------------------------
    fault: FaultPlan | None = None
    if rng.random() < profile.fault_rate:
        kind = rng.choice(("crash", "babble", "timing"))
        at = rng.randint(int(profile.horizon_ns * 0.3),
                         int(profile.horizon_ns * 0.6))
        if kind == "crash":
            # Crash something load-bearing: the sender's node or a
            # gateway host, so the chain actually loses a stage.
            target = rng.choice([sender_node] + [h.host for h in hops])
            fault = FaultPlan(kind=kind, target=target, at_ns=at)
        elif kind == "babble":
            until = at + rng.randint(profile.horizon_ns // 10,
                                     profile.horizon_ns // 4)
            fault = FaultPlan(kind=kind, target=rng.choice(nodes), at_ns=at,
                              until_ns=until,
                              burst_period_ns=rng.choice(_BURST_PERIODS_NS))
        else:
            until = at + rng.randint(profile.horizon_ns // 10,
                                     profile.horizon_ns // 4)
            fault = FaultPlan(kind=kind, target="sender", at_ns=at,
                              until_ns=until,
                              speedup=rng.choice(_TIMING_SPEEDUPS))

    return Topology(
        seed=seed,
        profile=profile.name,
        nodes=nodes,
        chain_vns=chain_vns,
        hops=tuple(hops),
        sender_node=sender_node,
        sender_period_ns=sender_period,
        consumer_node=consumer_node,
        terminal_d_acc_ns=terminal_d_acc,
        has_event_element=has_event,
        noise=noise,
        fault=fault,
    )
