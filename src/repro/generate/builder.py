"""Materialize a generated topology into a live simulator.

``build_generated`` is the ``"generated"`` entry in the scenario
builder registry: it re-draws the :class:`~repro.generate.topology.
Topology` from the spec's seed and profile name (both plain data in
the spec, so the draw replays identically in any worker process) and
assembles it through the same :class:`~repro.systems.SystemBuilder`
path the hand-written scenarios use — generated N×M×K clusters
exercise exactly the gateway/VN/TDMA code the registry exercises.

Every generated scenario maintains ``gen.*`` metrics counters
(chain/noise deliveries, split at the fault-injection instant) so
Monte-Carlo campaigns can aggregate survival and containment without
parsing traces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ..sim import Simulator, make_trace
from .params import profile_by_name
from .topology import Topology, draw_topology

if TYPE_CHECKING:  # pragma: no cover
    from ..messaging import MessageType
    from ..runner.scenarios import ScenarioSpec

__all__ = ["build_generated"]

#: Element names shared by every chain hop message, so gateway rules
#: convert them straight through (static key IDs differ per hop).
_STATE_ELEMENT = "Val"
_EVENT_ELEMENT = "Tick"


def _hop_message(index: int, has_event: bool) -> "MessageType":
    from ..messaging import (
        ElementDef,
        FieldDef,
        IntType,
        MessageType,
        Semantics,
        TimestampType,
    )

    elements = [
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True,
                                    static_value=index + 1),)),
        ElementDef(_STATE_ELEMENT, convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("v", IntType(16)),
                           FieldDef("t_src", TimestampType(32)),)),
    ]
    if has_event:
        elements.append(
            ElementDef(_EVENT_ELEMENT, convertible=True,
                       semantics=Semantics.EVENT,
                       fields=(FieldDef("n", IntType(16)),)))
    return MessageType(f"msgHop{index}", elements=tuple(elements))


def _noise_message(index: int) -> "MessageType":
    from ..messaging import (
        ElementDef,
        FieldDef,
        IntType,
        MessageType,
        Semantics,
        TimestampType,
    )

    return MessageType(f"msgNoise{index}", elements=(
        ElementDef("Name", key=True,
                   fields=(FieldDef("ID", IntType(16), static=True,
                                    static_value=100 + index),)),
        ElementDef(_STATE_ELEMENT, convertible=True, semantics=Semantics.STATE,
                   fields=(FieldDef("v", IntType(16)),
                           FieldDef("t_src", TimestampType(32)),)),
    ))


def build_generated(spec: "ScenarioSpec") -> Simulator:
    """Build the generated scenario ``spec`` describes."""
    from ..messaging import Semantics
    from ..platform import Job
    from ..spec import (
        ControlParadigm,
        Direction,
        ETTiming,
        InteractionType,
        LinkSpec,
        PortSpec,
        TTTiming,
    )
    from ..systems import GatewayDecl, SystemBuilder

    profile = profile_by_name(str(spec.param("gen_profile", "mixed")))
    topo: Topology = draw_topology(spec.seed, profile)
    fault_at = topo.fault.at_ns if topo.fault is not None else None

    chain_messages = [_hop_message(i, topo.has_event_element)
                      for i in range(len(topo.chain_vns))]

    class GenSender(Job):
        """ET producer at the head of the relay chain.  The integer
        ``period`` attribute is the contract JobTimingFailure distorts."""

        def __init__(self, jsim: Any, name: str, das: Any, partition: Any,
                     message: Any = chain_messages[0],
                     message_name: str = chain_messages[0].name,
                     period: int = topo.sender_period_ns,
                     has_event: bool = topo.has_event_element) -> None:
            super().__init__(jsim, name, das, partition)
            self.vn: Any = None
            self.message = message
            self.message_name = message_name
            self.period = period
            self.has_event = has_event
            self.sent = 0
            self._last: int | None = None

        def on_step(self) -> None:
            if self.vn is None:
                return
            now = self.sim.now
            if self._last is not None and now - self._last < self.period:
                return
            self._last = now
            self.sent += 1
            payload: dict[str, dict[str, int]] = {
                _STATE_ELEMENT: {"v": self.sent % 100,
                                 "t_src": (now // 1000) % 2**32},
            }
            if self.has_event:
                payload[_EVENT_ELEMENT] = {"n": self.sent % 100}
            self.vn.send(self.message_name,
                         self.message.instance(**payload),
                         sender_job=self.name)

    class GenConsumer(Job):
        """Terminal/noise consumer feeding the ``gen.*`` campaign
        counters, split at the fault instant for survival stats."""

        def __init__(self, jsim: Any, name: str, das: Any, partition: Any,
                     counter: str = "chain") -> None:
            super().__init__(jsim, name, das, partition)
            self.counter = counter
            self.deliveries = 0
            self._last_v: int | None = None

        def on_message(self, port_name: str, instance: Any,
                       arrival: int) -> None:
            self.deliveries += 1
            self.sim.metrics.inc(f"gen.{self.counter}_deliveries")
            # TT state semantics re-dispatch the last value after an
            # upstream crash (fail-silent staleness), so post-fault
            # survival is split into raw deliveries vs *fresh* values.
            value = instance.get(_STATE_ELEMENT, "v")
            fresh = value != self._last_v
            self._last_v = value
            if fault_at is not None and self.sim.now >= fault_at:
                self.sim.metrics.inc(f"gen.{self.counter}_post_fault")
                if fresh:
                    self.sim.metrics.inc(f"gen.{self.counter}_fresh_post_fault")

    sim = Simulator(seed=spec.seed, trace=make_trace(spec.trace_mode))
    builder = SystemBuilder(sim=sim)
    for node in topo.nodes:
        builder.add_node(node)
    for vn in topo.chain_vns:
        builder.add_das(vn.name, ControlParadigm.TIME_TRIGGERED
                        if vn.kind == "TT" else ControlParadigm.EVENT_TRIGGERED)
    for ns in topo.noise:
        builder.add_das(ns.vn, ControlParadigm.EVENT_TRIGGERED)

    # --- chain endpoints ----------------------------------------------
    head = topo.chain_vns[0]
    builder.add_job(
        "sender", head.name, topo.sender_node,
        lambda s, n, d, p: GenSender(s, n, d, p),
        ports=(PortSpec(message_type=chain_messages[0],
                        direction=Direction.OUTPUT,
                        semantics=Semantics.EVENT,
                        control=ControlParadigm.EVENT_TRIGGERED,
                        et=ETTiming(min_interarrival=topo.sender_period_ns),
                        queue_depth=32),),
    )
    last_hop = topo.hops[-1]
    tail = topo.chain_vns[-1]
    builder.add_job(
        "consumer", tail.name, topo.consumer_node,
        lambda s, n, d, p: GenConsumer(s, n, d, p, counter="chain"),
        ports=(PortSpec(message_type=chain_messages[-1],
                        direction=Direction.INPUT,
                        semantics=Semantics.STATE,
                        control=ControlParadigm.TIME_TRIGGERED,
                        tt=TTTiming(period=last_hop.dst_period_ns),
                        interaction=InteractionType.PUSH,
                        temporal_accuracy=topo.terminal_d_acc_ns),),
    )

    # --- the gateway relay chain --------------------------------------
    # ``rate`` tracks the message interarrival entering each hop: the
    # sender's period at hop 0, replaced by the TT dispatch period after
    # every TT destination (the declared min_interarrival on ET input
    # ports downstream — FLOW003's denominator).
    rate = topo.sender_period_ns
    prev_period = 0
    prev_d_acc = 0
    for hop in topo.hops:
        src_vn = topo.chain_vns[hop.index]
        dst_vn = topo.chain_vns[hop.index + 1]
        src_msg = chain_messages[hop.index]
        dst_msg = chain_messages[hop.index + 1]
        if src_vn.kind == "ET":
            in_port = PortSpec(message_type=src_msg, direction=Direction.INPUT,
                               semantics=Semantics.EVENT,
                               control=ControlParadigm.EVENT_TRIGGERED,
                               et=ETTiming(min_interarrival=rate),
                               queue_depth=hop.src_queue_depth)
        else:
            in_port = PortSpec(message_type=src_msg, direction=Direction.INPUT,
                               semantics=Semantics.STATE,
                               control=ControlParadigm.TIME_TRIGGERED,
                               tt=TTTiming(period=prev_period),
                               interaction=InteractionType.PUSH,
                               temporal_accuracy=prev_d_acc)
        if hop.dst_kind == "TT":
            out_port = PortSpec(message_type=dst_msg,
                                direction=Direction.OUTPUT,
                                semantics=Semantics.STATE,
                                control=ControlParadigm.TIME_TRIGGERED,
                                tt=TTTiming(period=hop.dst_period_ns),
                                temporal_accuracy=hop.dst_d_acc_ns)
            rate = hop.dst_period_ns
            prev_period = hop.dst_period_ns
            prev_d_acc = hop.dst_d_acc_ns
        else:
            out_port = PortSpec(message_type=dst_msg,
                                direction=Direction.OUTPUT,
                                semantics=Semantics.EVENT,
                                control=ControlParadigm.EVENT_TRIGGERED,
                                et=ETTiming(min_interarrival=rate),
                                queue_depth=hop.dst_queue_depth)
        builder.add_gateway(GatewayDecl(
            name=f"gw{hop.index}", host=hop.host,
            das_a=src_vn.name, das_b=dst_vn.name,
            link_a=LinkSpec(das=src_vn.name, ports=(in_port,)),
            link_b=LinkSpec(das=dst_vn.name, ports=(out_port,)),
            rules=[(src_msg.name, dst_msg.name, "a_to_b", None)],
        ))

    # --- background noise traffic -------------------------------------
    for j, ns in enumerate(topo.noise):
        msg = _noise_message(j)
        builder.add_job(
            f"noise{j}-sender", ns.vn, ns.sender_node,
            lambda s, n, d, p, m=msg, period=ns.period_ns:
                GenSender(s, n, d, p, message=m, message_name=m.name,
                          period=period, has_event=False),
            ports=(PortSpec(message_type=msg, direction=Direction.OUTPUT,
                            semantics=Semantics.EVENT,
                            control=ControlParadigm.EVENT_TRIGGERED,
                            et=ETTiming(min_interarrival=ns.period_ns),
                            queue_depth=32),),
        )
        builder.add_job(
            f"noise{j}-consumer", ns.vn, ns.consumer_node,
            lambda s, n, d, p: GenConsumer(s, n, d, p, counter="noise"),
            ports=(PortSpec(message_type=msg, direction=Direction.INPUT,
                            semantics=Semantics.EVENT,
                            control=ControlParadigm.EVENT_TRIGGERED,
                            queue_depth=32),),
        )

    system = builder.build()
    system.start()
    sender = system.job("sender")
    sender.vn = system.vn(head.name)
    for j, ns in enumerate(topo.noise):
        noise_sender = system.job(f"noise{j}-sender")
        noise_sender.vn = system.vn(ns.vn)

    # --- the Monte-Carlo fault plan -----------------------------------
    if topo.fault is not None:
        from ..faults import (
            BabblingIdiot,
            ComponentCrash,
            FaultInjector,
            JobTimingFailure,
        )

        plan = topo.fault
        injector = FaultInjector(sim, name="gen-injector")
        if plan.kind == "crash":
            injector.inject_at(
                ComponentCrash(name=f"crash.{plan.target}",
                               component=system.component(plan.target)),
                at=plan.at_ns)
        elif plan.kind == "babble":
            injector.inject_at(
                BabblingIdiot(name=f"babble.{plan.target}",
                              controller=system.cluster.controller(plan.target),
                              burst_period=plan.burst_period_ns),
                at=plan.at_ns, until=plan.until_ns)
        else:
            injector.inject_at(
                JobTimingFailure(name="timing.sender", job=sender,
                                 speedup=plan.speedup),
                at=plan.at_ns, until=plan.until_ns)
    return sim
