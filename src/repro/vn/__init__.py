"""Virtual networks (substrate S8): encapsulated overlays per DAS.

Runtime ports (state memory elements, bounded event queues), the shared
routing/encoding machinery, and the two transmission disciplines: TT
(static sampling instants) and ET (CAN-style priority arbitration within
reserved bandwidth).
"""

from .et_network import ETVirtualNetwork
from .port import EventPort, Port, StatePort, make_port
from .redundancy import ReplicatedMessage
from .service import ConsumerBinding, ProducerBinding, VirtualNetworkBase
from .tt_network import TTVirtualNetwork

__all__ = [
    "Port",
    "StatePort",
    "EventPort",
    "make_port",
    "VirtualNetworkBase",
    "ProducerBinding",
    "ConsumerBinding",
    "TTVirtualNetwork",
    "ReplicatedMessage",
    "ETVirtualNetwork",
]
