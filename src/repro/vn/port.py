"""Runtime ports: the access points between jobs and virtual networks.

Sec. II-A: "A port is the access point between a job and the virtual
network of the DAS the job belongs to."  This module provides the
executable counterpart of :class:`repro.spec.port_spec.PortSpec`:

* :class:`StatePort` — the memory element of a state port: newer
  message instances overwrite older ones (*update in place*), and the
  time of the most recent update is kept so consumers (and gateways)
  can evaluate temporal accuracy.
* :class:`EventPort` — the bounded queue of an event port: instances
  are consumed *exactly once*; overflow drops the newest arrival and
  records it (losing event information silently would break sender/
  receiver state synchronization, so every loss is observable).

Interaction types (Sec. II-E) map onto the API as follows: a **push
input** port notifies its owner job on delivery (through the partition,
so the notification lands in the job's next window); a **pull input**
port just stores and waits for ``read``/``dequeue``; a **push output**
port is written by the job's explicit ``write``/``enqueue`` and drained
by the VN dispatcher; a **pull output** port's content is *sampled* by
the dispatcher at the network's instants (sender-pull — the control
signal comes from the communication system, as in TT transmission).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from ..errors import PortError
from ..messaging import MessageInstance, Semantics
from ..sim import Simulator, TraceCategory
from ..spec import Direction, InteractionType, PortSpec

if TYPE_CHECKING:  # pragma: no cover
    from ..platform.job import Job

__all__ = ["Port", "StatePort", "EventPort", "make_port"]


class Port:
    """Common behaviour of runtime ports."""

    def __init__(self, sim: Simulator, spec: PortSpec) -> None:
        self.sim = sim
        self.spec = spec
        self.owner_job: "Job | None" = None
        self.sends = 0
        self.receptions = 0
        self.drops = 0
        self.last_send_time: int | None = None
        self.last_arrival_time: int | None = None

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def direction(self) -> Direction:
        return self.spec.direction

    @property
    def semantics(self) -> Semantics:
        return self.spec.semantics

    def _owner_label(self) -> str:
        return self.owner_job.name if self.owner_job is not None else "<unbound>"

    def _require(self, direction: Direction, op: str) -> None:
        if self.spec.direction is not direction:
            raise PortError(
                f"{op} on {self.spec.direction.value} port {self.name!r} "
                f"(owner {self._owner_label()})"
            )

    def _notify_owner(self, instance: MessageInstance, arrival: int) -> None:
        """Push-input delivery: hand the instance to the owner job
        through its partition (receiver-push, Sec. II-E)."""
        if self.spec.interaction is InteractionType.PUSH and self.owner_job is not None:
            self.owner_job.deliver(self.name, instance, arrival)

    def trace_drop(self, reason: str) -> None:
        self.drops += 1
        self.sim.metrics.inc("port.drops")
        tr = self.sim.trace
        if tr.wants(TraceCategory.PORT_DROP):
            tr.record(
                self.sim.now, TraceCategory.PORT_DROP, self.name,
                owner=self._owner_label(), reason=reason,
            )
        else:
            tr.tick(TraceCategory.PORT_DROP)


class StatePort(Port):
    """Update-in-place memory element for state semantics."""

    def __init__(self, sim: Simulator, spec: PortSpec) -> None:
        if spec.semantics is not Semantics.STATE:
            raise PortError(f"StatePort needs state semantics, got {spec.semantics}")
        super().__init__(sim, spec)
        self._value: MessageInstance | None = None
        self._t_update: int | None = None
        self.overwrites = 0

    # producer side ----------------------------------------------------
    def write(self, instance: MessageInstance) -> None:
        """Owner job updates the output state (any time; sampled later)."""
        self._require(Direction.OUTPUT, "write")
        self._store(instance, self.sim.now)
        self.sends += 1
        self.last_send_time = self.sim.now

    def sample(self) -> tuple[MessageInstance | None, int | None]:
        """Dispatcher samples the current value (sender-pull)."""
        self._require(Direction.OUTPUT, "sample")
        if self._value is None:
            return None, None
        return self._value.copy(), self._t_update

    # consumer side ----------------------------------------------------
    def deliver_from_network(self, instance: MessageInstance, arrival: int) -> None:
        self._require(Direction.INPUT, "network delivery")
        self._store(instance, arrival)
        self.receptions += 1
        self.last_arrival_time = arrival
        self._notify_owner(instance, arrival)

    def read(self) -> tuple[MessageInstance | None, int | None]:
        """Most recent value and its update time (pull or push input)."""
        self._require(Direction.INPUT, "read")
        if self._value is None:
            return None, None
        return self._value.copy(), self._t_update

    def age(self) -> int | None:
        """Time since the last update (None if never updated)."""
        if self._t_update is None:
            return None
        return self.sim.now - self._t_update

    def is_temporally_accurate(self) -> bool:
        """Eq. (1): the real-time image is still valid."""
        d_acc = self.spec.temporal_accuracy
        if d_acc is None:
            return self._t_update is not None
        a = self.age()
        return a is not None and a < d_acc

    # ------------------------------------------------------------------
    def _store(self, instance: MessageInstance, t: int) -> None:
        if self._value is not None:
            self.overwrites += 1
        self._value = instance
        self._t_update = t


class EventPort(Port):
    """Bounded exactly-once queue for event semantics."""

    def __init__(self, sim: Simulator, spec: PortSpec) -> None:
        if spec.semantics is not Semantics.EVENT:
            raise PortError(f"EventPort needs event semantics, got {spec.semantics}")
        super().__init__(sim, spec)
        self._queue: deque[tuple[MessageInstance, int]] = deque()
        self.enqueued_total = 0
        self.dequeued_total = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return self.spec.queue_depth

    # producer side ----------------------------------------------------
    def enqueue(self, instance: MessageInstance) -> bool:
        """Owner job emits an event instance (push output)."""
        self._require(Direction.OUTPUT, "enqueue")
        ok = self._push(instance, self.sim.now)
        if ok:
            self.sends += 1
            self.last_send_time = self.sim.now
        return ok

    def collect(self) -> MessageInstance | None:
        """Dispatcher drains one instance for transmission."""
        self._require(Direction.OUTPUT, "collect")
        return self._pop()

    # consumer side ----------------------------------------------------
    def deliver_from_network(self, instance: MessageInstance, arrival: int) -> None:
        self._require(Direction.INPUT, "network delivery")
        if self._push(instance, arrival):
            self.receptions += 1
            self.last_arrival_time = arrival
            self._notify_owner(instance, arrival)

    def dequeue(self) -> MessageInstance | None:
        """Consume one instance exactly-once (pull input or job logic)."""
        self._require(Direction.INPUT, "dequeue")
        return self._pop()

    def peek(self) -> MessageInstance | None:
        return self._queue[0][0] if self._queue else None

    # ------------------------------------------------------------------
    def _push(self, instance: MessageInstance, t: int) -> bool:
        if len(self._queue) >= self.spec.queue_depth:
            self.trace_drop("queue overflow")
            return False
        self._queue.append((instance, t))
        self.enqueued_total += 1
        return True

    def _pop(self) -> MessageInstance | None:
        if not self._queue:
            return None
        instance, _ = self._queue.popleft()
        self.dequeued_total += 1
        return instance


def make_port(sim: Simulator, spec: PortSpec) -> Port:
    """Instantiate the right port class for a specification."""
    if spec.semantics is Semantics.STATE:
        return StatePort(sim, spec)
    return EventPort(sim, spec)
