"""Virtual network services: common routing, encoding, and attachment.

A virtual network is "the encapsulated communication system of a DAS
... realized as an overlay network on top of a time-triggered physical
network" (Sec. II-A).  :class:`VirtualNetworkBase` implements what the
TT and ET flavors share:

* the **routing table** — for every message name, the single producer
  binding and the consumer ports per component,
* the **encode/decode** path between message instances and
  :class:`~repro.core_network.frame.FrameChunk` payloads (the chunk's
  ``vn`` tag is this DAS's name; the controller's per-VN delivery is
  the visibility half of the encapsulation service),
* **job attachment** — instantiating runtime ports from port specs and
  wiring them to the component's controller,
* **gateway attachment** — architecture-level taps (receive every
  instance of a message without a partition in between) and producer
  bindings for injected (imported) messages,
* **local loopback** — instances reach consumer ports hosted on the
  producing component directly through CNI memory, since a controller
  never receives its own frames off the bus.

Subclasses implement the transmit discipline: TT (a-priori instants,
sender-pull sampling) in :mod:`repro.vn.tt_network`, ET (priority
arbitration within reserved bandwidth) in :mod:`repro.vn.et_network`.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core_network import Cluster, FrameChunk
from ..errors import ConfigurationError, NamingError, PortError
from ..messaging import MessageInstance, Namespace
from ..sim import FlowStage, Simulator, TraceCategory
from ..spec import Direction, PortSpec
from .port import EventPort, Port, StatePort, make_port

if TYPE_CHECKING:  # pragma: no cover
    from ..platform.job import Job

__all__ = ["ProducerBinding", "ConsumerBinding", "VirtualNetworkBase"]

#: A tap callback: (message name, decoded instance, arrival time).
TapCallback = Callable[[str, MessageInstance, int], None]


@dataclass
class ProducerBinding:
    """Who produces a message, and how the dispatcher obtains instances."""

    message: str
    component: str
    port: Port | None = None  # None for gateway/raw providers
    provider: Callable[[], MessageInstance | None] | None = None
    job_name: str = ""
    priority: int = 100
    seq: int = 0


@dataclass
class ConsumerBinding:
    """Input ports of one message on one component, plus raw taps."""

    message: str
    ports: list[tuple[str, Port]] = field(default_factory=list)  # (component, port)
    taps: list[tuple[str, TapCallback]] = field(default_factory=list)  # (component, cb)


class VirtualNetworkBase:
    """Shared machinery of TT and ET virtual networks."""

    #: Set by subclasses ("time-triggered" / "event-triggered").
    paradigm = "abstract"

    def __init__(self, sim: Simulator, das: str, cluster: Cluster,
                 namespace: Namespace | None = None) -> None:
        self.sim = sim
        self.das = das
        self.cluster = cluster
        self.namespace = namespace if namespace is not None else Namespace(das)
        self._producers: dict[str, ProducerBinding] = {}
        self._consumers: dict[str, ConsumerBinding] = {}
        self._registered_components: set[str] = set()
        self._started = False
        self.chunks_sent = 0
        self.bytes_sent = 0
        self.instances_delivered = 0
        m = sim.metrics
        self._m_delivered = m.counter("vn.instances_delivered")
        self._m_chunk_drop = m.counter("vn.chunk_drops")
        sim.register_checkable(self)

    # ------------------------------------------------------------------
    # attachment
    # ------------------------------------------------------------------
    def attach_job(self, job: "Job", component: str, specs: tuple[PortSpec, ...]) -> dict[str, Port]:
        """Create runtime ports for ``job`` on ``component`` and wire them."""
        if job.das != self.das:
            raise ConfigurationError(
                f"job {job.name!r} of DAS {job.das!r} cannot attach to "
                f"virtual network of DAS {self.das!r}"
            )
        ports: dict[str, Port] = {}
        for spec in specs:
            port = make_port(self.sim, spec)
            job.bind_port(port)
            if spec.direction is Direction.OUTPUT:
                self._bind_producer(spec, component, port, job.name)
            else:
                self._bind_consumer(spec.name, component, port)
            ports[spec.name] = port
        self._ensure_component_registered(component)
        return ports

    def attach_gateway_producer(
        self,
        message: str,
        component: str,
        provider: Callable[[], MessageInstance | None] | None = None,
        priority: int = 100,
    ) -> ProducerBinding:
        """Bind a gateway as the producer of an *imported* message."""
        self._require_message(message)
        if message in self._producers:
            raise ConfigurationError(
                f"message {message!r} already has a producer on VN {self.das!r}"
            )
        binding = ProducerBinding(
            message=message, component=component, provider=provider,
            job_name=f"gateway@{component}", priority=priority,
        )
        self._producers[message] = binding
        self._ensure_component_registered(component)
        return binding

    def attach_gateway_consumer_port(
        self, spec: PortSpec, component: str
    ) -> Port:
        """Give a gateway an input port (architecture level, no job)."""
        port = make_port(self.sim, spec)
        self._bind_consumer(spec.name, component, port)
        self._ensure_component_registered(component)
        return port

    def tap(self, message: str, component: str, callback: TapCallback) -> None:
        """Architecture-level reception of every instance of ``message``
        observable at ``component`` — the hidden gateway's input path."""
        self._require_message(message)
        binding = self._consumers.setdefault(message, ConsumerBinding(message))
        binding.taps.append((component, callback))
        self._ensure_component_registered(component)

    # ------------------------------------------------------------------
    def _bind_producer(self, spec: PortSpec, component: str, port: Port, job_name: str) -> None:
        self._require_message(spec.name)
        if spec.name in self._producers:
            raise ConfigurationError(
                f"message {spec.name!r} already has producer "
                f"{self._producers[spec.name].job_name!r} on VN {self.das!r}"
            )
        if isinstance(port, StatePort):
            provider = lambda p=port: p.sample()[0]  # noqa: E731
        else:
            provider = lambda p=port: p.collect()  # type: ignore[union-attr]  # noqa: E731
        self._producers[spec.name] = ProducerBinding(
            message=spec.name, component=component, port=port,
            provider=provider, job_name=job_name, priority=spec.priority,
        )

    def _bind_consumer(self, message: str, component: str, port: Port) -> None:
        self._require_message(message)
        binding = self._consumers.setdefault(message, ConsumerBinding(message))
        binding.ports.append((component, port))

    def _require_message(self, name: str) -> None:
        if name not in self.namespace:
            raise NamingError(
                f"message {name!r} is not registered in the namespace of DAS {self.das!r}"
            )

    def _ensure_component_registered(self, component: str) -> None:
        if component in self._registered_components:
            return
        ctrl = self.cluster.controller(component)
        ctrl.register_receiver(self.das, lambda chunk, arrival, c=component: (
            self._on_chunk(chunk, arrival, c)
        ))
        self._registered_components.add(component)

    # ------------------------------------------------------------------
    # transmit helpers (used by subclasses)
    # ------------------------------------------------------------------
    def _encode_chunk(self, message: str, instance: MessageInstance,
                      sender_job: str) -> FrameChunk:
        mtype = self.namespace.lookup(message)
        instance.send_time = self.sim.now
        data = mtype.encode(instance)
        meta = {"send_time": self.sim.now, **instance.meta}
        return FrameChunk(vn=self.das, message=message, data=data,
                          sender_job=sender_job, meta=meta)

    def _local_deliver(self, message: str, instance: MessageInstance,
                       component: str) -> None:
        """CNI-memory loopback to co-hosted consumers and taps."""
        binding = self._consumers.get(message)
        if binding is None:
            return
        now = self.sim.now
        for comp, port in binding.ports:
            if comp == component:
                self._deliver_to_port(port, instance.copy(), now)
        for comp, cb in binding.taps:
            if comp == component:
                cb(message, instance.copy(), now)

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_chunk(self, chunk: FrameChunk, arrival: int, component: str) -> None:
        try:
            mtype = self.namespace.lookup(chunk.message)
        except NamingError:
            self._m_chunk_drop.inc()
            self.sim.trace.record(
                arrival, TraceCategory.PORT_DROP, f"vn.{self.das}",
                reason="unknown message", message=chunk.message,
            )
            return
        try:
            instance = mtype.decode(chunk.data)
        except Exception:
            self._m_chunk_drop.inc()
            self.sim.trace.record(
                arrival, TraceCategory.PORT_DROP, f"vn.{self.das}",
                reason="undecodable", message=chunk.message,
            )
            return
        instance.send_time = chunk.meta.get("send_time")
        instance.meta.update(chunk.meta)
        binding = self._consumers.get(chunk.message)
        if binding is None:
            return
        for comp, port in binding.ports:
            if comp == component:
                self._deliver_to_port(port, instance.copy(), arrival)
        for comp, cb in binding.taps:
            if comp == component:
                cb(chunk.message, instance.copy(), arrival)

    def _deliver_to_port(self, port: Port, instance: MessageInstance, arrival: int) -> None:
        if isinstance(port, (StatePort, EventPort)):
            fl = self.sim.flows
            if fl.enabled:
                fid = instance.meta.get("flow")
                if fid is not None:
                    fl.hop(arrival, port.name, fid, FlowStage.PORT_RECV, vn=self.das)
            port.deliver_from_network(instance, arrival)
            self.instances_delivered += 1
            self._m_delivered.inc()
            tr = self.sim.trace
            if tr.wants(TraceCategory.PORT_RECV):
                tr.record(
                    arrival, TraceCategory.PORT_RECV, port.name,
                    vn=self.das, owner=port._owner_label(),
                )
            else:
                tr.tick(TraceCategory.PORT_RECV)
        else:  # pragma: no cover - make_port only builds the two kinds
            raise PortError(f"cannot deliver to port {port!r}")

    # ------------------------------------------------------------------
    # introspection & checks
    # ------------------------------------------------------------------
    def producer_of(self, message: str) -> ProducerBinding | None:
        return self._producers.get(message)

    def consumers_of(self, message: str) -> ConsumerBinding | None:
        return self._consumers.get(message)

    def messages(self) -> list[str]:
        return sorted(set(self._producers) | set(self._consumers))

    def verify_reservations(self) -> list[str]:
        """Encapsulation check: every producing component must hold a
        reservation for this VN in at least one of its slots (otherwise
        its chunks can never leave the node).  Returns problems."""
        problems: list[str] = []
        schedule = self.cluster.schedule
        for binding in self._producers.values():
            slots = schedule.slots_of(binding.component)
            if not slots:
                problems.append(f"{binding.component!r} owns no slot at all")
                continue
            if not any(s.reserved_for(self.das) > 0 or not s.reservations for s in slots):
                problems.append(
                    f"{binding.component!r} produces {binding.message!r} but has "
                    f"no bandwidth reservation for VN {self.das!r}"
                )
        return problems

    def start(self) -> None:
        """Begin dispatching (subclass hook); idempotent."""
        if self._started:
            return
        self._started = True
        self._on_start()

    def _on_start(self) -> None:
        """Subclass hook."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} das={self.das!r} messages={self.messages()} "
            f"sent={self.chunks_sent}>"
        )
