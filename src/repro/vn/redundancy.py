"""Transparent active redundancy on TT virtual networks.

Sec. II-E: "Redundancy can be established transparently to
applications, i.e. without any modification of the function and timing
of application systems.  A time-triggered system also supports replica
determinism, which is essential for establishing fault-tolerance
through active redundancy."

:class:`ReplicatedMessage` realizes exactly that on a TT virtual
network: ``k`` replica producers — jobs or providers on *different
components* (hardware FCRs) — each transmit a replica of the same
message in their own slot under replica-suffixed internal names.  A
receiver-side :class:`ReplicaVoter` collects the replicas of each round
and delivers **one** voted instance under the original message name to
the ordinary consumer ports, so consumers are unaware redundancy exists
(transparency).

Voting is exact-match majority over the encoded payload — sound because
TT sampling plus deterministic jobs give replica determinism: correct
replicas of the same round are bit-identical.  A crashed replica
(missing) or a value-corrupted replica (outvoted) is tolerated as long
as a majority of the ``k`` replicas is correct; ties and total loss
deliver nothing and are counted.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable

from ..errors import ConfigurationError
from ..messaging import MessageInstance
from ..sim import EventPriority, Simulator, TraceCategory
from ..spec import TTTiming
from .tt_network import TTVirtualNetwork

__all__ = ["ReplicatedMessage"]


def _replica_name(message: str, index: int) -> str:
    return f"{message}#r{index}"


class ReplicatedMessage:
    """k-replicated production + receiver-side majority voting."""

    def __init__(
        self,
        sim: Simulator,
        vn: TTVirtualNetwork,
        message: str,
        timing: TTTiming,
        providers: list[tuple[str, Callable[[], MessageInstance | None]]],
        voter_host: str,
        vote_window: int | None = None,
    ) -> None:
        """``providers``: (component, provider) per replica — components
        must be distinct (a replica set within one FCR tolerates
        nothing).  ``vote_window``: how long after the first replica of
        a round to wait before voting (default: 1/4 of the period)."""
        if len(providers) < 2:
            raise ConfigurationError("replication needs at least 2 replicas")
        components = [c for c, _ in providers]
        if len(set(components)) != len(components):
            raise ConfigurationError(
                "replica producers must sit on distinct components (FCRs)"
            )
        self.sim = sim
        self.vn = vn
        self.message = message
        self.k = len(providers)
        self.vote_window = vote_window if vote_window is not None else timing.period // 4
        base = vn.namespace.lookup(message)
        self._replica_names: list[str] = []
        for i, (component, provider) in enumerate(providers):
            rname = _replica_name(message, i)
            rtype = vn.namespace.register(base.renamed(rname),
                                          allow_shared_explicit=True)

            def wrapped(provider=provider, rtype=rtype):
                # Providers produce plain instances of the base message;
                # rebind to the replica type (structurally identical) so
                # the VN encodes them under the replica name.
                inst = provider()
                if inst is None:
                    return None
                inst = inst.copy()
                inst.mtype = rtype
                return inst

            vn.attach_gateway_producer(rname, component, provider=wrapped)
            vn.set_timing(rname, timing)
            vn.tap(rname, voter_host,
                   lambda m, inst, t, i=i: self._on_replica(i, inst, t))
            self._replica_names.append(rname)
        self.voter_host = voter_host
        self._round: list[tuple[int, bytes, MessageInstance]] = []
        self._vote_scheduled = False
        self.rounds_voted = 0
        self.rounds_tied = 0
        self.rounds_empty = 0
        self.replicas_outvoted = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    def _on_replica(self, index: int, instance: MessageInstance, arrival: int) -> None:
        payload = instance.mtype.encode(instance)
        self._round.append((index, payload, instance))
        if not self._vote_scheduled:
            self._vote_scheduled = True
            self.sim.after(self.vote_window, self._vote,
                           priority=EventPriority.SERVICE,
                           label=f"vote.{self.message}")

    def _vote(self) -> None:
        self._vote_scheduled = False
        replicas, self._round = self._round, []
        if not replicas:
            self.rounds_empty += 1
            return
        counts = Counter(payload for _, payload, _ in replicas)
        winner, votes = counts.most_common(1)[0]
        # Accept when all received replicas agree (tolerates crashes of
        # the others) or a strict majority of the FULL replica set
        # agrees (tolerates value faults).  Disagreement without a
        # majority is undecidable — deliver nothing.
        majority = self.k // 2 + 1
        if len(counts) > 1 and votes < majority:
            self.rounds_tied += 1
            self.sim.metrics.inc("voter.rounds_tied")
            self.sim.trace.record(
                self.sim.now, TraceCategory.PORT_DROP, f"voter.{self.message}",
                reason="no majority", replicas=len(replicas),
            )
            return
        self.replicas_outvoted += sum(1 for _, p, _ in replicas if p != winner)
        voted = next(inst for _, p, inst in replicas if p == winner)
        # Deliver under the ORIGINAL name: consumers see one message.
        out = voted.copy()
        out.mtype = self.vn.namespace.lookup(self.message)
        self.vn._local_deliver(self.message, out, self.voter_host)
        binding = self.vn.consumers_of(self.message)
        if binding is not None:
            now = self.sim.now
            for comp, port in binding.ports:
                if comp != self.voter_host:
                    self.vn._deliver_to_port(port, out.copy(), now)
            for comp, cb in binding.taps:
                if comp != self.voter_host:
                    cb(self.message, out.copy(), now)
        self.rounds_voted += 1
        self.delivered += 1
        self.sim.metrics.inc("voter.rounds_voted")

    def replica_names(self) -> list[str]:
        return list(self._replica_names)
