"""Event-triggered virtual networks (CAN-style overlay).

"In non safety-critical (soft real-time) DASs ... the event-triggered
control paradigm may be preferred due to higher flexibility and
resource efficiency" (Sec. II-E).

Transmission discipline: jobs emit instances on demand (sender-push);
each message has a CAN-style arbitration **priority** (lower value wins).
Pending instances wait in a per-producing-component arbitration queue.
Whenever one of that component's TDMA slots opens with a byte
reservation for this VN, the controller pulls the highest-priority
chunks that fit (see ``register_chunk_source`` on the controller) —
i.e. arbitration happens per communication opportunity, within the
DAS's reserved share of the physical bandwidth.

Consequences the experiments rely on: latency is load-dependent (low-
priority messages starve under load — E2/E4 measure this), resources
can be "biased towards average demands, thus allowing timing failures
to occur during worst-case scenarios" (the overflow drops are exactly
those failures), and a babbling ET job saturates *only its own VN's*
reservation — the rest of the bus is untouched (temporal independence).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from ..core_network import FrameChunk, Slot
from ..errors import ConfigurationError, PortError
from ..messaging import MessageInstance
from ..sim import FlowStage, TraceCategory
from ..spec import ControlParadigm
from .service import VirtualNetworkBase

if TYPE_CHECKING:  # pragma: no cover
    from ..platform.job import Job

__all__ = ["ETVirtualNetwork"]


class ETVirtualNetwork(VirtualNetworkBase):
    """Priority-arbitrated overlay for one non-safety-critical DAS."""

    paradigm = ControlParadigm.EVENT_TRIGGERED.value

    def __init__(self, sim, das, cluster, namespace=None,
                 pending_limit: int = 4096) -> None:
        super().__init__(sim, das, cluster, namespace)
        #: per-component arbitration heap: (priority, seq, chunk)
        self._pending: dict[str, list[tuple[int, int, FrameChunk]]] = {}
        self._seq = 0
        self._sources_installed: set[str] = set()
        self.pending_limit = pending_limit
        self.sends = 0
        self.arbitration_wins = 0
        self.send_drops = 0
        m = sim.metrics
        self._m_sends = m.counter("vn.et.sends")
        self._m_drops = m.counter("vn.et.send_drops")
        self._m_depth = m.histogram("vn.et.queue_depth")
        # ET sends are demand-driven: a blocking interleaving source in
        # strict round-template mode, a fingerprinted dynamic
        # participant in quasi-periodic mode (steady-state periodic
        # senders repeat at the hyperperiod; queued chunks veto).
        sim.round_template.register_dynamic(f"etvn.{das}", self)

    # ------------------------------------------------------------------
    # send path (sender-push)
    # ------------------------------------------------------------------
    def send(self, message: str, instance: MessageInstance,
             sender_job: str = "") -> bool:
        """Emit one instance on demand; returns False if the arbitration
        queue is saturated (the cost-efficiency trade of Sec. II-E)."""
        binding = self._producers.get(message)
        if binding is None:
            raise ConfigurationError(
                f"message {message!r} has no producer binding on VN {self.das!r}"
            )
        self._install_source(binding.component)
        queue = self._pending.setdefault(binding.component, [])
        tr = self.sim.trace
        if len(queue) >= self.pending_limit:
            self.send_drops += 1
            self._m_drops.inc()
            if tr.wants(TraceCategory.PORT_DROP):
                tr.record(
                    self.sim.now, TraceCategory.PORT_DROP, f"etvn.{self.das}",
                    reason="arbitration queue full", message=message,
                )
            else:
                tr.tick(TraceCategory.PORT_DROP)
            return False
        fl = self.sim.flows
        if fl.enabled:
            # Sender-push origination: the instance is born into the
            # network here (after the overflow check — a dropped send
            # never becomes a flow).
            fid = instance.meta.get("flow")
            if fid is None:
                fid = fl.new_flow()
                instance.meta["flow"] = fid
                fl.origin(self.sim.now, f"etvn.{self.das}", fid, message,
                          FlowStage.ORIGIN_ET_SEND, component=binding.component)
            fl.hop(self.sim.now, f"etvn.{self.das}", fid,
                   FlowStage.VN_SEND, message=message)
        chunk = self._encode_chunk(message, instance, sender_job or binding.job_name)
        self._seq += 1
        heapq.heappush(queue, (binding.priority, self._seq, chunk))
        self.sends += 1
        self._m_sends.inc()
        self._m_depth.observe(len(queue))
        if tr.wants(TraceCategory.VN_DISPATCH):
            tr.record(
                self.sim.now, TraceCategory.VN_DISPATCH, f"etvn.{self.das}",
                message=message, component=binding.component, priority=binding.priority,
            )
        else:
            tr.tick(TraceCategory.VN_DISPATCH)
        self._local_deliver(message, instance, binding.component)
        return True

    def send_from_port(self, job: "Job", message: str) -> int:
        """Drain a job's event output port into the network; returns the
        number of instances handed to arbitration."""
        port = job.port(message)
        count = 0
        while True:
            collect = getattr(port, "collect", None)
            if collect is None:
                raise PortError(f"port {message!r} is not an output event port")
            instance = collect()
            if instance is None:
                break
            if self.send(message, instance, sender_job=job.name):
                count += 1
        return count

    # ------------------------------------------------------------------
    # arbitration (pulled by the controller at slot time)
    # ------------------------------------------------------------------
    def _install_source(self, component: str) -> None:
        if component in self._sources_installed:
            return
        ctrl = self.cluster.controller(component)
        ctrl.register_chunk_source(
            self.das, lambda slot, budget, c=component: self._arbitrate(c, slot, budget)
        )
        self._sources_installed.add(component)

    def _arbitrate(self, component: str, slot: Slot, budget: int) -> list[FrameChunk]:
        queue = self._pending.get(component)
        if not queue:
            return []
        out: list[FrameChunk] = []
        used = 0
        # Highest priority (lowest value) first; a chunk that does not
        # fit the remaining budget blocks lower-priority ones behind it
        # (no reordering past a blocked head — CAN semantics).
        while queue:
            prio, seq, chunk = queue[0]
            if used + chunk.size_bytes() > budget:
                break
            heapq.heappop(queue)
            used += chunk.size_bytes()
            out.append(chunk)
            self.arbitration_wins += 1
        self.chunks_sent += len(out)
        self.bytes_sent += used
        return out

    # ------------------------------------------------------------------
    # round-template participant protocol (quasi-periodic mode)
    # ------------------------------------------------------------------
    def rt_state(self) -> dict[str, int]:
        return {
            "sends": self.sends,
            "arbitration_wins": self.arbitration_wins,
            "send_drops": self.send_drops,
            "seq": self._seq,
            "chunks_sent": self.chunks_sent,
            "bytes_sent": self.bytes_sent,
            "instances_delivered": self.instances_delivered,
        }

    def rt_check(self, delta: dict[str, int]) -> bool:
        # Every key is a plain monotonic statistic (seq included: the
        # arbitration tie-breaker must keep advancing during replay).
        return True

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        self.sends += delta["sends"] * k
        self.arbitration_wins += delta["arbitration_wins"] * k
        self.send_drops += delta["send_drops"] * k
        self._seq += delta["seq"] * k
        self.chunks_sent += delta["chunks_sent"] * k
        self.bytes_sent += delta["bytes_sent"] * k
        self.instances_delivered += delta["instances_delivered"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        # Chunks waiting in arbitration carry payload identity that
        # linear extrapolation cannot reproduce: veto the boundary so
        # the round runs live.  Empty queues — the steady-state norm at
        # boundaries, since sends drain at the component's next slot —
        # contribute nothing to the key.
        for queue in self._pending.values():
            if queue:
                return None
        return ()

    # ------------------------------------------------------------------
    def pending_count(self, component: str | None = None) -> int:
        if component is not None:
            return len(self._pending.get(component, ()))
        return sum(len(q) for q in self._pending.values())

    def _on_start(self) -> None:
        # Install sources for all known producers so reservations are
        # honored even before the first send.
        for binding in self._producers.values():
            self._install_source(binding.component)
