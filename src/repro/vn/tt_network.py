"""Time-triggered virtual networks.

"Time-triggered virtual networks aim at safety-critical DASs, where the
benefits with respect to predictability help in managing the complexity
of fault-tolerance ..." (Sec. II-E).

Transmission discipline: every message has a :class:`~repro.spec.port_spec.TTTiming`
(period, phase).  At each nominal instant the dispatcher *samples* the
producer (sender-pull: the control signal comes from the communication
system) and enqueues the encoded chunk at the producing component's
controller, which transmits it in that component's next TDMA slot
within the VN's byte reservation.  Receivers get the instance pushed
into their input ports (receiver-push).

Because every step of that pipeline happens at a-priori known instants,
end-to-end latency is a constant of the schedule and observed jitter at
the CNI is zero — the property experiment E2 measures while an ET VN
saturates its own share of the same physical bus.
"""

from __future__ import annotations

from ..core_network import FrameChunk
from ..errors import ConfigurationError
from ..messaging import MessageInstance
from ..sim import EventPriority, FlowStage, TraceCategory
from ..spec import ControlParadigm, InteractionType, TTTiming
from .service import ProducerBinding, VirtualNetworkBase

__all__ = ["TTVirtualNetwork"]


#: Dispatch events run after NETWORK deliveries but *before* the
#: controllers' slot actions at the same instant, so a chunk sampled at
#: a slot boundary makes that very slot.
DISPATCH_PRIORITY = EventPriority.NETWORK + 2


class TTVirtualNetwork(VirtualNetworkBase):
    """Static-schedule overlay for one safety-critical DAS.

    Dispatch instants are aligned to the physical schedule: the k-th
    transmission of a message is sampled ``dispatch_lead`` ns before the
    producing component's first TDMA slot at or after the message's
    nominal instant (``phase + k*period``).  The lead absorbs clock-sync
    imprecision (a fast sender's controller may act slightly before the
    global slot start).  When the message period is an integer multiple
    of the cluster cycle, every pipeline stage is periodic and the
    end-to-end latency is a schedule constant — the zero-jitter property
    of C1 that E1/E2 measure.
    """

    paradigm = ControlParadigm.TIME_TRIGGERED.value

    def __init__(self, sim, das, cluster, namespace=None,
                 dispatch_lead: int = 5_000,
                 implicit_naming: bool = False) -> None:
        super().__init__(sim, das, cluster, namespace)
        self._timings: dict[str, TTTiming] = {}
        self._cancels: list = []
        self.dispatch_lead = dispatch_lead
        #: Sec. II-E: "The message name can either be defined via the
        #: point in time at which the message is sent (i.e. an implicit
        #: message name) or be part of the message content."  With
        #: implicit naming on, chunks travel WITHOUT their name; the
        #: receiver resolves it from the arrival instant against the
        #: a-priori timing table — saving the name's wire bytes, which
        #: is why TT protocols use it.
        self.implicit_naming = implicit_naming
        self.implicit_resolutions = 0
        self.implicit_failures = 0
        self.dispatches = 0
        self.empty_dispatches = 0
        m = sim.metrics
        self._m_dispatch = m.counter("vn.tt.dispatches")
        self._m_empty = m.counter("vn.tt.empty_dispatches")
        self._m_implicit_fail = m.counter("vn.tt.implicit_failures")
        self.unaligned_periods: list[str] = []
        #: message -> (first nominal instant, period): the a-priori
        #: knowledge implicit naming resolves against.
        self._effective_start: dict[str, tuple[int, int]] = {}
        self._rt_push_sched: list[tuple[int, int]] | None = None

    # ------------------------------------------------------------------
    def set_timing(self, message: str, timing: TTTiming) -> None:
        """Fix the a-priori send instants of ``message``."""
        self._require_message(message)
        self._timings[message] = timing

    def timing_of(self, message: str) -> TTTiming:
        try:
            return self._timings[message]
        except KeyError:
            raise ConfigurationError(
                f"message {message!r} has no TT timing on VN {self.das!r}"
            ) from None

    # ------------------------------------------------------------------
    def _on_start(self) -> None:
        for message, binding in sorted(self._producers.items()):
            timing = self._timings.get(message)
            if timing is None:
                spec_port = binding.port
                if spec_port is not None and spec_port.spec.tt is not None:
                    timing = spec_port.spec.tt
                    self._timings[message] = timing
                else:
                    raise ConfigurationError(
                        f"TT message {message!r} needs a timing "
                        "(set_timing or a TT port spec)"
                    )
            schedule = self.cluster.schedule
            if timing.period % schedule.cycle_length != 0:
                # Legal but jittery: nominal instants walk through the
                # TDMA cycle, so slot-wait varies. Record it for the
                # designer (E2's determinism claim assumes alignment).
                self.unaligned_periods.append(message)
            nominal = max(timing.phase, self.sim.now)
            slot_start, _ = schedule.next_slot_start(binding.component, nominal)
            start = max(slot_start - self.dispatch_lead, self.sim.now)
            self._effective_start[message] = (start + self.dispatch_lead,
                                              timing.period)
            cancel = self.sim.every(
                timing.period,
                (lambda m=message, b=binding: self._dispatch(m, b)),
                start=start,
                priority=DISPATCH_PRIORITY,
                label=f"ttvn.{self.das}.{message}",
            )
            self._cancels.append(cancel)
            self.sim.round_template.register_labels(
                (f"ttvn.{self.das}.{message}",), period=timing.period)
        if self._producers:
            self.sim.round_template.register_participant(self)
        if self.implicit_naming:
            self._check_implicit_disjoint()

    def stop(self) -> None:
        for cancel in self._cancels:
            cancel()
        self._cancels.clear()

    # ------------------------------------------------------------------
    # round-template participant protocol (see repro.sim.round_template)
    # ------------------------------------------------------------------
    # Every statistic of a TT VN is a monotonic per-dispatch count, so
    # the whole state is linear; non-linear behaviour (an implicit-name
    # failure, say) still blocks replay because the *trace records* it
    # emits would differ between the recorded rounds.

    def rt_state(self) -> dict[str, int]:
        return {
            "chunks_sent": self.chunks_sent,
            "bytes_sent": self.bytes_sent,
            "instances_delivered": self.instances_delivered,
            "dispatches": self.dispatches,
            "empty_dispatches": self.empty_dispatches,
            "implicit_resolutions": self.implicit_resolutions,
            "implicit_failures": self.implicit_failures,
        }

    def rt_check(self, delta: dict[str, int]) -> bool:
        return True

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        self.chunks_sent += delta["chunks_sent"] * k
        self.bytes_sent += delta["bytes_sent"] * k
        self.instances_delivered += delta["instances_delivered"] * k
        self.dispatches += delta["dispatches"] * k
        self.empty_dispatches += delta["empty_dispatches"] * k
        self.implicit_resolutions += delta["implicit_resolutions"] * k
        self.implicit_failures += delta["implicit_failures"] * k

    # ------------------------------------------------------------------
    # implicit naming (Sec. II-E)
    # ------------------------------------------------------------------
    def _rt_push_schedule(self) -> list[tuple[int, int]]:
        """(first dispatch-event instant, period) of every message whose
        delivery lands in a job-owned PUSH port.  Replaying a round that
        contains such a dispatch would skip the partition deferral the
        push delivery triggers, so those rounds must run live."""
        sched = self._rt_push_sched
        if sched is None:
            sched = []
            for message, (nominal, period) in sorted(self._effective_start.items()):
                binding = self._consumers.get(message)
                if binding is None:
                    continue
                for _comp, port in binding.ports:
                    if (port.spec.interaction is InteractionType.PUSH
                            and port.owner_job is not None):
                        sched.append((nominal - self.dispatch_lead, period))
                        break
            self._rt_push_sched = sched
        return sched

    def _rt_next_push(self, t: int) -> int | None:
        """Earliest push-delivering dispatch event at or after ``t``."""
        best: int | None = None
        for first, period in self._rt_push_schedule():
            d = first
            if t > d:
                d = first + (-(-(t - first) // period)) * period
            if best is None or d < best:
                best = d
        return best

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        # Veto while a push-delivering dispatch lands in this round or
        # its delivery chain (slot wait + bus transit) may still be in
        # flight from a recent one.
        d = self._rt_next_push(boundary - 2 * round_len)
        if d is not None and d < boundary + round_len:
            return None
        return ()

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        d = self._rt_next_push(boundary)
        if d is None:
            return None
        return max(0, (d - boundary) // round_len)

    def _check_implicit_disjoint(self) -> None:
        """Implicit naming is sound only if no two messages ever share a
        dispatch instant: ``s1 + k*p1 == s2 + m*p2`` has a solution iff
        ``(s2 - s1) % gcd(p1, p2) == 0``.  Real TT schedules guarantee
        disjointness by construction; we verify it."""
        import math

        items = sorted(self._effective_start.items())
        for i, (m1, (s1, p1)) in enumerate(items):
            for m2, (s2, p2) in items[i + 1:]:
                if (s2 - s1) % math.gcd(p1, p2) == 0:
                    raise ConfigurationError(
                        f"implicit naming ambiguous on VN {self.das!r}: "
                        f"{m1!r} and {m2!r} share dispatch instants — "
                        "stagger their phases or use explicit names"
                    )

    def resolve_implicit(self, nominal: int) -> str | None:
        """Message name for a dispatch at instant ``nominal`` (a-priori
        schedule lookup); None if no message owns that instant."""
        for message, (start, period) in self._effective_start.items():
            if nominal >= start and (nominal - start) % period == 0:
                return message
        return None

    def _on_chunk(self, chunk, arrival, component) -> None:
        if self.implicit_naming and not chunk.message:
            nominal = chunk.meta.get("nominal")
            name = self.resolve_implicit(nominal) if nominal is not None else None
            if name is None:
                self.implicit_failures += 1
                self._m_implicit_fail.inc()
                self.sim.trace.record(
                    arrival, TraceCategory.PORT_DROP, f"ttvn.{self.das}",
                    reason="unresolvable implicit name", nominal=nominal,
                )
                return
            self.implicit_resolutions += 1
            chunk = FrameChunk(vn=chunk.vn, message=name, data=chunk.data,
                               sender_job=chunk.sender_job, meta=chunk.meta)
        super()._on_chunk(chunk, arrival, component)

    # ------------------------------------------------------------------
    def _dispatch(self, message: str, binding: ProducerBinding) -> None:
        instance: MessageInstance | None = None
        if binding.provider is not None:
            instance = binding.provider()
        if instance is None:
            # Nothing written yet: a TT slot goes out empty (the frame
            # still serves sync/membership at the physical level).
            self.empty_dispatches += 1
            self._m_empty.inc()
            return
        fl = self.sim.flows
        if fl.enabled:
            # A job-produced instance gets its flow id here (sender-pull
            # origination); a gateway-constructed import already carries
            # the child flow assigned at construction.
            fid = instance.meta.get("flow")
            if fid is None:
                fid = fl.new_flow()
                instance.meta["flow"] = fid
                fl.origin(self.sim.now, f"ttvn.{self.das}", fid, message,
                          FlowStage.ORIGIN_TT_DISPATCH,
                          component=binding.component)
            fl.hop(self.sim.now, f"ttvn.{self.das}", fid,
                   FlowStage.VN_DISPATCH, message=message)
        chunk = self._encode_chunk(message, instance, binding.job_name)
        if self.implicit_naming:
            # Strip the explicit name; carry the nominal instant instead
            # so receivers resolve the name from the timing table.
            chunk = FrameChunk(
                vn=chunk.vn, message="", data=chunk.data,
                sender_job=chunk.sender_job,
                meta={**chunk.meta, "nominal": self.sim.now + self.dispatch_lead},
            )
        ctrl = self.cluster.controller(binding.component)
        ctrl.enqueue_chunk(chunk)
        self.chunks_sent += 1
        self.bytes_sent += chunk.size_bytes()
        self.dispatches += 1
        self._m_dispatch.inc()
        tr = self.sim.trace
        if tr.wants(TraceCategory.VN_DISPATCH):
            tr.record(
                self.sim.now, TraceCategory.VN_DISPATCH, f"ttvn.{self.das}",
                message=message, component=binding.component,
            )
        else:
            tr.tick(TraceCategory.VN_DISPATCH)
        self._local_deliver(message, instance, binding.component)
