"""repro — Virtual Gateways in the DECOS Integrated Architecture.

A discrete-event-simulation reproduction of Obermaisser, Peti & Kopetz,
*Virtual Gateways in the DECOS Integrated Architecture* (IPPS 2005):
the full DECOS stack — time-triggered core network with clock sync,
guardians and membership; components/partitions/jobs; TT and ET virtual
networks as overlays; and the paper\'s contribution, hidden virtual
gateways parameterized by XML link specifications (syntactic part,
deterministic timed automata, transfer semantics).

Quick start::

    from repro.systems import SystemBuilder, GatewayDecl
    from repro.spec import ControlParadigm
    # see examples/quickstart.py for a complete two-DAS gateway system

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event kernel (integer-ns time).
``repro.core_network``
    TDMA bus, guardians, controllers, clock sync, membership (C1-C4).
``repro.platform``
    Components, partitions (temporal/spatial isolation), jobs.
``repro.messaging``
    Typed fields/elements/messages, bit codec, namespaces.
``repro.spec``
    Port/link/VN specifications, transfer semantics, Fig. 6 XML I/O.
``repro.automata``
    Deterministic timed automata: guards, port labels, runtime.
``repro.vn``
    Runtime ports and the TT/ET virtual-network overlays.
``repro.gateway``
    The virtual gateway: repository, filters, monitors, orchestration.
``repro.faults``
    Fault injection per the paper\'s fault hypothesis.
``repro.apps``
    The exemplary automotive system (ABS, navigation, Pre-Safe, ...).
``repro.systems``
    System assembly, naive-bridge baseline, resource inventories.
``repro.analysis``
    Probes, statistics, and the tables/series the benchmarks print.
"""

from . import (  # noqa: F401
    analysis,
    apps,
    automata,
    core_network,
    errors,
    faults,
    gateway,
    messaging,
    platform,
    sim,
    spec,
    systems,
    vn,
)
from .errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "sim",
    "core_network",
    "platform",
    "messaging",
    "spec",
    "automata",
    "vn",
    "gateway",
    "faults",
    "apps",
    "systems",
    "analysis",
    "errors",
    "ReproError",
    "__version__",
]
