"""XML link specifications — the Fig. 6 exchange format.

"We have chosen Extensible Markup Language (XML) for expressing link
specifications, because of the wide use of XML and the availability of
parsers" (Sec. IV-B).  This module parses and serializes the paper's
format:

* ``<linkspec>`` root with ``<das>``,
* a **syntactic part**: ``<message name=...>`` blocks with
  ``<element name=... key=yes|no conv=yes|no>`` containing
  ``<field name=...><type length=16>integer</type></field>`` (static
  fields add ``<value>731</value>``),
* a **temporal part**: ``<timedautomaton>`` blocks with ``<location>``,
  ``<init>``, ``<error>``, and ``<transition>`` elements carrying
  ``<label type="guard">``, ``<label type="assignment">``, and
  ``<label type="port">`` (the ``m!``/``m?`` interaction; the paper's
  figure omits port labels in transcription, so they are optional),
* **transfer semantics**: ``<transfersemantics>`` with derived elements
  whose ``<field ... init=0 semantics="state">`` bodies are conversion
  rules, and
* optionally ``<parameter name="tmin" value="...">`` and ``<port ...>``
  blocks for timing data the figure leaves implicit.

The figure as printed is *not* well-formed XML: attribute values are
unquoted (``length=16``) and guard bodies contain raw ``<``/``>``
(``x<tmax``).  :func:`lenient_xml` repairs exactly those two defects so
the paper's text parses verbatim; well-formed documents pass through
unchanged.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from collections.abc import Mapping

from ..automata import Assignment, Guard, PortAction, TimedAutomaton, Transition
from ..errors import SpecificationError
from ..messaging import (
    ElementDef,
    FieldDef,
    MessageType,
    Semantics,
    resolve_type,
)
from .link_spec import LinkSpec
from .port_spec import ControlParadigm, Direction, ETTiming, InteractionType, PortSpec, TTTiming
from .transfer import DerivedElement, DerivedField, TransferSemantics

__all__ = ["lenient_xml", "parse_link_spec", "serialize_link_spec"]


# ----------------------------------------------------------------------
# leniency layer
# ----------------------------------------------------------------------
_LABEL_BODY = re.compile(r"(<label\b[^>]*>)(.*?)(</label>)", re.DOTALL)
# ``&`` not already starting an entity reference (keeps escaping idempotent).
_BARE_AMP = re.compile(r"&(?!(?:amp|lt|gt|quot|apos|#\d+);)")


def _escape_bodies(text: str) -> str:
    """Escape raw ``<``, ``>``, ``&`` inside ``<label>`` bodies.

    Guard expressions are the only place the printed figure puts raw
    comparison operators; the non-greedy body match stops at the first
    ``</label>``.  Already-escaped entities pass through unchanged, so
    the repair is idempotent and well-formed documents are preserved.
    """

    def repl(m: re.Match[str]) -> str:
        body = _BARE_AMP.sub("&amp;", m.group(2))
        body = body.replace("<", "&lt;").replace(">", "&gt;")
        return m.group(1) + body + m.group(3)

    return _LABEL_BODY.sub(repl, text)


_BARE_ATTR = re.compile(r"([A-Za-z_][\w-]*)=(?![\"'])([^\s\"'<>/]+)")


def _quote_attrs_in_tags(text: str) -> str:
    """Quote bare attribute values, only inside tag markup."""

    def repl(m: re.Match[str]) -> str:
        return _BARE_ATTR.sub(r'\1="\2"', m.group(0))

    return re.sub(r"<[^<>]+>", repl, text)


def lenient_xml(text: str) -> str:
    """Repair the paper's two well-formedness defects (idempotent)."""
    # Escape raw <, > in guard/rule bodies first so they stop looking
    # like markup, then quote unquoted attribute values inside tags.
    return _quote_attrs_in_tags(_escape_bodies(text))


# ----------------------------------------------------------------------
# parsing helpers
# ----------------------------------------------------------------------
def _bool_attr(el: ET.Element, name: str, default: bool = False) -> bool:
    raw = el.get(name)
    if raw is None:
        return default
    return raw.strip().lower() in ("yes", "true", "1")


def _int_attr(el: ET.Element, name: str, default: int | None = None) -> int | None:
    raw = el.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise SpecificationError(f"attribute {name}={raw!r} is not an integer") from None


def _parse_static_value(text: str, type_name: str):
    text = text.strip()
    t = type_name.strip().lower()
    if t in ("integer", "uinteger", "unsigned", "timestamp"):
        return int(text)
    if t in ("float", "double"):
        return float(text)
    if t in ("boolean", "bool"):
        return text.lower() in ("true", "yes", "1")
    return text


def _parse_field(fel: ET.Element) -> FieldDef:
    name = fel.get("name")
    if not name:
        raise SpecificationError("<field> needs a name attribute")
    tel = fel.find("type")
    if tel is None or not (tel.text or "").strip():
        raise SpecificationError(f"field {name!r} needs a <type> child")
    type_name = (tel.text or "").strip()
    length = _int_attr(tel, "length")
    ftype = resolve_type(type_name, length)
    vel = fel.find("value")
    if vel is not None:
        value = _parse_static_value(vel.text or "", type_name)
        return FieldDef(name=name, ftype=ftype, static=True, static_value=value)
    return FieldDef(name=name, ftype=ftype)


def _parse_element(eel: ET.Element) -> ElementDef:
    name = eel.get("name")
    if not name:
        raise SpecificationError("<element> needs a name attribute")
    fields = tuple(_parse_field(f) for f in eel.findall("field"))
    semantics = Semantics(eel.get("semantics", "state"))
    return ElementDef(
        name=name,
        fields=fields,
        key=_bool_attr(eel, "key"),
        convertible=_bool_attr(eel, "conv"),
        semantics=semantics,
    )


def _parse_message(mel: ET.Element) -> MessageType:
    name = mel.get("name")
    if not name:
        raise SpecificationError("<message> needs a name attribute")
    elements = tuple(_parse_element(e) for e in mel.findall("element"))
    return MessageType(name=name, elements=elements)


def _parse_transition(tel: ET.Element) -> Transition:
    sel, gel = tel.find("source"), tel.find("target")
    if sel is None or gel is None:
        raise SpecificationError("<transition> needs <source> and <target>")
    source, target = sel.get("name"), gel.get("name")
    if not source or not target:
        raise SpecificationError("<source>/<target> need name attributes")
    guard = Guard()
    assignments: tuple[Assignment, ...] = ()
    action = PortAction.parse("")
    for label in tel.findall("label"):
        kind = (label.get("type") or "").strip().lower()
        body = (label.text or "").strip()
        if kind == "guard":
            guard = Guard.parse(body)
        elif kind == "assignment":
            assignments = Assignment.parse_list(body)
        elif kind in ("port", "sync"):
            action = PortAction.parse(body)
        elif kind:
            raise SpecificationError(f"unknown label type {kind!r}")
    return Transition(source=source, target=target, guard=guard, action=action,
                      assignments=assignments)


def _parse_automaton(ael: ET.Element, parameters: Mapping[str, int | float]) -> TimedAutomaton:
    name = ael.get("name")
    if not name:
        raise SpecificationError("<timedautomaton> needs a name attribute")
    locations = tuple(
        loc.get("name") or _missing("location name") for loc in ael.findall("location")
    )
    init_el = ael.find("init")
    if init_el is None or not init_el.get("name"):
        raise SpecificationError(f"automaton {name!r} needs an <init name=.../>")
    error_el = ael.find("error")
    error = error_el.get("name") if error_el is not None else None
    transitions = tuple(_parse_transition(t) for t in ael.findall("transition"))
    clocks_attr = (ael.get("clocks") or "x").strip()
    clocks = tuple(c.strip() for c in clocks_attr.split(",") if c.strip())
    # Parameters referenced in guards but not bound anywhere stay
    # unresolved until runtime; bind what the caller supplied plus any
    # <parameter> children already collected by the caller.
    local_params = dict(parameters)
    return TimedAutomaton(
        name=name,
        locations=locations,
        initial=init_el.get("name"),  # type: ignore[arg-type]
        error=error,
        transitions=transitions,
        clocks=clocks,
        parameters=local_params,
    )


def _missing(what: str) -> str:
    raise SpecificationError(f"missing {what}")


def _parse_transfer(tel: ET.Element) -> TransferSemantics:
    elements: list[DerivedElement] = []
    for eel in tel.findall("element"):
        name = eel.get("name")
        if not name:
            raise SpecificationError("<transfersemantics><element> needs a name")
        fields: list[DerivedField] = []
        for fel in eel.findall("field"):
            fname = fel.get("name")
            if not fname:
                raise SpecificationError(f"derived element {name!r}: field needs a name")
            rule = (fel.text or "").strip()
            if not rule:
                raise SpecificationError(f"derived field {fname!r} needs a rule body")
            semantics = Semantics(fel.get("semantics", "state"))
            init_raw = fel.get("init", "0")
            try:
                init = int(init_raw)
            except ValueError:
                try:
                    init = float(init_raw)  # type: ignore[assignment]
                except ValueError:
                    init = init_raw  # type: ignore[assignment]
            fields.append(DerivedField.parse(fname, rule, semantics=semantics, init=init))
        elements.append(
            DerivedElement(name=name, fields=tuple(fields), source_element=eel.get("source"))
        )
    return TransferSemantics(elements=tuple(elements))


def _parse_port(pel: ET.Element, messages: Mapping[str, MessageType]) -> PortSpec:
    mname = pel.get("message")
    if not mname or mname not in messages:
        raise SpecificationError(f"<port> references unknown message {mname!r}")
    direction = Direction(pel.get("direction", "input"))
    control = ControlParadigm(pel.get("control", "event-triggered"))
    semantics = Semantics(pel.get("semantics", "state"))
    interaction = InteractionType(pel.get("interaction", "push"))
    tt = None
    ttel = pel.find("tt")
    if ttel is not None:
        tt = TTTiming(
            period=_int_attr(ttel, "period", 0),
            phase=_int_attr(ttel, "phase", 0),
            jitter=_int_attr(ttel, "jitter", 0),
        )
    et = None
    etel = pel.find("et")
    if etel is not None:
        # NB: plain defaults, not ``x or default`` — a legitimate 0
        # (e.g. max="0") is falsy and must survive the round trip.
        et = ETTiming(
            min_interarrival=_int_attr(etel, "min", 0),
            max_interarrival=_int_attr(etel, "max", 2**63 - 1),
            service_time=_int_attr(etel, "service", 0),
            distribution=etel.get("distribution", "poisson"),
        )
    return PortSpec(
        message_type=messages[mname],
        direction=direction,
        semantics=semantics,
        control=control,
        interaction=interaction,
        tt=tt,
        et=et,
        queue_depth=_int_attr(pel, "queue", 1),
        temporal_accuracy=_int_attr(pel, "dacc"),
    )


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def parse_link_spec(
    text: str,
    parameters: Mapping[str, int | float] | None = None,
    default_control: ControlParadigm = ControlParadigm.EVENT_TRIGGERED,
) -> LinkSpec:
    """Parse a (possibly paper-verbatim) ``<linkspec>`` document.

    ``parameters`` binds automata constants the document references but
    does not define (Fig. 6 leaves ``tmin``/``tmax`` unbound).  When the
    document declares no ``<port>`` blocks, ports are derived from the
    automata's ``m?``/``m!`` labels — and any message never named by an
    automaton becomes a push input port under ``default_control``.
    """
    try:
        root = ET.fromstring(lenient_xml(text))
    except ET.ParseError as exc:
        raise SpecificationError(f"link specification is not parseable XML: {exc}") from exc
    if root.tag != "linkspec":
        raise SpecificationError(f"expected <linkspec> root, got <{root.tag}>")

    das_el = root.find("das")
    das = (das_el.text or "").strip() if das_el is not None else ""

    messages: dict[str, MessageType] = {}
    for mel in root.findall("message"):
        mt = _parse_message(mel)
        if mt.name in messages:
            raise SpecificationError(f"duplicate message {mt.name!r} in link spec")
        messages[mt.name] = mt

    params: dict[str, int | float] = dict(parameters or {})
    for pel in root.findall("parameter"):
        pname = pel.get("name")
        raw = pel.get("value")
        if not pname or raw is None:
            raise SpecificationError("<parameter> needs name and value")
        params[pname] = float(raw) if "." in raw else int(raw)

    automata = tuple(_parse_automaton(a, params) for a in root.findall("timedautomaton"))

    transfer = TransferSemantics()
    tel = root.find("transfersemantics")
    if tel is not None:
        transfer = _parse_transfer(tel)

    explicit_ports = tuple(_parse_port(p, messages) for p in root.findall("port"))
    if explicit_ports:
        ports = explicit_ports
    else:
        ports = _derive_ports(messages, automata, default_control)

    return LinkSpec(das=das, ports=ports, automata=automata, transfer=transfer)


def _derive_ports(
    messages: Mapping[str, MessageType],
    automata: tuple[TimedAutomaton, ...],
    default_control: ControlParadigm,
) -> tuple[PortSpec, ...]:
    received: set[str] = set()
    sent: set[str] = set()
    for a in automata:
        received |= a.receive_messages()
        sent |= a.send_messages()
    ports: list[PortSpec] = []
    for name, mt in messages.items():
        direction = Direction.OUTPUT if name in sent and name not in received else Direction.INPUT
        conv = mt.convertible_elements()
        semantics = conv[0].semantics if conv else Semantics.STATE
        tt = TTTiming(period=10_000_000) if default_control is ControlParadigm.TIME_TRIGGERED else None
        ports.append(
            PortSpec(
                message_type=mt,
                direction=direction,
                semantics=semantics,
                control=default_control,
                tt=tt,
                queue_depth=8 if semantics is Semantics.EVENT else 1,
            )
        )
    return tuple(ports)


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def _type_xml(fdef: FieldDef) -> str:
    ftype = fdef.ftype
    tname = type(ftype).__name__.replace("Type", "").lower()
    mapping = {
        "int": "integer",
        "uint": "uinteger",
        "float": "float",
        "bool": "boolean",
        "timestamp": "timestamp",
        "string": "string",
    }
    name = mapping.get(tname, tname)
    length = getattr(ftype, "length", None)
    if length is not None:
        return f'<type length="{length}">{name}</type>'
    return f"<type>{name}</type>"


def serialize_link_spec(link: LinkSpec) -> str:
    """Render a link specification in the Fig. 6 XML dialect (well-formed)."""
    out: list[str] = ["<linkspec>"]
    out.append(f"  <das>{link.das}</das>")
    for mt in link.message_types().values():
        out.append(f'  <message name="{mt.name}">')
        for e in mt.elements:
            attrs = f' key="{"yes" if e.key else "no"}" conv="{"yes" if e.convertible else "no"}"'
            attrs += f' semantics="{e.semantics.value}"'
            out.append(f'    <element name="{e.name}"{attrs}>')
            for f in e.fields:
                out.append(f'      <field name="{f.name}">')
                out.append(f"        {_type_xml(f)}")
                if f.static:
                    out.append(f"        <value>{f.static_value}</value>")
                out.append("      </field>")
            out.append("    </element>")
        out.append("  </message>")
    for p in link.ports:
        bits = [
            f'message="{p.name}"',
            f'direction="{p.direction.value}"',
            f'control="{p.control.value}"',
            f'semantics="{p.semantics.value}"',
            f'interaction="{p.interaction.value}"',
            f'queue="{p.queue_depth}"',
        ]
        if p.temporal_accuracy is not None:
            bits.append(f'dacc="{p.temporal_accuracy}"')
        out.append(f"  <port {' '.join(bits)}>")
        if p.tt is not None:
            out.append(
                f'    <tt period="{p.tt.period}" phase="{p.tt.phase}" jitter="{p.tt.jitter}"/>'
            )
        if p.et is not None:
            out.append(
                f'    <et min="{p.et.min_interarrival}" max="{p.et.max_interarrival}" '
                f'service="{p.et.service_time}" distribution="{p.et.distribution}"/>'
            )
        out.append("  </port>")
    for a in link.automata:
        for pname, pvalue in sorted(a.parameters.items()):
            out.append(f'  <parameter name="{pname}" value="{pvalue}"/>')
    for a in link.automata:
        clocks = ",".join(a.clocks)
        out.append(f'  <timedautomaton name="{a.name}" clocks="{clocks}">')
        for loc in a.locations:
            out.append(f'    <location name="{loc}"/>')
        out.append(f'    <init name="{a.initial}"/>')
        if a.error:
            out.append(f'    <error name="{a.error}"/>')
        for t in a.transitions:
            out.append("    <transition>")
            out.append(f'      <source name="{t.source}"/><target name="{t.target}"/>')
            if not t.guard.is_trivial():
                body = str(t.guard).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
                out.append(f'      <label type="guard">{body}</label>')
            if t.assignments:
                body = "; ".join(str(x) for x in t.assignments)
                body = body.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
                out.append(f'      <label type="assignment">{body}</label>')
            if str(t.action):
                out.append(f'      <label type="port">{t.action}</label>')
            out.append("    </transition>")
        out.append("  </timedautomaton>")
    if link.transfer.elements:
        out.append("  <transfersemantics>")
        for de in link.transfer.elements:
            src = f' source="{de.source_element}"' if de.source_element else ""
            out.append(f'    <element name="{de.name}"{src}>')
            for df in de.fields:
                rule = df.rule_text or f"{df.name} := {df.rule_expr}"
                rule = rule.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
                out.append(
                    f'      <field name="{df.name}" init="{df.init}" '
                    f'semantics="{df.semantics.value}">{rule}</field>'
                )
            out.append("    </element>")
        out.append("  </transfersemantics>")
    out.append("</linkspec>")
    return "\n".join(out)
