"""Port specifications (level 1 of the three-level operational spec).

Sec. II-E: "A port is dedicated to the transmission or reception of
message instances of a single message. ... The port specification
captures the syntactic and temporal properties of the message instances
... Only those temporal properties are part of the port specification
which are defined for the port in isolation (local constraints)."

The classification implemented here follows the paper exactly:

* data direction — input vs output,
* information semantics — state vs event (Sec. II-A),
* control paradigm — time-triggered vs event-triggered (Sec. II-E),
* interaction type — the push/pull refinement: *push input* (receiver-
  push), *pull input* (receiver-pull), *push output* (sender-push),
  *pull output* (sender-pull).

Local temporal constraints: for TT ports the period/phase/jitter of the
global send instants; for ET ports the minimum/maximum interarrival and
service times (the probabilistic knowledge of Sec. II-E reduces to these
bounds plus a distribution handle used by workload generators).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import SpecificationError
from ..messaging import MessageType, Semantics

__all__ = [
    "Direction",
    "ControlParadigm",
    "InteractionType",
    "TTTiming",
    "ETTiming",
    "PortSpec",
]


class Direction(str, Enum):
    """Data direction of a port (Sec. II-A)."""

    INPUT = "input"
    OUTPUT = "output"


class ControlParadigm(str, Enum):
    """Time-triggered vs event-triggered control (Sec. II-E)."""

    TIME_TRIGGERED = "time-triggered"
    EVENT_TRIGGERED = "event-triggered"


class InteractionType(str, Enum):
    """Sender/receiver access to the communication system (Sec. II-E)."""

    PUSH = "push"
    PULL = "pull"


@dataclass(frozen=True)
class TTTiming:
    """Temporal spec of a time-triggered port: a priori known instants.

    Message instances occur at global times ``phase + k * period``
    (k = 0, 1, ...), with bounded ``jitter`` around those instants.
    """

    period: int
    phase: int = 0
    jitter: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise SpecificationError(f"TT period must be positive, got {self.period}")
        if not 0 <= self.phase < self.period:
            raise SpecificationError(
                f"TT phase {self.phase} must lie within [0, period={self.period})"
            )
        if self.jitter < 0:
            raise SpecificationError(f"jitter must be non-negative, got {self.jitter}")

    def nominal_instants(self, since: int, until: int) -> list[int]:
        """Scheduled send instants in ``[since, until)``."""
        if until <= since:
            return []
        first_k = max(0, -(-(since - self.phase) // self.period))  # ceil div
        out = []
        k = first_k
        while self.phase + k * self.period < until:
            t = self.phase + k * self.period
            if t >= since:
                out.append(t)
            k += 1
        return out

    def conforms(self, t: int) -> bool:
        """Is ``t`` within jitter of a nominal instant?"""
        if t < self.phase - self.jitter:
            return False
        k = round((t - self.phase) / self.period)
        nominal = self.phase + max(k, 0) * self.period
        return abs(t - nominal) <= self.jitter


@dataclass(frozen=True)
class ETTiming:
    """Temporal spec of an event-triggered port: interarrival bounds.

    ``min_interarrival``/``max_interarrival`` bound the time between
    consecutive instances (the paper's tmin/tmax); ``service_time``
    bounds the receiver-side processing per instance and drives queue
    sizing; ``distribution`` names the stochastic model workload
    generators should use ("poisson", "uniform", "periodic-jitter").
    """

    min_interarrival: int = 0
    max_interarrival: int = 2**63 - 1
    service_time: int = 0
    distribution: str = "poisson"
    mean_interarrival: int | None = None

    def __post_init__(self) -> None:
        if self.min_interarrival < 0:
            raise SpecificationError("min_interarrival must be >= 0")
        if self.max_interarrival < self.min_interarrival:
            raise SpecificationError(
                f"max_interarrival {self.max_interarrival} < "
                f"min_interarrival {self.min_interarrival}"
            )
        if self.service_time < 0:
            raise SpecificationError("service_time must be >= 0")
        mean = self.mean_interarrival
        if mean is not None and not self.min_interarrival <= mean <= self.max_interarrival:
            raise SpecificationError(
                f"mean_interarrival {mean} outside "
                f"[{self.min_interarrival}, {self.max_interarrival}]"
            )

    def conforms(self, interarrival: int) -> bool:
        return self.min_interarrival <= interarrival <= self.max_interarrival

    def suggested_queue_depth(self, margin: float = 2.0) -> int:
        """Queue size from the interarrival/service relationship.

        Sec. IV: "The determination of the queue sizes is derived from
        the relationships between message interarrival and service
        times".  With worst-case burst arrivals every
        ``min_interarrival`` and service every ``service_time``, a
        receiver falls behind by one instance each
        ``min_interarrival`` while a backlog exists; the queue must
        absorb ``service_time / min_interarrival`` instances, padded by
        ``margin`` for the probabilistic tail.
        """
        if self.service_time == 0:
            return 1
        if self.min_interarrival == 0:
            raise SpecificationError(
                "queue sizing needs min_interarrival > 0 when service_time > 0"
            )
        base = -(-self.service_time // self.min_interarrival)  # ceil
        return max(1, int(base * margin))


@dataclass(frozen=True)
class PortSpec:
    """Full specification of one port (level 1, local constraints only)."""

    message_type: MessageType
    direction: Direction
    semantics: Semantics = Semantics.STATE
    control: ControlParadigm = ControlParadigm.EVENT_TRIGGERED
    interaction: InteractionType = InteractionType.PUSH
    tt: TTTiming | None = None
    et: ETTiming | None = None
    queue_depth: int = 1
    temporal_accuracy: int | None = None  # d_acc for state semantics
    #: Arbitration priority on event-triggered VNs (CAN idiom: lower
    #: value wins the bus).  Ignored on time-triggered VNs.
    priority: int = 100
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.control is ControlParadigm.TIME_TRIGGERED and self.tt is None:
            raise SpecificationError(
                f"TT port for {self.message_type.name!r} needs TT timing"
            )
        if self.control is ControlParadigm.EVENT_TRIGGERED and self.et is None:
            object.__setattr__(self, "et", ETTiming())
        if self.semantics is Semantics.EVENT and self.queue_depth < 1:
            raise SpecificationError("event ports need queue_depth >= 1")
        if self.semantics is Semantics.STATE and self.temporal_accuracy is not None:
            if self.temporal_accuracy <= 0:
                raise SpecificationError("temporal_accuracy (d_acc) must be positive")

    @property
    def name(self) -> str:
        """The port is identified by the message it carries."""
        return self.message_type.name

    @property
    def is_input(self) -> bool:
        return self.direction is Direction.INPUT

    @property
    def is_output(self) -> bool:
        return self.direction is Direction.OUTPUT

    def kind(self) -> str:
        """The paper's four-way classification, e.g. ``push input port``."""
        return f"{self.interaction.value} {self.direction.value} port"

    def describe(self) -> str:
        bits = [
            self.kind(),
            self.semantics.value,
            self.control.value,
            f"msg={self.message_type.name}",
        ]
        if self.tt:
            bits.append(f"period={self.tt.period} phase={self.tt.phase}")
        return ", ".join(bits)
