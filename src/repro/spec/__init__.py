"""Interface specifications (substrate S6).

The paper's three-level operational specification (port / link /
virtual network, Sec. II-E), transfer semantics for event↔state
conversion, and the Fig. 6 XML exchange format with a leniency layer
that parses the paper's printed figure verbatim.
"""

from .fig6 import FIG6_CANONICAL, FIG6_TMAX, FIG6_TMIN, FIG6_VERBATIM
from .link_spec import LinkConstraint, LinkSpec, MaxLatencyConstraint
from .port_spec import (
    ControlParadigm,
    Direction,
    ETTiming,
    InteractionType,
    PortSpec,
    TTTiming,
)
from .transfer import ConversionState, DerivedElement, DerivedField, TransferSemantics
from .vn_spec import NetworkConstraint, TransmissionBound, VirtualNetworkSpec
from .xml_io import lenient_xml, parse_link_spec, serialize_link_spec

__all__ = [
    "Direction",
    "ControlParadigm",
    "InteractionType",
    "TTTiming",
    "ETTiming",
    "PortSpec",
    "LinkSpec",
    "LinkConstraint",
    "MaxLatencyConstraint",
    "VirtualNetworkSpec",
    "NetworkConstraint",
    "TransmissionBound",
    "TransferSemantics",
    "DerivedElement",
    "DerivedField",
    "ConversionState",
    "lenient_xml",
    "parse_link_spec",
    "serialize_link_spec",
    "FIG6_VERBATIM",
    "FIG6_CANONICAL",
    "FIG6_TMIN",
    "FIG6_TMAX",
]
