"""Virtual network specifications (level 3 of the operational spec).

Sec. II-E: "The virtual network specification consists of all link
specifications in the DAS and those temporal properties that can be
defined only with respect to ports of more than one job", e.g. the
effect of bandwidth multiplexing between jobs on transmission durations
and jitter.

:class:`VirtualNetworkSpec` therefore aggregates the job links of one
DAS, fixes the control paradigm of the DAS's virtual network, declares
its bandwidth share of the physical network, and carries network-level
constraints (transmission duration/jitter bounds under multiplexing).
It also owns the DAS's :class:`~repro.messaging.naming.Namespace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SpecificationError
from ..messaging import MessageType, Namespace
from .link_spec import LinkSpec
from .port_spec import ControlParadigm, Direction

__all__ = ["NetworkConstraint", "TransmissionBound", "VirtualNetworkSpec"]


@dataclass(frozen=True)
class NetworkConstraint:
    """Base class for VN-level (multi-job) temporal constraints."""

    description: str = ""


@dataclass(frozen=True)
class TransmissionBound(NetworkConstraint):
    """Bound on transmission duration and jitter for one message under
    the multiplexing behaviour of the whole DAS (Sec. II-E, level 3)."""

    message: str = ""
    max_duration: int = 0
    max_jitter: int = 0

    def __post_init__(self) -> None:
        if not self.message:
            raise SpecificationError("transmission bound needs a message name")
        if self.max_duration <= 0:
            raise SpecificationError("max_duration must be positive")
        if self.max_jitter < 0:
            raise SpecificationError("max_jitter must be non-negative")


@dataclass
class VirtualNetworkSpec:
    """Level-3 specification: the whole DAS's communication behaviour."""

    das: str
    control: ControlParadigm
    links: tuple[LinkSpec, ...] = ()
    bandwidth_share: float = 0.0
    constraints: tuple[NetworkConstraint, ...] = ()
    namespace: Namespace = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.namespace is None:
            self.namespace = Namespace(self.das)
        if not 0.0 <= self.bandwidth_share <= 1.0:
            raise SpecificationError(
                f"bandwidth_share must be in [0, 1], got {self.bandwidth_share}"
            )
        for link in self.links:
            if link.das != self.das:
                raise SpecificationError(
                    f"link for DAS {link.das!r} attached to VN spec of {self.das!r}"
                )
        self._register_messages()
        self._check_connectivity()

    # ------------------------------------------------------------------
    def _register_messages(self) -> None:
        """Register every message type in the DAS namespace (once)."""
        for link in self.links:
            for mtype in link.message_types().values():
                if mtype.name not in self.namespace:
                    self.namespace.register(mtype)
                else:
                    existing = self.namespace.lookup(mtype.name)
                    if existing.elements != mtype.elements:
                        raise SpecificationError(
                            f"message {mtype.name!r} declared with conflicting "
                            f"structures within DAS {self.das!r}"
                        )

    def _check_connectivity(self) -> None:
        """Every input port needs a producer within the DAS or a gateway.

        We only *warn* via :meth:`unmatched_inputs` rather than reject:
        the producer may be a gateway attached later.
        """

    def unmatched_inputs(self) -> list[str]:
        """Messages consumed by some job but produced by none (candidates
        for gateway import)."""
        produced: set[str] = set()
        consumed: set[str] = set()
        for link in self.links:
            for p in link.ports:
                if p.direction is Direction.OUTPUT:
                    produced.add(p.name)
                else:
                    consumed.add(p.name)
        return sorted(consumed - produced)

    def exported_candidates(self) -> list[str]:
        """Messages produced within the DAS (candidates for gateway export)."""
        produced: set[str] = set()
        for link in self.links:
            for p in link.ports:
                if p.direction is Direction.OUTPUT:
                    produced.add(p.name)
        return sorted(produced)

    # ------------------------------------------------------------------
    def link_for_job(self, index: int) -> LinkSpec:
        return self.links[index]

    def message_type(self, name: str) -> MessageType:
        return self.namespace.lookup(name)

    def all_port_specs(self):
        for link in self.links:
            yield from link.ports

    def validate_control_paradigm(self) -> list[str]:
        """TT VNs must have TT ports; ET VNs must have ET ports.

        "A virtual network ... runs a communication protocol tailored to
        the needs of the respective DAS" — mixing paradigms within one
        VN is a specification error the designer should see.
        """
        problems = []
        for link in self.links:
            for p in link.ports:
                if p.control is not self.control:
                    problems.append(
                        f"port {p.name!r} is {p.control.value} but VN "
                        f"{self.das!r} is {self.control.value}"
                    )
        return problems
