"""Link specifications (level 2) and their global constraints.

Sec. II-E: "The link of a job consists of the ports provided to the
job.  The link specification contains the respective port specifications
and additional temporal properties that can be defined only with respect
to multiple ports of the job (global constraints).  An example ... a
statement for the latency between the reception of a request message at
an input port and the transmission of the corresponding reply message at
an output port."

For the virtual gateway (Sec. IV-B) the link specification additionally
carries the **temporal part** (deterministic timed automata driving the
port protocol) and the **transfer semantics** (event↔state conversion
rules).  Both are optional for plain job links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata import TimedAutomaton
from ..errors import SpecificationError
from ..messaging import MessageType
from .port_spec import Direction, PortSpec
from .transfer import TransferSemantics

__all__ = ["LinkConstraint", "MaxLatencyConstraint", "LinkSpec"]


@dataclass(frozen=True)
class LinkConstraint:
    """Base class for global (multi-port) temporal constraints."""

    description: str = ""

    def ports(self) -> tuple[str, ...]:
        """Names of the ports this constraint spans."""
        return ()


@dataclass(frozen=True)
class MaxLatencyConstraint(LinkConstraint):
    """Bound on request→reply latency across two ports of one link."""

    input_port: str = ""
    output_port: str = ""
    max_latency: int = 0

    def __post_init__(self) -> None:
        if not self.input_port or not self.output_port:
            raise SpecificationError("latency constraint needs both port names")
        if self.max_latency <= 0:
            raise SpecificationError("max_latency must be positive")

    def ports(self) -> tuple[str, ...]:
        return (self.input_port, self.output_port)

    def check(self, request_time: int, reply_time: int) -> bool:
        return 0 <= reply_time - request_time <= self.max_latency


@dataclass
class LinkSpec:
    """All ports of one job (or one gateway side), plus link-level parts."""

    das: str
    ports: tuple[PortSpec, ...] = ()
    automata: tuple[TimedAutomaton, ...] = ()
    transfer: TransferSemantics = field(default_factory=TransferSemantics)
    constraints: tuple[LinkConstraint, ...] = ()

    def __post_init__(self) -> None:
        names = [p.name for p in self.ports]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate port (message) names in link: {names}")
        port_names = set(names)
        for c in self.constraints:
            for pname in c.ports():
                if pname not in port_names:
                    raise SpecificationError(
                        f"constraint references unknown port {pname!r}"
                    )
        auto_names = [a.name for a in self.automata]
        if len(set(auto_names)) != len(auto_names):
            raise SpecificationError(f"duplicate automaton names: {auto_names}")

    # ------------------------------------------------------------------
    def port(self, name: str) -> PortSpec:
        for p in self.ports:
            if p.name == name:
                return p
        raise SpecificationError(f"link for DAS {self.das!r} has no port {name!r}")

    def has_port(self, name: str) -> bool:
        return any(p.name == name for p in self.ports)

    def input_ports(self) -> tuple[PortSpec, ...]:
        return tuple(p for p in self.ports if p.direction is Direction.INPUT)

    def output_ports(self) -> tuple[PortSpec, ...]:
        return tuple(p for p in self.ports if p.direction is Direction.OUTPUT)

    def message_types(self) -> dict[str, MessageType]:
        return {p.name: p.message_type for p in self.ports}

    def automaton(self, name: str) -> TimedAutomaton:
        for a in self.automata:
            if a.name == name:
                return a
        raise SpecificationError(f"no automaton {name!r} in link for {self.das!r}")

    def automaton_for_message(self, message: str) -> TimedAutomaton | None:
        """The automaton that handles ``message`` (receives or sends it)."""
        for a in self.automata:
            if message in a.receive_messages() or message in a.send_messages():
                return a
        return None

    # ------------------------------------------------------------------
    def convertible_element_names(self) -> set[str]:
        """All convertible element names visible through this link.

        Union over the ports' message types of their convertible
        elements, plus the derived elements of the transfer semantics —
        the vocabulary the gateway repository must provide buffers for.
        """
        out: set[str] = set()
        for p in self.ports:
            for e in p.message_type.convertible_elements():
                out.add(e.name)
        out.update(self.transfer.names())
        return out

    def validate_against_automata(self) -> list[str]:
        """Cross-check: every automaton message must have a port; returns
        a list of human-readable problems (empty = consistent)."""
        problems: list[str] = []
        port_names = {p.name for p in self.ports}
        for a in self.automata:
            for m in a.receive_messages():
                if m not in port_names:
                    problems.append(f"automaton {a.name!r} receives unknown message {m!r}")
                elif self.port(m).direction is not Direction.INPUT:
                    problems.append(f"automaton {a.name!r} receives on non-input port {m!r}")
            for m in a.send_messages():
                if m not in port_names:
                    problems.append(f"automaton {a.name!r} sends unknown message {m!r}")
                elif self.port(m).direction is not Direction.OUTPUT:
                    problems.append(f"automaton {a.name!r} sends on non-output port {m!r}")
        return problems
