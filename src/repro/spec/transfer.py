"""Transfer semantics: conversion between event and state semantics.

Third part of the link specification (Sec. IV-B): "The transfer
semantics specify the information semantics of convertible elements and
provide rules for the conversion of convertible elements between state
and event semantics."

Fig. 6 defines the canonical example::

    <transfersemantics>
      <element name="MovementState">
        <field name="StateValue" init=0 semantics="state">
          StateValue=StateValue+ValueChange
        </field>
        <field name="ObservationTime" semantics="state">
          ObservationTime=EventTime
        </field>
      </element>
    </transfersemantics>

Each :class:`DerivedField` rule is an assignment whose right-hand side
may reference the derived field itself (accumulation) and the fields of
the *source* convertible element instance being applied.  Applying an
event instance to the derived state realizes **event→state** conversion;
the reverse direction (**state→event**) is expressed with the built-in
``prev(fieldname)`` function, which yields the previous applied value of
a source field, so e.g. ``ValueChange = StateValue - prev(StateValue)``
emits relative values from absolute ones.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from ..automata.expr import EvalContext, Expr, parse_assignment
from ..errors import SpecificationError
from ..messaging import Semantics

__all__ = ["DerivedField", "DerivedElement", "TransferSemantics", "ConversionState"]


@dataclass(frozen=True)
class DerivedField:
    """One field of a derived convertible element with its update rule."""

    name: str
    rule_target: str
    rule_expr: Expr
    semantics: Semantics = Semantics.STATE
    init: Any = 0
    rule_text: str = ""

    @classmethod
    def parse(
        cls,
        name: str,
        rule: str,
        semantics: Semantics = Semantics.STATE,
        init: Any = 0,
    ) -> "DerivedField":
        target, expr = parse_assignment(rule)
        # Case-insensitive match: PDF transcriptions of the paper's
        # Fig. 6 lowercase attribute values but keep rule bodies cased.
        if target.lower() != name.lower():
            raise SpecificationError(
                f"rule for field {name!r} assigns to {target!r}; "
                "the rule target must be the field itself"
            )
        return cls(
            name=name,
            rule_target=target,
            rule_expr=expr,
            semantics=semantics,
            init=init,
            rule_text=rule,
        )


@dataclass(frozen=True)
class DerivedElement:
    """A derived convertible element computed from a source element."""

    name: str
    fields: tuple[DerivedField, ...]
    source_element: str | None = None

    def __post_init__(self) -> None:
        if not self.fields:
            raise SpecificationError(f"derived element {self.name!r} needs fields")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate derived fields in {self.name!r}")


class ConversionState:
    """Mutable evaluation state for one derived element instance.

    Holds the current derived field values (initialized from ``init``)
    and the previous source-field values backing ``prev()``.
    """

    def __init__(self, element: DerivedElement) -> None:
        self.element = element
        self.values: dict[str, Any] = {f.name: f.init for f in element.fields}
        self._prev_source: dict[str, Any] = {}
        self.applications = 0
        self.last_applied_at: int | None = None

    def apply(self, source_fields: Mapping[str, Any], now: int | None = None) -> dict[str, Any]:
        """Apply one source element instance; returns the new derived values.

        Rules are evaluated against (in priority order) the *current*
        derived values, then the source instance's fields; ``prev(f)``
        resolves to the previously applied value of source field ``f``
        (or source field default 0 on first application).
        """

        def prev(name: Any) -> Any:
            return self._prev_source.get(str(name), 0)

        prev.takes_names = True  # special form: receives the identifier

        # Rules run in declaration order and see earlier rules' results
        # (sequential update, matching the XML's top-to-bottom reading).
        new_values = dict(self.values)
        for f in self.element.fields:
            # Derived values shadow source fields on name collision so
            # that accumulation rules (StateValue=StateValue+...) always
            # read the element's own running value.
            ctx = EvalContext(
                new_values,
                dict(source_fields),
                functions={"prev": prev},
                bareword_fallback=True,
            )
            new_values[f.name] = f.rule_expr.evaluate(ctx)
        self.values = new_values
        self._prev_source = dict(source_fields)
        self.applications += 1
        self.last_applied_at = now
        return dict(self.values)

    def reset(self) -> None:
        self.values = {f.name: f.init for f in self.element.fields}
        self._prev_source = {}
        self.applications = 0
        self.last_applied_at = None


@dataclass
class TransferSemantics:
    """All conversion rules of one link specification."""

    elements: tuple[DerivedElement, ...] = ()
    _by_name: dict[str, DerivedElement] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        names = [e.name for e in self.elements]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate derived elements: {names}")
        self._by_name = {e.name: e for e in self.elements}

    def derived(self, name: str) -> DerivedElement:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecificationError(f"no derived element {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        return sorted(self._by_name)

    def sources_for(self, derived_name: str) -> set[str]:
        """Source-element field names referenced by a derived element's rules."""
        el = self.derived(derived_name)
        # Exclude both the declared field names and the rule targets
        # (they may differ in case in PDF-transcribed specifications).
        own = {f.name for f in el.fields} | {f.rule_target for f in el.fields}
        own_lower = {n.lower() for n in own}
        refs: set[str] = set()
        for f in el.fields:
            refs |= f.rule_expr.variables()
        return {r for r in refs if r.lower() not in own_lower}

    def new_state(self, derived_name: str) -> ConversionState:
        return ConversionState(self.derived(derived_name))
