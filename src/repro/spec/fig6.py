"""The paper's Figure 6 link specification, verbatim and reconstructed.

``FIG6_VERBATIM`` is the XML exactly as printed in the paper (including
its well-formedness defects: unquoted attribute values, raw ``<``/``>``
in guard bodies, and the lowercased identifiers introduced by the PDF
transcription).  It exists to demonstrate that
:func:`repro.spec.xml_io.parse_link_spec` accepts the paper's artifact
as-is.

``FIG6_CANONICAL`` is the faithful reconstruction used by the runtime
experiments (E7): identifier casing restored from the paper's prose
(``msgSlidingRoof``, ``MovementEvent``, ``ValueChange``, ``EventTime``,
``FullClosure``, ``MovementState``), the ``m?`` port-interaction labels
restored on the reception automaton's edges (the printed figure lost its
sync labels in transcription — Sec. IV-B.2 defines them), event
semantics marked on ``MovementEvent`` (the prose: "contains event
information about the movement of a car's sliding roof"), and the
``tmin``/``tmax`` parameters bound to concrete values via
``<parameter>`` blocks (the figure leaves them symbolic).

Automaton reconstruction (documented deviation): the printed figure's
``statePassive -> stateError`` edge with an empty guard is restored as
the *too-early reception* detector (``m?`` with ``x < tmin``), and the
clock reset ``x := 0`` is placed on the legal reception edge so ``x``
measures interarrival time — the only reading under which the printed
guards (``x>=tmin`` to accept, ``x>=tmax`` to error) form a
deterministic interarrival monitor.
"""

from __future__ import annotations

FIG6_VERBATIM = """\
<linkspec>
<das>X-by-wire</das>
<message name="msgslidingroof">
<element name="name" key="yes" conv="no">
<field name="id">
<type length=16>integer</type>
<value>731</value>
</field>
</element>
<element name="movementevent" key="no" conv="yes">
<field name="valuechange"><type length=16>integer</type></field>
<field name="eventtime"><type length=16>timestamp</type></field>
</element>
<element name="fullclosure" key="no" conv="no">
<field name="trigger"><type>boolean</type></field>
</element>
</message>
<timedautomaton name="msgslidingroofreception">
<location name="statepassive"/>
<location name="stateactive"/>
<location name="stateerror"/>
<init name="statepassive"/>
<error name="stateerror"/>
<transition>
<source name="statepassive"/><target name="stateactive"/>
<label type="guard">x>=tmin</label></transition>
<transition>
<source name="stateactive"/><target name="statepassive"/>
<label type="guard">x<tmax </label>
<label type="assignment"></label>
</transition>
<transition>
<source name="stateactive"/><target name="stateerror"/>
<label type="guard">x>=tmax</label>
</transition>
<transition>
<source name="statepassive"/><target name="stateerror"/>
<label type="guard"></label>
</transition>
<transition>
<source name="statepassive"/><target name="statepassive"/>
<label type="guard">x<tmin, ~</label>
</transition>
<transition>
<source name="stateactive"/><target name="stateactive"/>
<label type="guard">x<tmax, ~</label>
</transition>
</timedautomaton>
<transfersemantics>
<element name="movementstate">
<field name="statevalue" init=0 semantics="state">
StateValue=StateValue+ValueChange
</field>
<field name="observationtime" semantics="state">
ObservationTime=EventTime
</field>
</element>
</transfersemantics>
</linkspec>
"""

#: tmin/tmax values used by the canonical reconstruction (ns): the
#: comfort DAS sends roof movement events no closer than 2 ms apart and
#: at least every 50 ms while the roof moves.
FIG6_TMIN = 2_000_000
FIG6_TMAX = 50_000_000

FIG6_CANONICAL = f"""\
<linkspec>
  <das>comfort</das>
  <message name="msgSlidingRoof">
    <element name="Name" key="yes" conv="no">
      <field name="ID">
        <type length="16">integer</type>
        <value>731</value>
      </field>
    </element>
    <element name="MovementEvent" key="no" conv="yes" semantics="event">
      <field name="ValueChange"><type length="16">integer</type></field>
      <field name="EventTime"><type length="16">timestamp</type></field>
    </element>
    <element name="FullClosure" key="no" conv="no">
      <field name="Trigger"><type>boolean</type></field>
    </element>
  </message>
  <parameter name="tmin" value="{FIG6_TMIN}"/>
  <parameter name="tmax" value="{FIG6_TMAX}"/>
  <timedautomaton name="msgSlidingRoofReception">
    <location name="statePassive"/>
    <location name="stateActive"/>
    <location name="stateError"/>
    <init name="statePassive"/>
    <error name="stateError"/>
    <transition>
      <source name="statePassive"/><target name="stateActive"/>
      <label type="guard">x&gt;=tmin</label>
      <label type="assignment">x := 0</label>
      <label type="port">msgSlidingRoof?</label>
    </transition>
    <transition>
      <source name="statePassive"/><target name="stateError"/>
      <label type="guard">x&lt;tmin</label>
      <label type="port">msgSlidingRoof?</label>
    </transition>
    <transition>
      <source name="stateActive"/><target name="statePassive"/>
      <label type="guard">x&lt;tmax</label>
    </transition>
    <transition>
      <source name="statePassive"/><target name="stateError"/>
      <label type="guard">x&gt;=tmax</label>
    </transition>
  </timedautomaton>
  <transfersemantics>
    <element name="MovementState" source="MovementEvent">
      <field name="StateValue" init="0" semantics="state">StateValue=StateValue+ValueChange</field>
      <field name="ObservationTime" init="0" semantics="state">ObservationTime=EventTime</field>
    </element>
  </transfersemantics>
</linkspec>
"""
