"""Exception hierarchy for the DECOS reproduction library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler
while still discriminating subsystem-specific failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SimulationError",
    "SchedulingError",
    "ConfigurationError",
    "PreflightError",
    "SpecificationError",
    "CodecError",
    "NamingError",
    "AutomatonError",
    "GuardParseError",
    "PortError",
    "QueueOverflowError",
    "TemporalViolationError",
    "GatewayError",
    "PartitionViolationError",
    "FaultInjectionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class SchedulingError(ReproError):
    """Raised when a TDMA or partition schedule is inconsistent."""


class ConfigurationError(ReproError):
    """Raised when a system model is assembled inconsistently."""


class PreflightError(ConfigurationError):
    """Raised when the static pre-flight check rejects a configuration."""


class SpecificationError(ReproError):
    """Raised when an interface specification is invalid or violated."""


class CodecError(ReproError):
    """Raised when a message cannot be encoded or decoded."""


class NamingError(ReproError):
    """Raised for namespace violations (duplicate or unknown names)."""


class AutomatonError(ReproError):
    """Raised for structurally invalid timed automata."""


class GuardParseError(AutomatonError):
    """Raised when a guard/assignment expression cannot be parsed."""


class PortError(ReproError):
    """Raised for invalid port usage (direction, semantics mismatch)."""


class QueueOverflowError(PortError):
    """Raised when an event port queue exceeds its configured depth."""


class TemporalViolationError(ReproError):
    """Raised (or recorded) when a temporal specification is violated."""


class GatewayError(ReproError):
    """Raised for invalid virtual-gateway configuration or operation."""


class PartitionViolationError(ReproError):
    """Raised when a job violates its partition's resource envelope."""


class FaultInjectionError(ReproError):
    """Raised for invalid fault-injection campaign configuration."""
