"""Communication controller — the CNI between a component and the bus.

Each component owns one controller.  The controller

* acts at the TDMA instants *of its own local clock* (so clock drift is
  visible end-to-end and clock sync is load-bearing, not decorative),
* at each of its slots, drains the per-VN transmit queues into a frame
  within the slot's byte reservations (bandwidth partitioning between
  virtual networks — the encapsulation service's physical half),
* on every received frame, feeds the sync service a deviation estimate,
  feeds the membership service the liveness observation, and delivers
  the frame's chunks to the VN dispatchers registered for each chunk's
  virtual network (visibility control: a chunk of VN "abs" never
  reaches a dispatcher of VN "comfort"),
* at each cluster-cycle boundary, resynchronizes its clock (C2) and
  folds the cycle's observations into membership (C4).

Fault-injection hooks (used by :mod:`repro.faults`): ``crashed``
silences the controller; ``omit_cycles`` drops whole cycles;
``send_offset`` shifts transmission instants (timing failure at the
physical level — what the guardian catches); ``chunk_corruptor``
rewrites outgoing chunks (value failures); :meth:`force_transmit`
transmits immediately regardless of the schedule (babbling idiot).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable

from ..errors import ConfigurationError, SchedulingError
from ..sim import EventPriority, LocalClock, Process, Simulator, TraceCategory
from .bus import PhysicalBus
from .frame import FrameChunk, FrameKind, PhysicalFrame
from .membership import MembershipService
from .schedule import Slot, TDMASchedule
from .sync import FTAClockSync

__all__ = ["CommunicationController"]

ChunkReceiver = Callable[[FrameChunk, int], None]


class CommunicationController(Process):
    """One component's interface to the time-triggered core network."""

    priority = EventPriority.CONTROLLER

    def __init__(
        self,
        sim: Simulator,
        component: str,
        bus: PhysicalBus,
        schedule: TDMASchedule,
        clock: LocalClock | None = None,
        sync_k: int = 1,
        membership_threshold: int = 2,
    ) -> None:
        super().__init__(sim, f"ctrl.{component}")
        self.component = component
        self.bus = bus
        self.schedule = schedule
        self.clock = clock if clock is not None else LocalClock()
        self.sync = FTAClockSync(self.clock, k=sync_k)
        self.membership = MembershipService(
            sim, component, tuple(schedule.senders()), fail_threshold=membership_threshold
        )
        if component not in schedule.senders():
            raise ConfigurationError(f"{component!r} owns no slot in the schedule")
        # Precompiled per-cycle timeline: this component's slots and
        # their in-cycle offsets never change, so compute the table once
        # instead of re-deriving it for every cycle.
        self._own_slots: tuple[tuple[Slot, int], ...] = tuple(
            (slot, slot.offset) for slot in schedule.slots_of(component)
        )
        self._cycle_length = schedule.cycle_length
        # Precomputed per-slot dispatch table: guard closure and label
        # are built once instead of per cycle (the schedule-loop used to
        # allocate one lambda + one f-string per slot per cycle).  The
        # callbacks read ``self._cycle`` at fire time, which also makes
        # them translation-invariant — a requirement for round-template
        # fast-forward, which shifts pending events in time.
        self._slot_dispatch: tuple[tuple[int, Callable[[], None], str], ...] = tuple(
            (offset, self._guarded(lambda s=slot: self._slot_action(s)),
             f"{self.name}.slot{slot.slot_id}")
            for slot, offset in self._own_slots
        )
        self._cycle_end_cb = self._guarded(self._end_of_cycle)
        self._cycle_end_label = f"{self.name}.cycle_end"
        self._tx: dict[str, deque[FrameChunk]] = {}
        self._chunk_sources: dict[str, Callable[[Slot, int], list[FrameChunk]]] = {}
        self._receivers: dict[str, list[ChunkReceiver]] = {}
        self._frame_listeners: list[Callable[[PhysicalFrame, int], None]] = []
        self._cycle = 0
        # fault hooks -------------------------------------------------
        self.crashed = False
        self.omit_cycles = 0
        self.send_offset = 0
        self.chunk_corruptor: Callable[[FrameChunk], FrameChunk] | None = None
        # statistics --------------------------------------------------
        self.frames_transmitted = 0
        self.frames_received = 0
        self.frames_dropped_corrupt = 0
        self.chunks_delivered = 0
        self.chunks_enqueued = 0
        self.tx_overflow = 0
        m = sim.metrics
        self._m_rx = m.counter("ctrl.frames_rx")
        self._m_rx_corrupt = m.counter("ctrl.frames_dropped_corrupt")
        self._m_chunks = m.counter("ctrl.chunks_delivered")
        self._m_sync = m.counter("ctrl.sync_rounds")
        self._m_overflow = m.counter("ctrl.tx_overflow")
        bus.attach(self)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def on_start(self) -> None:
        self._schedule_cycle()

    def _ref_for_local(self, local_t: int) -> int:
        """Reference instant when the local clock reads ``local_t``;
        clamped to *now* if the instant has already passed (e.g. after a
        large negative sync correction or a fault-injected offset)."""
        from ..errors import SimulationError

        try:
            return self.clock.ref_time_for_local(max(local_t, 0), self.sim.now)
        except SimulationError:
            return self.sim.now

    def _schedule_cycle(self) -> None:
        """Schedule the current cycle's slot actions and cycle-end event,
        all at instants where the *local* clock reads the TDMA times.

        The scheduled callbacks are the precomputed guarded closures
        from ``__init__``; they read ``self._cycle`` when they fire
        rather than capturing the cycle number here, so a pending cycle
        chain stays valid if fast-forward translates it in time.
        """
        sim = self.sim
        priority = self.priority
        cycle_start_local = self._cycle * self._cycle_length
        send_offset = self.send_offset
        for offset, action, label in self._slot_dispatch:
            local_t = cycle_start_local + offset + send_offset
            sim.at(self._ref_for_local(local_t), action,
                   priority=priority, label=label)
        end_local = cycle_start_local + self._cycle_length
        sim.at(self._ref_for_local(end_local), self._cycle_end_cb,
               priority=priority, label=self._cycle_end_label)

    def _end_of_cycle(self) -> None:
        cycle = self._cycle
        self.sync.resynchronize(self.sim.now)
        self.membership.end_of_cycle()
        self._m_sync.inc()
        tr = self.sim.trace
        if tr.wants(TraceCategory.SYNC_ROUND):
            self.trace(TraceCategory.SYNC_ROUND, cycle=cycle,
                       correction=self.sync.last_correction)
        else:
            tr.tick(TraceCategory.SYNC_ROUND)
        self._cycle = cycle + 1
        self._schedule_cycle()

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------
    def enqueue_chunk(self, chunk: FrameChunk, max_queue: int = 1024) -> bool:
        """Queue a chunk for transmission in this component's next slot
        with room for the chunk's VN; returns False on queue overflow."""
        q = self._tx.setdefault(chunk.vn, deque())
        if len(q) >= max_queue:
            self.tx_overflow += 1
            self._m_overflow.inc()
            return False
        q.append(chunk)
        self.chunks_enqueued += 1
        return True

    def pending_chunks(self, vn: str | None = None) -> int:
        if vn is not None:
            return len(self._tx.get(vn, ()))
        return sum(len(q) for q in self._tx.values())

    def register_chunk_source(
        self, vn: str, source: Callable[[Slot, int], list[FrameChunk]]
    ) -> None:
        """Install a pull-mode provider for ``vn``'s slot reservations.

        Event-triggered virtual networks use this to run their priority
        arbitration at the moment a slot opens, instead of pre-queueing
        FIFO chunks.  The source receives (slot, byte budget) and must
        return chunks whose total size fits the budget.
        """
        if vn in self._chunk_sources:
            raise ConfigurationError(f"chunk source for VN {vn!r} already registered")
        self._chunk_sources[vn] = source

    def _build_chunks(self, slot: Slot) -> tuple[FrameChunk, ...]:
        """Fill the slot within per-VN reservations (or FIFO if none)."""
        out: list[FrameChunk] = []
        if slot.reservations:
            for vn, budget in slot.reservations.items():
                source = self._chunk_sources.get(vn)
                if source is not None:
                    provided = source(slot, budget)
                    total = sum(c.size_bytes() for c in provided)
                    if total > budget:
                        raise ConfigurationError(
                            f"chunk source for VN {vn!r} returned {total} bytes "
                            f"for a {budget}-byte reservation"
                        )
                    out.extend(provided)
                    continue
                q = self._tx.get(vn)
                if not q:
                    continue
                used = 0
                while q and used + q[0].size_bytes() <= budget:
                    chunk = q.popleft()
                    used += chunk.size_bytes()
                    out.append(chunk)
        else:
            budget = slot.capacity_bytes
            used = 0
            for vn in sorted(self._tx):
                q = self._tx[vn]
                while q and used + q[0].size_bytes() <= budget:
                    chunk = q.popleft()
                    used += chunk.size_bytes()
                    out.append(chunk)
        if self.chunk_corruptor is not None:
            out = [self.chunk_corruptor(c) for c in out]
        return tuple(out)

    def _slot_action(self, slot: Slot) -> None:
        if self.crashed:
            return
        if self.omit_cycles > 0:
            self.omit_cycles -= 1
            return
        chunks = self._build_chunks(slot)
        kind = FrameKind.DATA if chunks else FrameKind.SYNC
        frame = PhysicalFrame(
            sender=self.component, slot_id=slot.slot_id, cycle=self._cycle,
            chunks=chunks, kind=kind,
        )
        # Scheduled transmissions occupy the whole fixed slot window so
        # delivery instants do not depend on the frame's fill level.
        if self.bus.transmit(frame, duration=slot.duration):
            self.frames_transmitted += 1

    def force_transmit(self, chunks: tuple[FrameChunk, ...] = (), slot_id: int = -1) -> bool:
        """Transmit immediately, schedule be damned (babbling idiot)."""
        frame = PhysicalFrame(
            sender=self.component, slot_id=slot_id, cycle=self._cycle, chunks=chunks,
            meta={"forced": True},
        )
        ok = self.bus.transmit(frame)
        if ok:
            self.frames_transmitted += 1
        return ok

    # ------------------------------------------------------------------
    # receive path (BusListener)
    # ------------------------------------------------------------------
    def register_receiver(self, vn: str, callback: ChunkReceiver) -> None:
        """Deliver chunks of virtual network ``vn`` to ``callback``."""
        self._receivers.setdefault(vn, []).append(callback)

    def add_frame_listener(self, callback: Callable[[PhysicalFrame, int], None]) -> None:
        """Raw frame tap (probes, diagnosis)."""
        self._frame_listeners.append(callback)

    def on_frame(self, frame: PhysicalFrame, arrival: int) -> None:
        if frame.sender == self.component:
            return  # own transmission
        if self.crashed:
            return
        self.frames_received += 1
        self._m_rx.inc()
        if frame.corrupted:
            self.frames_dropped_corrupt += 1
            self._m_rx_corrupt.inc()
            tr = self.sim.trace
            if tr.wants(TraceCategory.FRAME_RX):
                self.trace(TraceCategory.FRAME_RX, sender=frame.sender,
                           slot=frame.slot_id, dropped="corrupt")
            else:
                tr.tick(TraceCategory.FRAME_RX)
            return
        self._observe_timing(frame, arrival)
        self.membership.observe_frame(frame.sender)
        for listener in self._frame_listeners:
            listener(frame, arrival)
        for chunk in frame.chunks:
            for cb in self._receivers.get(chunk.vn, ()):
                cb(chunk, arrival)
                self.chunks_delivered += 1
                self._m_chunks.inc()

    def _observe_timing(self, frame: PhysicalFrame, arrival: int) -> None:
        """Deviation estimate for clock sync (scheduled frames only)."""
        if frame.slot_id < 0:
            return  # forced/babbled frames carry no timing information
        try:
            slot = self.schedule.slot(frame.slot_id)
        except SchedulingError:
            return
        start, _ = self.schedule.slot_window(frame.cycle, slot)
        # Scheduled frames occupy their whole slot; arrival is expected
        # at slot start + slot duration + propagation.
        expected_local = start + slot.duration + self.bus.propagation_delay
        local_arrival = self.clock.local_time(arrival)
        self.sync.observe(frame.sender, local_arrival - expected_local)

    # ------------------------------------------------------------------
    # round-template participant protocol (see repro.sim.round_template)
    # ------------------------------------------------------------------
    #: Keys whose per-round delta may be linearly extrapolated during
    #: fast-forward.  Everything else in :meth:`rt_state` must show a
    #: zero delta between recorded rounds or the fast path disarms —
    #: e.g. a clock correction, a pending-queue level change, a crash
    #: flag flip, or a membership event all make the round unreplayable.
    _RT_LINEAR = frozenset({
        "cycle", "frames_tx", "frames_rx", "frames_corrupt",
        "chunks_delivered", "chunks_enqueued", "tx_overflow", "sync_rounds",
    })

    def rt_state(self) -> dict[str, int]:
        sync = self.sync
        membership = self.membership
        state = {
            "cycle": self._cycle,
            "frames_tx": self.frames_transmitted,
            "frames_rx": self.frames_received,
            "frames_corrupt": self.frames_dropped_corrupt,
            "chunks_delivered": self.chunks_delivered,
            "chunks_enqueued": self.chunks_enqueued,
            "tx_overflow": self.tx_overflow,
            "sync_rounds": sync.rounds,
            "pending_tx": sum(len(q) for q in self._tx.values()),
            "crashed": int(self.crashed),
            "omit": self.omit_cycles,
            "send_offset": self.send_offset,
            "corruptor": int(self.chunk_corruptor is not None),
            "clock_corr": self.clock.corrections_applied,
            "sync_last": sync.last_correction,
            "sync_pending": len(sync._deviations),
            "sync_dev_sum": sum(sync._deviations.values()),
            "mem_changes": len(membership.changes),
            "mem_seen": len(membership._seen_this_cycle),
            "alive": membership.alive_count(),
        }
        for comp, missed in membership._missed.items():
            state[f"missed.{comp}"] = missed
        return state

    def rt_check(self, delta: dict[str, int]) -> bool:
        linear = self._RT_LINEAR
        alive = self.membership.is_alive
        for key, d in delta.items():
            if d == 0 or key in linear:
                continue
            # A dead sender's miss counter climbs steadily — replayable.
            # A *live* sender accumulating misses is approaching the
            # fail threshold: the flip would be a discrete membership
            # event, so refuse to extrapolate.
            if key.startswith("missed.") and not alive(key[7:]):
                continue
            return False
        return True

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        self._cycle += delta["cycle"] * k
        self.frames_transmitted += delta["frames_tx"] * k
        self.frames_received += delta["frames_rx"] * k
        self.frames_dropped_corrupt += delta["frames_corrupt"] * k
        self.chunks_delivered += delta["chunks_delivered"] * k
        self.chunks_enqueued += delta["chunks_enqueued"] * k
        self.tx_overflow += delta["tx_overflow"] * k
        d_sync = delta["sync_rounds"]
        if d_sync:
            sync = self.sync
            sync.rounds += d_sync * k
            # Per-round history entries for the skipped rounds: the
            # correction is constant across a replayable round (delta of
            # sync_last is zero), so each skipped round appended it.
            sync.correction_history.extend([sync.last_correction] * (d_sync * k))
        missed = self.membership._missed
        for key, d in delta.items():
            if d and key.startswith("missed."):
                missed[key[7:]] += d * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        """Quasi-periodic-mode fingerprint (strict mode never calls this).

        A drifting clock's slot phase never recurs exactly, so imperfect
        clocks veto every boundary — those clusters run live, as before.
        Perfect clocks (the common case in large models) contribute the
        fault-hook state; corrections shift all of the controller's
        events uniformly, which the engine's phase normalization absorbs.
        Queued chunks carry payload identity that bulk replay cannot
        extrapolate, so a non-empty transmit queue vetoes the boundary.
        """
        if not self.clock._perfect:
            return None
        for q in self._tx.values():
            if q:
                return None
        return (int(self.crashed), self.omit_cycles, self.send_offset,
                int(self.chunk_corruptor is not None))

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self._cycle

    def local_now(self) -> int:
        return self.clock.local_time(self.sim.now)
