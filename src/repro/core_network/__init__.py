"""Time-triggered physical core network and core services (S2, S3).

TDMA schedule, broadcast bus with collision semantics, central bus
guardian (C3), communication controllers acting on drifting local
clocks, fault-tolerant-average clock synchronization (C2), predictable
TT message transport (C1), and the membership service (C4).
"""

from .bus import BusListener, PhysicalBus
from .cluster import Cluster, ClusterBuilder, NodeConfig
from .controller import CommunicationController
from .frame import (
    CHUNK_HEADER_BYTES,
    FRAME_HEADER_BYTES,
    FrameChunk,
    FrameKind,
    PhysicalFrame,
)
from .guardian import CentralGuardian
from .membership import MembershipService
from .schedule import ScheduleBuilder, Slot, TDMASchedule
from .sync import FTAClockSync

__all__ = [
    "PhysicalBus",
    "BusListener",
    "FrameChunk",
    "FrameKind",
    "PhysicalFrame",
    "FRAME_HEADER_BYTES",
    "CHUNK_HEADER_BYTES",
    "Slot",
    "TDMASchedule",
    "ScheduleBuilder",
    "CentralGuardian",
    "CommunicationController",
    "FTAClockSync",
    "MembershipService",
    "Cluster",
    "ClusterBuilder",
    "NodeConfig",
]
