"""Central bus guardian — core service C3 (strong fault isolation).

The guardian holds an independent copy of the TDMA schedule and admits a
transmission only while the sending component's slot is open (widened by
a margin that covers the achievable clock-sync precision).  A babbling-
idiot component — transmitting arbitrarily often or at arbitrary times —
can therefore disturb at most its *own* slots; the slots of other
components stay clean, which makes a whole component an acceptable
hardware fault-containment region (Sec. II-D).

The guardian is modeled as *central* (at the bus) with a perfect local
view of global time; TTP/C-style local guardians differ only in where
the check runs.  The ``enabled`` flag exists for the E8 ablation:
disabling the guardian exposes the raw collision behaviour of the
medium under a babbling fault.
"""

from __future__ import annotations

from ..sim import Simulator
from .bus import PhysicalBus
from .frame import PhysicalFrame
from .schedule import TDMASchedule

__all__ = ["CentralGuardian"]


class CentralGuardian:
    """Schedule-enforcing admission control for the physical bus."""

    def __init__(
        self,
        sim: Simulator,
        schedule: TDMASchedule,
        margin: int = 5_000,
        enabled: bool = True,
        name: str = "guardian",
        bandwidth_bps: int | None = None,
    ) -> None:
        self.sim = sim
        self.schedule = schedule
        self.margin = margin
        self.enabled = enabled
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.blocked_count = 0
        self.admitted_count = 0
        self.blocked_by_sender: dict[str, int] = {}

    def install(self, bus: PhysicalBus) -> None:
        if self.bandwidth_bps is None:
            self.bandwidth_bps = bus.bandwidth_bps
        bus.set_admission_control(self.admit)

    def admit(self, frame: PhysicalFrame, now: int) -> bool:
        """True iff ``frame.sender`` may transmit at ``now``.

        Both the start *and the end* of the transmission must lie inside
        the sender's (margin-widened) slot window — a frame admitted at
        the window's tail must not overrun into the next slot.
        """
        if not self.enabled:
            self.admitted_count += 1
            return True
        ok = self.schedule.in_slot_of(frame.sender, now, margin=self.margin)
        if ok and self.bandwidth_bps:
            duration = -(-frame.size_bytes() * 8 * 1_000_000_000 // self.bandwidth_bps)
            ok = self.schedule.in_slot_of(frame.sender, now + duration,
                                          margin=self.margin)
        if ok:
            self.admitted_count += 1
        else:
            self.blocked_count += 1
            self.blocked_by_sender[frame.sender] = (
                self.blocked_by_sender.get(frame.sender, 0) + 1
            )
        return ok

    # ------------------------------------------------------------------
    # round-template participant protocol (see repro.sim.round_template)
    # ------------------------------------------------------------------
    # ``blocked_by_sender`` keys appear on first block, so the round
    # that first blocks a sender changes the state's key set and is not
    # replayed; from then on the per-sender counters extrapolate.

    def rt_state(self) -> dict[str, int]:
        state = {
            "admitted": self.admitted_count,
            "blocked": self.blocked_count,
            "enabled": int(self.enabled),
        }
        for sender, count in self.blocked_by_sender.items():
            state[f"blocked.{sender}"] = count
        return state

    def rt_check(self, delta: dict[str, int]) -> bool:
        return all(d == 0 or key != "enabled" for key, d in delta.items())

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        self.admitted_count += delta["admitted"] * k
        self.blocked_count += delta["blocked"] * k
        blocked = self.blocked_by_sender
        for key, d in delta.items():
            if d and key.startswith("blocked."):
                blocked[key[8:]] += d * k

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<CentralGuardian {state} admitted={self.admitted_count} blocked={self.blocked_count}>"
