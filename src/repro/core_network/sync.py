"""Fault-tolerant clock synchronization — core service C2.

Every correct component transmits in its a-priori known slot, so every
*reception* doubles as a time measurement: the difference between the
frame's expected arrival (from the schedule, in the receiver's local
time) and its observed arrival is an estimate of the clock difference
between receiver and sender.

At the end of each cluster cycle the controller feeds its collected
deviations to :class:`FTAClockSync`, which applies the classic
**fault-tolerant average**: sort the estimates, drop the ``k`` largest
and ``k`` smallest (tolerating up to ``k`` arbitrarily faulty clocks),
average the rest, and state-correct the local clock by the negated
average.  The achievable precision is then bounded by drift accumulated
over one cycle plus measurement granularity — exactly what experiment
E1 measures against the paper's claim of a global time base.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim import LocalClock

__all__ = ["FTAClockSync"]


class FTAClockSync:
    """Per-component fault-tolerant-average synchronization state."""

    def __init__(self, clock: LocalClock, k: int = 1, max_correction: int | None = None) -> None:
        if k < 0:
            raise ConfigurationError("k must be non-negative")
        self.clock = clock
        self.k = k
        #: Clamp for a single correction; a wildly wrong estimate (e.g.
        #: from an undetected faulty frame) cannot yank the clock far.
        self.max_correction = max_correction
        self._deviations: dict[str, int] = {}
        self.rounds = 0
        self.last_correction = 0
        self.correction_history: list[int] = []

    # ------------------------------------------------------------------
    def observe(self, sender: str, deviation: int) -> None:
        """Record one deviation estimate (local - expected) for this cycle.

        Multiple frames from the same sender in one cycle overwrite —
        the freshest estimate wins.
        """
        self._deviations[sender] = deviation

    def pending_observations(self) -> int:
        return len(self._deviations)

    # ------------------------------------------------------------------
    def resynchronize(self, ref_now: int) -> int:
        """Apply the FTA correction; returns the correction (ns).

        The receiver's own clock contributes a deviation of zero (it is
        trivially synchronized with itself), matching the FTA literature
        where each node averages over the ensemble including itself.
        """
        estimates = sorted(self._deviations.values())
        estimates.append(0)  # own clock
        estimates.sort()
        if self.k > 0 and len(estimates) > 2 * self.k:
            estimates = estimates[self.k : -self.k]
        if not estimates:
            self._deviations.clear()
            return 0
        avg = sum(estimates) / len(estimates)
        correction = -int(round(avg))
        if self.max_correction is not None:
            correction = max(-self.max_correction, min(self.max_correction, correction))
        if correction != 0:
            self.clock.apply_correction(ref_now, correction)
        self.rounds += 1
        self.last_correction = correction
        self.correction_history.append(correction)
        self._deviations.clear()
        return correction
