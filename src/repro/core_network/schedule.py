"""The TDMA schedule of the time-triggered physical network.

The cluster communicates in a fixed **cluster cycle**: a sequence of
slots, each statically assigned to one sending component, separated by
inter-slot gaps that absorb clock-sync imprecision.  The schedule is
global a-priori knowledge: every controller and the central guardian
hold the same table, which is what makes transmissions predictable
(core service C1) and off-slot transmissions detectable (C3).

Slot capacity is expressed in bytes, derived from the slot duration and
the bus bandwidth by the :class:`ScheduleBuilder`.  Virtual networks
reserve per-slot byte budgets through the builder (``reserve``): the
TT/ET overlay dispatchers may only enqueue chunks within their VN's
reservation, which realizes bandwidth partitioning between DASs.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field

from ..errors import SchedulingError

__all__ = ["Slot", "TDMASchedule", "ScheduleBuilder"]


@dataclass(frozen=True)
class Slot:
    """One statically-assigned transmission window in the cluster cycle."""

    slot_id: int
    sender: str
    offset: int  # ns from cycle start to slot start
    duration: int  # ns of transmission window
    capacity_bytes: int
    reservations: dict[str, int] = field(default_factory=dict, compare=False)

    def end_offset(self) -> int:
        return self.offset + self.duration

    def reserved_for(self, vn: str) -> int:
        return self.reservations.get(vn, 0)


class TDMASchedule:
    """The immutable cluster-cycle table."""

    def __init__(self, slots: tuple[Slot, ...], cycle_length: int) -> None:
        if not slots:
            raise SchedulingError("schedule needs at least one slot")
        if cycle_length <= 0:
            raise SchedulingError("cycle length must be positive")
        prev_end = 0
        for s in slots:
            if s.offset < prev_end:
                raise SchedulingError(
                    f"slot {s.slot_id} (offset {s.offset}) overlaps previous slot"
                )
            prev_end = s.end_offset()
        if prev_end > cycle_length:
            raise SchedulingError(
                f"slots extend to {prev_end} beyond cycle length {cycle_length}"
            )
        self.slots = slots
        self.cycle_length = cycle_length
        self._by_sender: dict[str, tuple[Slot, ...]] = {}
        for s in slots:
            self._by_sender.setdefault(s.sender, ())
            self._by_sender[s.sender] = self._by_sender[s.sender] + (s,)
        # Precompiled slot timeline: slot offsets are validated to be
        # non-overlapping and ascending, so point lookups (slot_at,
        # in_slot_of, next_slot_start) bisect these tables instead of
        # redoing per-slot arithmetic on every call.
        self._starts: tuple[int, ...] = tuple(s.offset for s in slots)
        self._ends: tuple[int, ...] = tuple(s.end_offset() for s in slots)
        self._by_id: dict[int, Slot] = {s.slot_id: s for s in slots}
        #: sender -> (ascending slot-start offsets, slots in that order)
        self._sender_timeline: dict[str, tuple[tuple[int, ...], tuple[Slot, ...]]] = {
            sender: (tuple(s.offset for s in own), own)
            for sender, own in self._by_sender.items()
        }
        #: sender -> per-slot (start offset, end offset) windows
        self._sender_windows: dict[str, tuple[tuple[int, int], ...]] = {
            sender: tuple((s.offset, s.end_offset()) for s in own)
            for sender, own in self._by_sender.items()
        }

    # ------------------------------------------------------------------
    def senders(self) -> list[str]:
        return sorted(self._by_sender)

    def slots_of(self, sender: str) -> tuple[Slot, ...]:
        return self._by_sender.get(sender, ())

    def slot(self, slot_id: int) -> Slot:
        try:
            return self._by_id[slot_id]
        except KeyError:
            raise SchedulingError(f"no slot {slot_id}") from None

    # ------------------------------------------------------------------
    def cycle_of(self, t: int) -> int:
        return t // self.cycle_length

    def cycle_start(self, cycle: int) -> int:
        return cycle * self.cycle_length

    def slot_window(self, cycle: int, slot: Slot) -> tuple[int, int]:
        """Absolute [start, end) window of ``slot`` in ``cycle``."""
        base = self.cycle_start(cycle) + slot.offset
        return base, base + slot.duration

    def slot_at(self, t: int) -> Slot | None:
        """The slot whose window contains global time ``t`` (None = gap)."""
        off = t % self.cycle_length
        i = bisect_right(self._starts, off) - 1
        if i >= 0 and off < self._ends[i]:
            return self.slots[i]
        return None

    def in_slot_of(self, sender: str, t: int, margin: int = 0) -> bool:
        """Is ``t`` inside (a ``margin``-widened) slot of ``sender``?"""
        windows = self._sender_windows.get(sender, ())
        off = t % self.cycle_length
        cycle = self.cycle_length
        for start, end in windows:
            lo = start - margin
            hi = end + margin
            if lo <= off < hi:
                return True
            # widened window may wrap the cycle boundary
            if lo < 0 and off >= lo + cycle:
                return True
            if hi > cycle and off < hi - cycle:
                return True
        return False

    def next_slot_start(self, sender: str, after: int) -> tuple[int, Slot]:
        """Earliest absolute slot start of ``sender`` at or after ``after``."""
        timeline = self._sender_timeline.get(sender)
        if timeline is None:
            raise SchedulingError(f"{sender!r} owns no slot")
        starts, own = timeline
        rem = after % self.cycle_length
        base = after - rem
        i = bisect_left(starts, rem)
        if i < len(starts):
            return base + starts[i], own[i]
        return base + self.cycle_length + starts[0], own[0]

    def utilization(self) -> float:
        """Fraction of the cycle spent transmitting."""
        return sum(s.duration for s in self.slots) / self.cycle_length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TDMASchedule slots={len(self.slots)} cycle={self.cycle_length}ns>"


class ScheduleBuilder:
    """Constructs a :class:`TDMASchedule` from slot requests.

    Parameters
    ----------
    bandwidth_bps:
        Physical bus bandwidth; converts byte budgets into durations.
    inter_slot_gap:
        Silence between slots; must exceed the achievable clock-sync
        precision or slots of drifting nodes would collide.
    """

    def __init__(self, bandwidth_bps: int = 10_000_000, inter_slot_gap: int = 10_000) -> None:
        if bandwidth_bps <= 0:
            raise SchedulingError("bandwidth must be positive")
        if inter_slot_gap < 0:
            raise SchedulingError("inter-slot gap must be non-negative")
        self.bandwidth_bps = bandwidth_bps
        self.inter_slot_gap = inter_slot_gap
        self._requests: list[tuple[str, int, dict[str, int]]] = []

    def bytes_to_ns(self, nbytes: int) -> int:
        return -(-nbytes * 8 * 1_000_000_000 // self.bandwidth_bps)  # ceil

    def add_slot(self, sender: str, capacity_bytes: int, reservations: dict[str, int] | None = None) -> "ScheduleBuilder":
        """Append one slot for ``sender`` with the given byte capacity.

        ``reservations`` maps VN name -> reserved bytes within the slot;
        the sum must fit the capacity.
        """
        if capacity_bytes <= 0:
            raise SchedulingError("slot capacity must be positive")
        res = dict(reservations or {})
        if sum(res.values()) > capacity_bytes:
            raise SchedulingError(
                f"reservations {res} exceed slot capacity {capacity_bytes}"
            )
        self._requests.append((sender, capacity_bytes, res))
        return self

    def build(self, sync_window: int = 0) -> TDMASchedule:
        """Lay slots out back-to-back with gaps; append a sync window."""
        if not self._requests:
            raise SchedulingError("no slots requested")
        from .frame import FRAME_HEADER_BYTES

        slots: list[Slot] = []
        offset = self.inter_slot_gap
        for i, (sender, cap, res) in enumerate(self._requests):
            # The slot window covers the payload capacity plus the fixed
            # frame header, so a full frame always fits its slot.
            duration = self.bytes_to_ns(cap + FRAME_HEADER_BYTES)
            slots.append(
                Slot(
                    slot_id=i,
                    sender=sender,
                    offset=offset,
                    duration=duration,
                    capacity_bytes=cap,
                    reservations=res,
                )
            )
            offset += duration + self.inter_slot_gap
        cycle_length = offset + max(sync_window, 0)
        return TDMASchedule(tuple(slots), cycle_length)
