"""Membership service — core service C4 (consistent diagnosis).

On a TT bus, "component C was correct in cycle k" is locally decidable
by every receiver: C's slot either carried a correct frame or it did
not, and broadcast means all correct receivers observe the same thing.
Each controller therefore maintains an identical membership view, and
the cluster gets *consistent diagnosis of failing nodes* for free —
without an agreement protocol.

A component is declared **failed** after missing ``fail_threshold``
consecutive cycles, and **rejoined** after being seen again (transient
faults, Sec. II-D, recover this way).  Changes are traced so experiments
can measure detection latency (E1) and cross-node consistency.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim import Simulator, TraceCategory

__all__ = ["MembershipService"]


class MembershipService:
    """One controller's view of which components are alive."""

    def __init__(
        self,
        sim: Simulator,
        owner: str,
        expected: tuple[str, ...],
        fail_threshold: int = 2,
    ) -> None:
        if fail_threshold < 1:
            raise ConfigurationError("fail_threshold must be >= 1")
        self.sim = sim
        self.owner = owner
        self.expected = tuple(expected)
        self.fail_threshold = fail_threshold
        self._seen_this_cycle: set[str] = set()
        self._missed: dict[str, int] = {c: 0 for c in expected}
        self._alive: dict[str, bool] = {c: True for c in expected}
        self.changes: list[tuple[int, str, bool]] = []  # (time, component, alive)

    # ------------------------------------------------------------------
    def observe_frame(self, sender: str) -> None:
        """A correct frame from ``sender`` arrived in the current cycle."""
        self._seen_this_cycle.add(sender)

    def end_of_cycle(self) -> None:
        """Fold the cycle's observations into the membership vector."""
        for c in self.expected:
            if c == self.owner or c in self._seen_this_cycle:
                self._missed[c] = 0
                if not self._alive[c]:
                    self._alive[c] = True
                    self.changes.append((self.sim.now, c, True))
                    self.sim.metrics.inc("membership.rejoins")
                    self.sim.trace.record(
                        self.sim.now, TraceCategory.MEMBERSHIP, self.owner,
                        component=c, alive=True,
                    )
            else:
                self._missed[c] += 1
                if self._alive[c] and self._missed[c] >= self.fail_threshold:
                    self._alive[c] = False
                    self.changes.append((self.sim.now, c, False))
                    self.sim.metrics.inc("membership.failures")
                    self.sim.trace.record(
                        self.sim.now, TraceCategory.MEMBERSHIP, self.owner,
                        component=c, alive=False,
                    )
        self._seen_this_cycle.clear()

    # ------------------------------------------------------------------
    def is_alive(self, component: str) -> bool:
        return self._alive.get(component, False)

    def vector(self) -> dict[str, bool]:
        """The current membership vector (component -> alive)."""
        return dict(self._alive)

    def alive_count(self) -> int:
        return sum(1 for v in self._alive.values() if v)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        alive = [c for c, v in self._alive.items() if v]
        return f"<Membership@{self.owner} alive={alive}>"
