"""The broadcast bus medium (and its central guardian hook).

The bus is a shared broadcast medium: a transmission occupies it for
``size * 8 / bandwidth`` plus propagation delay, and every attached
listener receives the frame at the same instant (the TTA's replicated-
channel redundancy is abstracted to one logical channel; value-domain
faults are injected above this layer).

Two overlapping transmissions **collide**: both frames are delivered
corrupted.  On a correct TT cluster the TDMA schedule plus the central
guardian make collisions impossible; they become observable exactly
when the guardian is disabled and a babbling component is injected —
the E8 ablation.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol

from ..errors import ConfigurationError
from ..sim import EventPriority, FlowStage, Simulator, TraceCategory
from .frame import PhysicalFrame

__all__ = ["BusListener", "PhysicalBus"]


class BusListener(Protocol):
    """Anything that wants frames off the bus (controllers, probes)."""

    def on_frame(self, frame: PhysicalFrame, arrival: int) -> None:
        ...


class PhysicalBus:
    """Single logical broadcast channel of the cluster."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: int = 10_000_000,
        propagation_delay: int = 1_000,
        name: str = "bus",
    ) -> None:
        if bandwidth_bps <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if propagation_delay < 0:
            raise ConfigurationError("propagation delay must be non-negative")
        self.sim = sim
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        #: Immutable delivery snapshot, rebuilt on attach(): _deliver
        #: iterates this tuple directly instead of copying the listener
        #: list on every frame (listeners attached mid-delivery only see
        #: subsequent frames, same as the old copy-per-delivery).
        self._listeners: tuple[BusListener, ...] = ()
        self._admission: Callable[[PhysicalFrame, int], bool] | None = None
        self._busy_until: int = 0
        self._in_flight: list[tuple[PhysicalFrame, int]] = []  # (frame, end)
        self.frames_sent = 0
        self.frames_blocked = 0
        self.collisions = 0
        m = sim.metrics
        self._m_tx = m.counter("bus.frames_tx")
        self._m_blocked = m.counter("bus.frames_blocked")
        self._m_collisions = m.counter("bus.collisions")
        self._m_bytes = m.counter("bus.bytes_tx")
        self._m_frame_bytes = m.histogram("bus.frame_bytes")
        self._deliver_label = f"{name}.deliver"

    # ------------------------------------------------------------------
    def attach(self, listener: BusListener) -> None:
        self._listeners = self._listeners + (listener,)

    def set_admission_control(self, check: Callable[[PhysicalFrame, int], bool] | None) -> None:
        """Install the central guardian's admission check (or None)."""
        self._admission = check

    def transmission_duration(self, frame: PhysicalFrame) -> int:
        return -(-frame.size_bytes() * 8 * 1_000_000_000 // self.bandwidth_bps)

    # ------------------------------------------------------------------
    def transmit(self, frame: PhysicalFrame, duration: int | None = None) -> bool:
        """Put ``frame`` on the medium now; returns False if blocked.

        The guardian's admission check runs *before* the medium is
        touched — a blocked transmission leaves the bus idle, which is
        precisely the fault-containment property of the TTA's guardian.

        ``duration`` overrides the content-derived transmission time:
        scheduled TDMA transmissions occupy their *whole slot* (fixed
        window), so delivery instants are independent of how full the
        frame is — without this, another VN's chunks riding in the same
        frame would shift this VN's delivery times.
        """
        now = self.sim.now
        tr = self.sim.trace
        if self._admission is not None and not self._admission(frame, now):
            self.frames_blocked += 1
            self._m_blocked.inc()
            if tr.wants(TraceCategory.FRAME_BLOCKED):
                tr.record(
                    now, TraceCategory.FRAME_BLOCKED, self.name,
                    sender=frame.sender, slot=frame.slot_id, cycle=frame.cycle,
                )
            else:
                tr.tick(TraceCategory.FRAME_BLOCKED)
            return False
        if duration is None:
            duration = self.transmission_duration(frame)
        end = now + duration
        frame.send_time = now

        # Collision detection against transmissions still on the wire.
        self._in_flight = [(f, e) for f, e in self._in_flight if e > now]
        collided = False
        for other, other_end in self._in_flight:
            if not other.corrupted:
                other.corrupted = True
            collided = True
        if collided:
            frame.corrupted = True
            self.collisions += 1
            self._m_collisions.inc()
            if tr.wants(TraceCategory.FRAME_TX):
                tr.record(
                    now, TraceCategory.FRAME_TX, self.name,
                    sender=frame.sender, slot=frame.slot_id, cycle=frame.cycle,
                    collision=True,
                )
            else:
                tr.tick(TraceCategory.FRAME_TX)
        elif tr.wants(TraceCategory.FRAME_TX):
            tr.record(
                now, TraceCategory.FRAME_TX, self.name,
                sender=frame.sender, slot=frame.slot_id, cycle=frame.cycle,
                bytes=frame.size_bytes(),
            )
        else:
            tr.tick(TraceCategory.FRAME_TX)
        self._in_flight.append((frame, end))
        self._busy_until = max(self._busy_until, end)
        self.frames_sent += 1
        self._m_tx.inc()
        nbytes = frame.size_bytes()
        self._m_bytes.inc(nbytes)
        self._m_frame_bytes.observe(nbytes)

        fl = self.sim.flows
        if fl.enabled:
            for chunk in frame.chunks:
                fid = chunk.meta.get("flow")
                if fid is not None:
                    fl.hop(now, self.name, fid, FlowStage.BUS_TX,
                           sender=frame.sender, slot=frame.slot_id)

        arrival = end + self.propagation_delay
        self.sim.at(
            arrival,
            lambda f=frame, t=arrival: self._deliver(f, t),
            priority=EventPriority.NETWORK,
            label=self._deliver_label,
        )
        return True

    def _deliver(self, frame: PhysicalFrame, arrival: int) -> None:
        fl = self.sim.flows
        if fl.enabled:
            for chunk in frame.chunks:
                fid = chunk.meta.get("flow")
                if fid is not None:
                    fl.hop(arrival, self.name, fid, FlowStage.BUS_RX,
                           corrupted=frame.corrupted)
        for listener in self._listeners:
            listener.on_frame(frame, arrival)

    # ------------------------------------------------------------------
    # round-template participant protocol (see repro.sim.round_template)
    # ------------------------------------------------------------------
    # ``bus.deliver`` events are deliberately NOT registered as template
    # labels: their closures capture absolute arrival instants, so a
    # delivery pending across a round boundary blocks fast-forward for
    # that window (in a correct TDMA round every delivery completes
    # inside the round).  ``_busy_until`` and ``_in_flight`` may go
    # stale across a replay, which is harmless: ``busy`` only compares
    # against ``now`` (always past the stale horizon after a skip) and
    # stale in-flight entries are pruned by the ``e > now`` filter on
    # the next transmit.

    _RT_LINEAR = frozenset({"frames_sent", "frames_blocked", "collisions"})

    def rt_state(self) -> dict[str, int]:
        return {
            "frames_sent": self.frames_sent,
            "frames_blocked": self.frames_blocked,
            "collisions": self.collisions,
            "in_flight": len(self._in_flight),
        }

    def rt_check(self, delta: dict[str, int]) -> bool:
        linear = self._RT_LINEAR
        return all(d == 0 or key in linear for key, d in delta.items())

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        self.frames_sent += delta["frames_sent"] * k
        self.frames_blocked += delta["frames_blocked"] * k
        self.collisions += delta["collisions"] * k

    @property
    def busy(self) -> bool:
        return self.sim.now < self._busy_until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PhysicalBus {self.name!r} sent={self.frames_sent} blocked={self.frames_blocked}>"
