"""Cluster assembly: one call from node list to a running TT network.

:class:`ClusterBuilder` wires together the pieces a DECOS base
architecture needs — bus, TDMA schedule, central guardian, and one
communication controller per component, each with its own drifting
clock — and returns a :class:`Cluster` handle that experiments use to
reach every part.

This is deliberately the *only* place where the core-network objects
learn about each other, so tests can also assemble pathological
clusters by hand.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from ..sim import LocalClock, Simulator
from .bus import PhysicalBus
from .controller import CommunicationController
from .guardian import CentralGuardian
from .schedule import ScheduleBuilder, TDMASchedule

__all__ = ["NodeConfig", "Cluster", "ClusterBuilder"]


@dataclass(frozen=True)
class NodeConfig:
    """Configuration of one component's network presence."""

    name: str
    slot_capacity_bytes: int = 64
    drift_ppm: float = 0.0
    clock_offset: int = 0
    #: VN name -> reserved bytes within this component's slot.
    reservations: dict[str, int] | None = None


class Cluster:
    """A fully wired TT cluster (bus + guardian + controllers)."""

    def __init__(
        self,
        sim: Simulator,
        bus: PhysicalBus,
        schedule: TDMASchedule,
        guardian: CentralGuardian,
        controllers: dict[str, CommunicationController],
    ) -> None:
        self.sim = sim
        self.bus = bus
        self.schedule = schedule
        self.guardian = guardian
        self.controllers = controllers

    def controller(self, component: str) -> CommunicationController:
        try:
            return self.controllers[component]
        except KeyError:
            raise ConfigurationError(f"no component {component!r} in cluster") from None

    def start(self) -> None:
        for ctrl in self.controllers.values():
            ctrl.start()

    def stop(self) -> None:
        for ctrl in self.controllers.values():
            ctrl.stop()

    # ------------------------------------------------------------------
    # measurements used by experiments
    # ------------------------------------------------------------------
    def clock_precision(self) -> int:
        """Max pairwise local-clock difference right now (ns) — the
        precision of the global time base (E1's sync metric)."""
        now = self.sim.now
        readings = [c.clock.local_time(now) for c in self.controllers.values()
                    if not c.crashed]
        if len(readings) < 2:
            return 0
        return max(readings) - min(readings)

    def membership_consistent(self) -> bool:
        """Do all non-crashed controllers agree on the membership vector?"""
        vectors = [
            tuple(sorted(c.membership.vector().items()))
            for c in self.controllers.values()
            if not c.crashed
        ]
        return len(set(vectors)) <= 1

    def components(self) -> list[str]:
        return sorted(self.controllers)


class ClusterBuilder:
    """Fluent construction of a :class:`Cluster`."""

    def __init__(
        self,
        sim: Simulator,
        bandwidth_bps: int = 10_000_000,
        inter_slot_gap: int = 10_000,
        propagation_delay: int = 1_000,
        guardian_margin: int = 5_000,
        guardian_enabled: bool = True,
        sync_k: int = 1,
        membership_threshold: int = 2,
    ) -> None:
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.inter_slot_gap = inter_slot_gap
        self.propagation_delay = propagation_delay
        self.guardian_margin = guardian_margin
        self.guardian_enabled = guardian_enabled
        self.sync_k = sync_k
        self.membership_threshold = membership_threshold
        self._nodes: list[NodeConfig] = []

    def add_node(self, node: NodeConfig | str, **kw) -> "ClusterBuilder":
        if isinstance(node, str):
            node = NodeConfig(name=node, **kw)
        elif kw:
            raise ConfigurationError("pass either a NodeConfig or keyword fields, not both")
        if any(n.name == node.name for n in self._nodes):
            raise ConfigurationError(f"duplicate node {node.name!r}")
        self._nodes.append(node)
        return self

    def build(self) -> Cluster:
        if not self._nodes:
            raise ConfigurationError("cluster needs at least one node")
        sched_builder = ScheduleBuilder(
            bandwidth_bps=self.bandwidth_bps, inter_slot_gap=self.inter_slot_gap
        )
        for n in self._nodes:
            sched_builder.add_slot(n.name, n.slot_capacity_bytes, n.reservations)
        schedule = sched_builder.build()
        bus = PhysicalBus(
            self.sim, bandwidth_bps=self.bandwidth_bps,
            propagation_delay=self.propagation_delay,
        )
        guardian = CentralGuardian(
            self.sim, schedule, margin=self.guardian_margin,
            enabled=self.guardian_enabled,
        )
        guardian.install(bus)
        controllers: dict[str, CommunicationController] = {}
        for n in self._nodes:
            clock = LocalClock(drift_ppm=n.drift_ppm, offset=n.clock_offset)
            controllers[n.name] = CommunicationController(
                self.sim, n.name, bus, schedule, clock=clock,
                sync_k=self.sync_k, membership_threshold=self.membership_threshold,
            )
        cluster = Cluster(self.sim, bus, schedule, guardian, controllers)
        self.sim.register_checkable(cluster)
        self.sim.round_template.register_cluster(cluster)
        return cluster
