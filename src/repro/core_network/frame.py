"""Physical frames on the time-triggered core network.

A physical frame is what one component's communication controller puts
on the bus during its TDMA slot.  Because virtual networks are overlays
(Sec. II), one physical frame multiplexes **chunks** belonging to
different virtual networks: each :class:`FrameChunk` carries one encoded
message instance of one VN.  The chunk's ``vn`` tag is what the
encapsulation service uses to control visibility — a receiving node
delivers a chunk only to dispatchers registered for that VN.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from ..errors import ConfigurationError

__all__ = ["FrameKind", "FrameChunk", "PhysicalFrame", "FRAME_HEADER_BYTES", "CHUNK_HEADER_BYTES"]

#: Fixed per-frame overhead (sender id, slot id, CRC) in bytes.
FRAME_HEADER_BYTES = 8
#: Fixed per-chunk overhead (VN tag, message id, length) in bytes.
CHUNK_HEADER_BYTES = 4


class FrameKind(str, Enum):
    """DATA frames carry chunks; SYNC frames keep the time base alive."""

    DATA = "data"
    SYNC = "sync"  # rate-correction frames without payload (unused slots)


@dataclass(frozen=True, slots=True)
class FrameChunk:
    """One encoded message instance of one virtual network."""

    vn: str
    message: str
    data: bytes
    sender_job: str = ""
    meta: dict[str, Any] = field(default_factory=dict, compare=False)

    def size_bytes(self) -> int:
        return CHUNK_HEADER_BYTES + len(self.data)

    def corrupted_copy(self) -> "FrameChunk":
        """A copy whose payload bits were flipped (value failure model)."""
        flipped = bytes(b ^ 0xFF for b in self.data)
        return replace(self, data=flipped, meta={**self.meta, "corrupted": True})


@dataclass
class PhysicalFrame:
    """One TDMA slot's transmission."""

    sender: str
    slot_id: int
    cycle: int
    chunks: tuple[FrameChunk, ...] = ()
    kind: FrameKind = FrameKind.DATA
    corrupted: bool = False
    send_time: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def size_bytes(self) -> int:
        return FRAME_HEADER_BYTES + sum(c.size_bytes() for c in self.chunks)

    def chunks_for_vn(self, vn: str) -> tuple[FrameChunk, ...]:
        return tuple(c for c in self.chunks if c.vn == vn)

    def with_chunks(self, chunks: tuple[FrameChunk, ...]) -> "PhysicalFrame":
        if self.kind is FrameKind.SYNC and chunks:
            raise ConfigurationError("sync frames carry no chunks")
        return PhysicalFrame(
            sender=self.sender,
            slot_id=self.slot_id,
            cycle=self.cycle,
            chunks=chunks,
            kind=self.kind,
            corrupted=self.corrupted,
            send_time=self.send_time,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Frame {self.sender} slot={self.slot_id} cycle={self.cycle} "
            f"chunks={len(self.chunks)} {self.kind.value}"
            f"{' CORRUPT' if self.corrupted else ''}>"
        )
