"""Synthetic vehicle dynamics — the sensors' ground truth.

The paper evaluates on a real car's sensor suite; we substitute a
kinematic single-track model driven by a scenario script (documented in
DESIGN.md's substitution table).  The model is precomputed at a fixed
1 ms grid at construction, so sensor jobs sample it with O(1) lookups
and every run is deterministic.

A scenario is a list of :class:`Phase` segments with constant
acceleration and commanded yaw rate; a phase can be marked ``skid``,
which locks the rear wheels (wheel-speed divergence) and superimposes a
yaw-rate spike — the signature Pre-Safe's correlation logic looks for
(Sec. I's Mercedes example: "skidding, emergency braking, or avoidance
maneuvers").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..sim import MS, SEC

__all__ = [
    "Phase", "VehicleState", "VehicleModel", "VehicleFingerprint",
    "standard_trip", "skid_trip",
]

_GRID = 1 * MS  # precomputation step


@dataclass(frozen=True)
class Phase:
    """One scenario segment."""

    duration: int  # ns
    accel: float = 0.0  # m/s^2
    yaw_rate: float = 0.0  # rad/s commanded
    skid: bool = False
    braking: float = 0.0  # 0..1 brake pedal

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError("phase duration must be positive")
        if not 0.0 <= self.braking <= 1.0:
            raise ConfigurationError("braking must be in [0, 1]")


@dataclass(frozen=True)
class VehicleState:
    """Ground truth at one instant (SI units)."""

    t: int
    x: float
    y: float
    heading: float  # rad
    speed: float  # m/s
    yaw_rate: float  # rad/s
    wheel_fl: float  # m/s at the contact patch
    wheel_fr: float
    wheel_rl: float
    wheel_rr: float
    braking: float
    skidding: bool


class VehicleModel:
    """Precomputed kinematics over a scenario."""

    def __init__(
        self,
        phases: list[Phase],
        initial_speed: float = 0.0,
        track_width: float = 1.6,
        skid_yaw_spike: float = 0.8,
        skid_wheel_lock: float = 0.25,
    ) -> None:
        if not phases:
            raise ConfigurationError("scenario needs at least one phase")
        self.phases = list(phases)
        self.track_width = track_width
        self.horizon = sum(p.duration for p in phases)
        n = self.horizon // _GRID + 1
        self._t = np.arange(n, dtype=np.int64) * _GRID
        speed = np.zeros(n)
        heading = np.zeros(n)
        yaw = np.zeros(n)
        x = np.zeros(n)
        y = np.zeros(n)
        braking = np.zeros(n)
        skid = np.zeros(n, dtype=bool)

        v = initial_speed
        h = 0.0
        px = py = 0.0
        idx = 0
        dt = _GRID / SEC
        for phase in phases:
            steps = phase.duration // _GRID
            yr = phase.yaw_rate + (skid_yaw_spike if phase.skid else 0.0)
            for _ in range(steps):
                if idx >= n:
                    break
                speed[idx] = v
                heading[idx] = h
                yaw[idx] = yr if v > 0.1 else 0.0
                x[idx] = px
                y[idx] = py
                braking[idx] = phase.braking
                skid[idx] = phase.skid
                px += v * math.cos(h) * dt
                py += v * math.sin(h) * dt
                h += yaw[idx] * dt
                v = max(0.0, v + phase.accel * dt)
                idx += 1
        # fill the tail (exact horizon instant)
        while idx < n:
            speed[idx] = v
            heading[idx] = h
            x[idx] = px
            y[idx] = py
            idx += 1
        self._speed, self._heading, self._yaw = speed, heading, yaw
        self._x, self._y = x, y
        self._braking, self._skid = braking, skid
        self._skid_lock = skid_wheel_lock

    # ------------------------------------------------------------------
    def state_at(self, t: int) -> VehicleState:
        """Ground truth at simulation time ``t`` (clamped to horizon)."""
        i = min(max(t, 0) // _GRID, len(self._t) - 1)
        v = float(self._speed[i])
        yr = float(self._yaw[i])
        half = self.track_width / 2.0
        # Outer wheels travel faster in a turn.
        d = yr * half
        fl, fr = max(0.0, v - d), max(0.0, v + d)
        rl, rr = fl, fr
        if self._skid[i]:
            rl *= self._skid_lock
            rr *= self._skid_lock
        return VehicleState(
            t=int(self._t[i]),
            x=float(self._x[i]),
            y=float(self._y[i]),
            heading=float(self._heading[i]),
            speed=v,
            yaw_rate=yr,
            wheel_fl=fl, wheel_fr=fr, wheel_rl=rl, wheel_rr=rr,
            braking=float(self._braking[i]),
            skidding=bool(self._skid[i]),
        )

    def skid_onsets(self) -> list[int]:
        """Instants where a skid phase begins (hazard ground truth)."""
        onsets = []
        prev = False
        for i, s in enumerate(self._skid):
            if s and not prev:
                onsets.append(int(self._t[i]))
            prev = bool(s)
        return onsets


class VehicleFingerprint:
    """Round-template participant pinning the vehicle's behavioural phase.

    The car's control flow branches only on the *quantized* dynamics the
    sensors publish — wire yaw rate (mrad/s), wire brake pressure
    (millis), and the skid flag (Pre-Safe's hazard predicate, the
    brake-by-wire slip limiter).  Between transitions of that class the
    scenario's reaction structure repeats round for round, which is what
    makes the integrated car quasi-periodic.  Around each transition a
    propagation margin keeps rounds live until sampled values have
    traversed sensor → TT network → gateway → ET network → consumer.

    Holds no mutable state: the participant protocol's snapshot hooks
    are trivially empty.
    """

    #: sensor window + TT transport + gateway poll + ET transport +
    #: consumer window, with slack — effects of a ground-truth change
    #: are in flight for at most this long.
    PIPELINE_LAG = 25 * MS

    def __init__(self, vehicle: VehicleModel) -> None:
        self.vehicle = vehicle
        yaw_q = np.clip(
            np.rint(vehicle._yaw * 1000.0), -(2 ** 15), 2 ** 15 - 1
        ).astype(np.int64)
        brake_q = np.minimum(1000, np.rint(vehicle._braking * 1000.0)).astype(np.int64)
        skid_q = vehicle._skid.astype(np.int64)
        change = (
            (np.diff(yaw_q) != 0)
            | (np.diff(brake_q) != 0)
            | (np.diff(skid_q) != 0)
        )
        self._transitions = vehicle._t[np.nonzero(change)[0] + 1]
        self._yaw_q, self._brake_q, self._skid_q = yaw_q, brake_q, skid_q

    # -- participant protocol (see repro.sim.round_template) -----------
    def rt_state(self) -> dict[str, int]:
        return {}

    def rt_check(self, delta: dict[str, int]) -> bool:
        return True

    def rt_advance(self, delta: dict[str, int], k: int) -> None:
        pass

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        t = self._transitions
        # Veto while a transition's effects may still be in flight, or
        # while one lands inside this round.
        i = int(np.searchsorted(t, boundary - self.PIPELINE_LAG, side="right"))
        if i < len(t) and int(t[i]) < boundary + round_len:
            return None
        j = min(max(boundary, 0) // _GRID, len(self._yaw_q) - 1)
        return (int(self._yaw_q[j]), int(self._brake_q[j]), int(self._skid_q[j]))

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        t = self._transitions
        i = int(np.searchsorted(t, boundary, side="right"))
        if i >= len(t):
            return None  # class constant to the horizon
        return max(0, (int(t[i]) - boundary) // round_len)


def standard_trip(seconds: float = 60.0) -> VehicleModel:
    """Accelerate, cruise with gentle curves, brake — no hazards."""
    s = SEC
    phases = [
        Phase(duration=int(8 * s), accel=2.5),
        Phase(duration=int(10 * s), yaw_rate=0.05),
        Phase(duration=int(10 * s), yaw_rate=-0.05),
        Phase(duration=int(max(seconds - 33, 1) * s)),
        Phase(duration=int(5 * s), accel=-3.0, braking=0.5),
    ]
    return VehicleModel(phases, initial_speed=0.0)


def skid_trip() -> VehicleModel:
    """Cruise, then a skid + emergency-brake event (Pre-Safe trigger)."""
    s = SEC
    phases = [
        Phase(duration=int(5 * s), accel=3.0),
        Phase(duration=int(10 * s)),
        Phase(duration=int(2 * s), yaw_rate=0.3, skid=True, braking=1.0, accel=-6.0),
        Phase(duration=int(8 * s), braking=0.2, accel=-1.0),
    ]
    return VehicleModel(phases, initial_speed=0.0)
