"""Comfort/body DAS — the sliding roof of Fig. 6, on an ET network.

:class:`SlidingRoofController` owns the roof position (percent open).
While the user moves the roof, the job emits ``msgSlidingRoof`` event
messages carrying the relative change (``ValueChange``/``EventTime`` —
exactly Fig. 6's MovementEvent).  On an imported ``msgRoofCommand``
(Pre-Safe "closes an open sun roof when sensors detect possibly
hazardous situations"), the roof drives to closed, emitting the
corresponding movement events along the way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..platform import Job
from .signals import obs_time, sliding_roof_type

if TYPE_CHECKING:  # pragma: no cover
    from ..vn import ETVirtualNetwork

__all__ = ["SlidingRoofController"]


class SlidingRoofController(Job):
    """Roof position model + Fig. 6 event producer."""

    #: percent per job step while moving
    MOVE_STEP = 5

    def __init__(self, sim, name, das, partition,
                 motion_plan: list[tuple[int, int]] | None = None):
        """``motion_plan``: (time, target_percent) user commands."""
        super().__init__(sim, name, das, partition)
        self.vn: "ETVirtualNetwork | None" = None  # bound by the assembler
        self.position = 0  # percent open
        self.target = 0
        self.motion_plan = sorted(motion_plan or [])
        self.events_emitted = 0
        self.close_commands_received: list[int] = []
        self.closed_at: int | None = None
        #: Fault hook (software timing failure): emit this many extra
        #: zero-delta events per step — a same-instant burst violates
        #: any tmin interarrival bound.
        self.extra_chatter = 0
        self._mtype = sliding_roof_type()

    # ------------------------------------------------------------------
    def on_step(self) -> None:
        now = self.sim.now
        while self.motion_plan and self.motion_plan[0][0] <= now:
            _, target = self.motion_plan.pop(0)
            self.target = max(0, min(100, target))
        if self.position != self.target:
            step = self.MOVE_STEP if self.target > self.position else -self.MOVE_STEP
            step = max(-abs(self.target - self.position),
                       min(abs(self.target - self.position), step))
            if self.target < self.position:
                step = -min(self.MOVE_STEP, self.position - self.target)
            else:
                step = min(self.MOVE_STEP, self.target - self.position)
            self.position += step
            self._emit(step)
            if self.position == 0 and self.closed_at is None and self.close_commands_received:
                self.closed_at = now
        for _ in range(self.extra_chatter):
            self._emit(0)

    def _emit(self, delta: int) -> None:
        if self.vn is None:
            return
        inst = self._mtype.instance(MovementEvent={
            "ValueChange": delta,
            "EventTime": obs_time(self.sim.now),
        })
        self.vn.send("msgSlidingRoof", inst, sender_job=self.name)
        self.events_emitted += 1

    # -- round-template support (see repro.sim.round_template) ---------
    def rt_counters(self) -> dict[str, int]:
        c = super().rt_counters()
        c["emit"] = self.events_emitted
        return c

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        super().rt_advance(delta, k, prefix)
        self.events_emitted += delta[prefix + "emit"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        # Motion steps and chatter emit ET events and mutate position —
        # those rounds run live; a due plan entry pops state (veto
        # self-sustains until the live step consumes it).
        if self.motion_plan and self.motion_plan[0][0] < boundary + round_len:
            return None
        if self.position != self.target or self.extra_chatter:
            return None
        return ("idle", self.position)

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        if self.motion_plan:
            return max(0, (self.motion_plan[0][0] - boundary) // round_len)
        return None

    # ------------------------------------------------------------------
    def on_message(self, port_name, instance, arrival) -> None:
        if port_name == "msgRoofCommand" and instance.get("Command", "close"):
            self.close_commands_received.append(self.sim.now)
            self.target = 0
            if self.position == 0 and self.closed_at is None:
                self.closed_at = self.sim.now
