"""Message catalog of the exemplary automotive system (Sec. V substitute).

All message types the automotive DASs exchange, with fixed-point wire
encodings (integer fields; physical units noted per field):

* ``msgWheelSpeed`` — ABS DAS: four wheel speeds (mm/s) + timestamp.
* ``msgVehicleDynamics`` — ABS DAS: yaw rate (mrad/s) + brake pressure
  (0.1% units) + timestamp.
* ``msgOdometry`` — navigation DAS's *imported* view of wheel speeds
  (renamed across the gateway: incoherent naming resolved).
* ``msgDynamicsPreSafe`` — Pre-Safe DAS's imported dynamics view.
* ``msgGpsFix`` — navigation DAS: absolute position (cm) + validity.
* ``msgSlidingRoof`` — comfort DAS: Fig. 6's event message.
* ``msgRoofState`` — dashboard's state view of the roof (Fig. 6's
  MovementState conversion target).
* ``msgRoofCommand`` / ``msgBeltCommand`` — Pre-Safe actuation events.
* ``msgBrakeCmd`` — X-by-wire DAS: brake force command (state, TT).

Conversion helpers translate between SI floats (vehicle model) and the
wire fixed-point units.
"""

from __future__ import annotations

from ..messaging import (
    BoolType,
    ElementDef,
    FieldDef,
    IntType,
    MessageType,
    Semantics,
    TimestampType,
    UIntType,
)

__all__ = [
    "wheel_speed_type",
    "vehicle_dynamics_type",
    "odometry_type",
    "dynamics_presafe_type",
    "gps_fix_type",
    "sliding_roof_type",
    "roof_state_type",
    "roof_command_type",
    "belt_command_type",
    "brake_cmd_type",
    "mm_per_s",
    "from_mm_per_s",
    "mrad_per_s",
    "from_mrad_per_s",
    "cm",
    "from_cm",
    "obs_time",
    "from_obs_time",
]


# ----------------------------------------------------------------------
# fixed-point conversions
# ----------------------------------------------------------------------
def mm_per_s(v: float) -> int:
    """m/s -> wire mm/s."""
    return max(0, min(2**31 - 1, round(v * 1000)))


def from_mm_per_s(raw: int) -> float:
    """Wire mm/s -> m/s."""
    return raw / 1000.0


def mrad_per_s(v: float) -> int:
    """rad/s -> wire mrad/s (signed)."""
    return max(-(2**15), min(2**15 - 1, round(v * 1000)))


def from_mrad_per_s(raw: int) -> float:
    """Wire mrad/s -> rad/s."""
    return raw / 1000.0


def cm(v: float) -> int:
    """m -> wire cm (signed 32-bit)."""
    return max(-(2**31), min(2**31 - 1, round(v * 100)))


def from_cm(raw: int) -> float:
    """Wire cm -> m."""
    return raw / 100.0


def obs_time(t_ns: int) -> int:
    """Simulation ns -> wire observation timestamp (µs, 32-bit wrap).

    Microsecond granularity keeps a 32-bit timestamp valid for ~71
    minutes of mission time; nanoseconds would wrap after 4.3 s.
    """
    return (t_ns // 1_000) % (2**32)


def from_obs_time(raw: int) -> int:
    """Wire µs timestamp -> ns (within the first wrap period)."""
    return raw * 1_000


# ----------------------------------------------------------------------
# message types
# ----------------------------------------------------------------------
def _key(name_id: int) -> ElementDef:
    return ElementDef("Name", key=True,
                      fields=(FieldDef("ID", IntType(16), static=True, static_value=name_id),))


def wheel_speed_type() -> MessageType:
    """ABS DAS: four wheel speeds (mm/s) + observation time."""
    return MessageType("msgWheelSpeed", elements=(
        _key(101),
        ElementDef("WheelSpeeds", convertible=True, semantics=Semantics.STATE, fields=(
            FieldDef("fl", UIntType(32)),
            FieldDef("fr", UIntType(32)),
            FieldDef("rl", UIntType(32)),
            FieldDef("rr", UIntType(32)),
            FieldDef("t_obs", TimestampType(32)),
        )),
    ))


def vehicle_dynamics_type() -> MessageType:
    """ABS DAS: yaw rate (mrad/s) + brake pressure (0.1%)."""
    return MessageType("msgVehicleDynamics", elements=(
        _key(102),
        ElementDef("Dynamics", convertible=True, semantics=Semantics.STATE, fields=(
            FieldDef("yaw_rate", IntType(16)),
            FieldDef("brake", UIntType(16)),
            FieldDef("t_obs", TimestampType(32)),
        )),
    ))


def odometry_type() -> MessageType:
    """The navigation DAS's name for imported wheel speeds."""
    return MessageType("msgOdometry", elements=(
        _key(201),
        ElementDef("WheelSpeeds", convertible=True, semantics=Semantics.STATE, fields=(
            FieldDef("fl", UIntType(32)),
            FieldDef("fr", UIntType(32)),
            FieldDef("rl", UIntType(32)),
            FieldDef("rr", UIntType(32)),
            FieldDef("t_obs", TimestampType(32)),
        )),
    ))


def dynamics_presafe_type() -> MessageType:
    """Pre-Safe's name for the imported vehicle dynamics."""
    return MessageType("msgDynamicsPreSafe", elements=(
        _key(301),
        ElementDef("Dynamics", convertible=True, semantics=Semantics.STATE, fields=(
            FieldDef("yaw_rate", IntType(16)),
            FieldDef("brake", UIntType(16)),
            FieldDef("t_obs", TimestampType(32)),
        )),
    ))


def gps_fix_type() -> MessageType:
    """Navigation DAS: absolute position fix (cm) + validity."""
    return MessageType("msgGpsFix", elements=(
        _key(202),
        ElementDef("Fix", convertible=True, semantics=Semantics.STATE, fields=(
            FieldDef("x", IntType(32)),
            FieldDef("y", IntType(32)),
            FieldDef("valid", BoolType()),
            FieldDef("t_obs", TimestampType(32)),
        )),
    ))


def sliding_roof_type() -> MessageType:
    """Fig. 6's message, canonical casing."""
    return MessageType("msgSlidingRoof", elements=(
        _key(731),
        ElementDef("MovementEvent", convertible=True, semantics=Semantics.EVENT, fields=(
            FieldDef("ValueChange", IntType(16)),
            FieldDef("EventTime", TimestampType(32)),
        )),
        ElementDef("FullClosure", fields=(FieldDef("Trigger", BoolType()),)),
    ))


def roof_state_type() -> MessageType:
    """Dashboard DAS: absolute roof position (Fig. 6 conversion target)."""
    return MessageType("msgRoofState", elements=(
        _key(732),
        ElementDef("MovementState", convertible=True, semantics=Semantics.STATE, fields=(
            FieldDef("StateValue", IntType(32)),
            FieldDef("ObservationTime", TimestampType(32)),
        )),
    ))


def roof_command_type() -> MessageType:
    """Pre-Safe -> comfort: close-the-roof actuation event."""
    return MessageType("msgRoofCommand", elements=(
        _key(401),
        ElementDef("Command", convertible=True, semantics=Semantics.EVENT, fields=(
            FieldDef("close", BoolType()),
            FieldDef("t_cmd", TimestampType(32)),
        )),
    ))


def belt_command_type() -> MessageType:
    """Pre-Safe: seat-belt tension actuation event."""
    return MessageType("msgBeltCommand", elements=(
        _key(402),
        ElementDef("Command", convertible=True, semantics=Semantics.EVENT, fields=(
            FieldDef("tension", UIntType(16)),
            FieldDef("t_cmd", TimestampType(32)),
        )),
    ))


def brake_cmd_type() -> MessageType:
    """X-by-wire DAS: commanded brake force (TT state)."""
    return MessageType("msgBrakeCmd", elements=(
        _key(501),
        ElementDef("Brake", convertible=True, semantics=Semantics.STATE, fields=(
            FieldDef("force", UIntType(16)),
            FieldDef("t_obs", TimestampType(32)),
        )),
    ))
