"""ABS DAS — safety-related chassis sensing on a TT virtual network.

Two sensor jobs publish state messages sampled from the vehicle model:

* :class:`WheelSpeedSensor` — "the speed sensors from the factory
  installed Antilock Braking System" whose reuse for navigation
  dead-reckoning is the paper's motivating example (Sec. I),
* :class:`DynamicsSensor` — yaw rate + brake pressure, the "existing
  car dynamics sensors" Pre-Safe correlates.

Both jobs refresh their output state ports every partition window; the
TT virtual network samples the ports at its a-priori instants
(sender-pull).  Fault hooks: ``value_distortion`` rewrites the produced
field dict (software value failure, Sec. II-D).
"""

from __future__ import annotations

from collections.abc import Callable

from ..platform import Job
from .signals import mm_per_s, mrad_per_s, obs_time, vehicle_dynamics_type, wheel_speed_type
from .vehicle import VehicleModel

__all__ = ["WheelSpeedSensor", "DynamicsSensor"]


class WheelSpeedSensor(Job):
    """Publishes ``msgWheelSpeed`` from the vehicle ground truth."""

    def __init__(self, sim, name, das, partition, vehicle: VehicleModel):
        super().__init__(sim, name, das, partition)
        self.vehicle = vehicle
        self.value_distortion: Callable[[dict], dict] | None = None
        self.samples_published = 0
        self._mtype = wheel_speed_type()

    def on_step(self) -> None:
        state = self.vehicle.state_at(self.sim.now)
        fields = {
            "fl": mm_per_s(state.wheel_fl),
            "fr": mm_per_s(state.wheel_fr),
            "rl": mm_per_s(state.wheel_rl),
            "rr": mm_per_s(state.wheel_rr),
            "t_obs": obs_time(self.sim.now),
        }
        if self.value_distortion is not None:
            fields = self.value_distortion(fields)
        self.port("msgWheelSpeed").write(self._mtype.instance(WheelSpeeds=fields))
        self.samples_published += 1

    # -- round-template support (see repro.sim.round_template) ---------
    def rt_counters(self) -> dict[str, int]:
        c = super().rt_counters()
        c["pub"] = self.samples_published
        return c

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        super().rt_advance(delta, k, prefix)
        self.samples_published += delta[prefix + "pub"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        # A distortion hook makes published payloads value-dependent in
        # ways replay cannot reproduce; sampling itself is stateless.
        return None if self.value_distortion is not None else ()

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        return None


class DynamicsSensor(Job):
    """Publishes ``msgVehicleDynamics`` (yaw rate + brake pressure)."""

    def __init__(self, sim, name, das, partition, vehicle: VehicleModel):
        super().__init__(sim, name, das, partition)
        self.vehicle = vehicle
        self.value_distortion: Callable[[dict], dict] | None = None
        self.samples_published = 0
        self._mtype = vehicle_dynamics_type()

    def on_step(self) -> None:
        state = self.vehicle.state_at(self.sim.now)
        fields = {
            "yaw_rate": mrad_per_s(state.yaw_rate),
            "brake": min(1000, round(state.braking * 1000)),
            "t_obs": obs_time(self.sim.now),
        }
        if self.value_distortion is not None:
            fields = self.value_distortion(fields)
        self.port("msgVehicleDynamics").write(
            self._mtype.instance(Dynamics=fields)
        )
        self.samples_published += 1

    # -- round-template support (see repro.sim.round_template) ---------
    def rt_counters(self) -> dict[str, int]:
        c = super().rt_counters()
        c["pub"] = self.samples_published
        return c

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        super().rt_advance(delta, k, prefix)
        self.samples_published += delta[prefix + "pub"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        return None if self.value_distortion is not None else ()

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        return None
