"""Small shared application jobs."""

from __future__ import annotations

from ..platform import Job

__all__ = ["RecorderJob"]


class RecorderJob(Job):
    """Records every pushed delivery; the generic consumer/actuator.

    Used for dashboards, belt actuators, and measurement endpoints: the
    job's behaviour *is* its reception log.
    """

    def __init__(self, sim, name, das, partition):
        super().__init__(sim, name, das, partition)
        self.received: list[tuple[int, str, object]] = []

    def on_message(self, port_name, instance, arrival) -> None:
        self.received.append((self.sim.now, port_name, instance))

    def values(self, port_name: str, element: str, field: str) -> list:
        return [
            inst.get(element, field)
            for _, p, inst in self.received
            if p == port_name
        ]

    def reception_times(self, port_name: str | None = None) -> list[int]:
        return [t for t, p, _ in self.received if port_name is None or p == port_name]

    # -- round-template support (see repro.sim.round_template) ---------
    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        # The reception log is observational only (not part of the
        # parity surface); replayed spans advance the msg counter while
        # the python-level log legitimately skips those entries.
        return ()

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        return None
