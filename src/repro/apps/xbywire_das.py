"""X-by-wire DAS — the safety-critical TT subsystem of Fig. 1.

A deliberately simple brake-by-wire control loop: the controller reads
the wheel-speed state (its own DAS's sensing would normally feed this;
in the integrated car it shares the ABS DAS's node but keeps its own TT
virtual network) and the brake pedal (from the vehicle model), computes
a slip-limited brake force, and publishes ``msgBrakeCmd`` as TT state.

Its role in the experiments is structural: a second *time-triggered*
virtual network whose latency/jitter must remain untouched by ET load
and by faults elsewhere (E2), demonstrating that safety-critical and
non-safety-critical DASs coexist on one physical network.
"""

from __future__ import annotations

from ..platform import Job
from .signals import brake_cmd_type, obs_time
from .vehicle import VehicleModel

__all__ = ["BrakeByWireController"]


class BrakeByWireController(Job):
    """Publishes the commanded brake force on the X-by-wire TT VN."""

    def __init__(self, sim, name, das, partition, vehicle: VehicleModel,
                 max_force: int = 1000):
        super().__init__(sim, name, das, partition)
        self.vehicle = vehicle
        self.max_force = max_force
        self.commands_published = 0
        self._mtype = brake_cmd_type()

    def on_step(self) -> None:
        state = self.vehicle.state_at(self.sim.now)
        # Slip limiting: under a skid, modulate the force down.
        force = round(state.braking * self.max_force)
        if state.skidding:
            force = force // 2
        self.port("msgBrakeCmd").write(self._mtype.instance(Brake={
            "force": min(force, 2**16 - 1),
            "t_obs": obs_time(self.sim.now),
        }))
        self.commands_published += 1

    # -- round-template support (see repro.sim.round_template) ---------
    def rt_counters(self) -> dict[str, int]:
        c = super().rt_counters()
        c["pub"] = self.commands_published
        return c

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        super().rt_advance(delta, k, prefix)
        self.commands_published += delta[prefix + "pub"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        # Sampling is stateless: the published force tracks the vehicle
        # model, whose behavioural phase the VehicleFingerprint guards.
        return ()

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        return None
