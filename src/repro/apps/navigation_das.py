"""Navigation DAS — GPS plus dead reckoning from imported wheel speeds.

Sec. I: "the speed sensors from the factory installed Antilock Braking
System (ABS) can be exploited to estimate the car's heading for the
navigation system during periods of GPS unavailability.  The redundant
sensors can be eliminated in one of the DASs leading to reduced
resource consumption."

:class:`GpsReceiver` publishes position fixes except during configured
outage windows.  :class:`NavigationEstimator` maintains the position
estimate: when a fresh fix is present it snaps to it; during outages it
dead-reckons by integrating the imported odometry (wheel speeds renamed
``msgOdometry`` by the gateway) and imported yaw rate.  Without the
gateway import, the estimator can only coast on its last fix — the
accuracy gap between those two modes is exactly experiment E9.
"""

from __future__ import annotations

import math

from ..platform import Job
from .signals import cm, from_cm, from_mm_per_s, gps_fix_type, obs_time
from .vehicle import VehicleModel

__all__ = ["GpsReceiver", "NavigationEstimator"]


class GpsReceiver(Job):
    """Publishes ``msgGpsFix`` on the navigation ET network, with
    configurable outage windows (tunnels, urban canyons)."""

    def __init__(self, sim, name, das, partition, vehicle: VehicleModel,
                 outages: list[tuple[int, int]] | None = None,
                 noise_m: float = 0.0, fix_period: int = 100_000_000):
        super().__init__(sim, name, das, partition)
        self.vn = None  # ET VN; bound by the assembler
        self.vehicle = vehicle
        self.outages = list(outages or [])
        self.noise_m = noise_m
        self.fix_period = fix_period  # 10 Hz GPS by default
        self._last_fix: int | None = None
        self.fixes_published = 0
        self._mtype = gps_fix_type()

    def _available(self, t: int) -> bool:
        return not any(a <= t < b for a, b in self.outages)

    def on_step(self) -> None:
        now = self.sim.now
        if self.vn is None or not self._available(now):
            return
        if self._last_fix is not None and now - self._last_fix < self.fix_period:
            return
        self._last_fix = now
        state = self.vehicle.state_at(now)
        nx = ny = 0.0
        if self.noise_m > 0.0:
            rng = self.sim.streams.get(f"gps.{self.name}")
            nx, ny = rng.normal(0, self.noise_m, size=2)
        self.vn.send("msgGpsFix", self._mtype.instance(Fix={
            "x": cm(state.x + nx),
            "y": cm(state.y + ny),
            "valid": True,
            "t_obs": obs_time(now),
        }), sender_job=self.name)
        self.fixes_published += 1


class NavigationEstimator(Job):
    """Maintains (x, y, heading); GPS-first, dead reckoning as fallback.

    Input ports (pull, state semantics):

    * ``msgGpsFix`` — own DAS,
    * ``msgOdometry`` — imported wheel speeds (present only when the
      ABS→navigation gateway exists),
    * ``msgDynamicsNav``-style yaw import is folded into odometry here:
      heading is integrated from the left/right wheel-speed difference,
      which is how production dead reckoning uses ABS sensors.
    """

    def __init__(self, sim, name, das, partition, vehicle: VehicleModel,
                 gps_fresh_ns: int = 300_000_000, track_width: float = 1.6):
        # gps_fresh_ns: a fix older than ~3 fix periods (10 Hz GPS) is
        # treated as lost; keeping a stale fix "fresh" for longer would
        # freeze the estimate at the start of every outage and the
        # dead-reckoned track would lag the truth by that freeze time.
        super().__init__(sim, name, das, partition)
        self.vehicle = vehicle
        self.gps_fresh_ns = gps_fresh_ns
        self.track_width = track_width
        self.x = 0.0
        self.y = 0.0
        self.heading = 0.0
        self._last_step: int | None = None
        self.errors: list[tuple[int, float]] = []  # (t, |estimate - truth| m)
        self.dead_reckoning_steps = 0
        self.gps_snaps = 0

    # ------------------------------------------------------------------
    def on_step(self) -> None:
        now = self.sim.now
        dt = 0.0 if self._last_step is None else (now - self._last_step) / 1e9
        self._last_step = now

        # Heading integrates from the odometry import *continuously* —
        # otherwise every outage would start with a stale heading and
        # the dead-reckoned track would swing wide immediately.
        v = self._read_odometry()
        if v is not None and dt > 0.0:
            speed, yaw = v
            self.heading += yaw * dt

        gps_port = self.port("msgGpsFix")
        fix, t_fix = gps_port.read()
        if fix is not None and t_fix is not None and now - t_fix <= self.gps_fresh_ns:
            self.x = from_cm(fix.get("Fix", "x"))
            self.y = from_cm(fix.get("Fix", "y"))
            self.gps_snaps += 1
        elif v is not None and dt > 0.0:
            speed, _ = v
            self.x += speed * math.cos(self.heading) * dt
            self.y += speed * math.sin(self.heading) * dt
            self.dead_reckoning_steps += 1
        # else: no import, no fix — coast on the last estimate.

        truth = self.vehicle.state_at(now)
        err = math.hypot(self.x - truth.x, self.y - truth.y)
        self.errors.append((now, err))

    def _read_odometry(self) -> tuple[float, float] | None:
        """(speed m/s, yaw rad/s) from the imported wheel speeds."""
        from ..errors import PortError

        try:
            odo, _ = self.port("msgOdometry").read()
        except PortError:
            return None  # no odometry import configured (E9's baseline)
        if odo is None:
            return None
        speeds = odo.values["WheelSpeeds"]
        left = from_mm_per_s(speeds["fl"])
        right = from_mm_per_s(speeds["fr"])
        v = (left + right) / 2.0
        yaw = (right - left) / self.track_width
        return v, yaw

    # ------------------------------------------------------------------
    def error_during(self, since: int, until: int) -> list[float]:
        return [e for t, e in self.errors if since <= t < until]

    def max_error(self, since: int = 0, until: int | None = None) -> float:
        errs = [e for t, e in self.errors
                if t >= since and (until is None or t < until)]
        return max(errs) if errs else 0.0
