"""Navigation DAS — GPS plus dead reckoning from imported wheel speeds.

Sec. I: "the speed sensors from the factory installed Antilock Braking
System (ABS) can be exploited to estimate the car's heading for the
navigation system during periods of GPS unavailability.  The redundant
sensors can be eliminated in one of the DASs leading to reduced
resource consumption."

:class:`GpsReceiver` publishes position fixes except during configured
outage windows.  :class:`NavigationEstimator` maintains the position
estimate: when a fresh fix is present it snaps to it; during outages it
dead-reckons by integrating the imported odometry (wheel speeds renamed
``msgOdometry`` by the gateway) and imported yaw rate.  Without the
gateway import, the estimator can only coast on its last fix — the
accuracy gap between those two modes is exactly experiment E9.
"""

from __future__ import annotations

import math

from ..platform import Job
from .signals import cm, from_cm, from_mm_per_s, gps_fix_type, obs_time
from .vehicle import VehicleModel

__all__ = ["GpsReceiver", "NavigationEstimator"]


class GpsReceiver(Job):
    """Publishes ``msgGpsFix`` on the navigation ET network, with
    configurable outage windows (tunnels, urban canyons)."""

    def __init__(self, sim, name, das, partition, vehicle: VehicleModel,
                 outages: list[tuple[int, int]] | None = None,
                 noise_m: float = 0.0, fix_period: int = 100_000_000):
        super().__init__(sim, name, das, partition)
        self.vn = None  # ET VN; bound by the assembler
        self.vehicle = vehicle
        self.outages = list(outages or [])
        self.noise_m = noise_m
        self.fix_period = fix_period  # 10 Hz GPS by default
        self._last_fix: int | None = None
        self.fixes_published = 0
        self._mtype = gps_fix_type()

    def _available(self, t: int) -> bool:
        return not any(a <= t < b for a, b in self.outages)

    def on_step(self) -> None:
        now = self.sim.now
        if self.vn is None or not self._available(now):
            return
        if self._last_fix is not None and now - self._last_fix < self.fix_period:
            return
        self._last_fix = now
        state = self.vehicle.state_at(now)
        nx = ny = 0.0
        if self.noise_m > 0.0:
            rng = self.sim.streams.get(f"gps.{self.name}")
            nx, ny = rng.normal(0, self.noise_m, size=2)
        self.vn.send("msgGpsFix", self._mtype.instance(Fix={
            "x": cm(state.x + nx),
            "y": cm(state.y + ny),
            "valid": True,
            "t_obs": obs_time(now),
        }), sender_job=self.name)
        self.fixes_published += 1

    # -- round-template support (see repro.sim.round_template) ---------
    def _rt_next_fire(self) -> int:
        """Earliest instant at which a fix could be published."""
        cand = 0 if self._last_fix is None else self._last_fix + self.fix_period
        moved = True
        while moved:
            moved = False
            for a, b in self.outages:
                if a <= cand < b:
                    cand = b
                    moved = True
        return cand

    def rt_counters(self) -> dict[str, int]:
        c = super().rt_counters()
        c["pub"] = self.fixes_published
        return c

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        super().rt_advance(delta, k, prefix)
        self.fixes_published += delta[prefix + "pub"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        if self.vn is None:
            return ("unbound",)
        # A fix fire mutates _last_fix and emits an ET send; neither can
        # be replayed.  Veto while the next fire is due — the veto
        # self-sustains until the live step actually performs it.
        if self._rt_next_fire() < boundary + round_len:
            return None
        return ()

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        if self.vn is None:
            return None
        return max(0, (self._rt_next_fire() - boundary) // round_len - 1)


class NavigationEstimator(Job):
    """Maintains (x, y, heading); GPS-first, dead reckoning as fallback.

    Input ports (pull, state semantics):

    * ``msgGpsFix`` — own DAS,
    * ``msgOdometry`` — imported wheel speeds (present only when the
      ABS→navigation gateway exists),
    * ``msgDynamicsNav``-style yaw import is folded into odometry here:
      heading is integrated from the left/right wheel-speed difference,
      which is how production dead reckoning uses ABS sensors.
    """

    def __init__(self, sim, name, das, partition, vehicle: VehicleModel,
                 gps_fresh_ns: int = 300_000_000, track_width: float = 1.6):
        # gps_fresh_ns: a fix older than ~3 fix periods (10 Hz GPS) is
        # treated as lost; keeping a stale fix "fresh" for longer would
        # freeze the estimate at the start of every outage and the
        # dead-reckoned track would lag the truth by that freeze time.
        super().__init__(sim, name, das, partition)
        self.vehicle = vehicle
        self.gps_fresh_ns = gps_fresh_ns
        self.track_width = track_width
        self.x = 0.0
        self.y = 0.0
        self.heading = 0.0
        self._last_step: int | None = None
        self.errors: list[tuple[int, float]] = []  # (t, |estimate - truth| m)
        self.dead_reckoning_steps = 0
        self.gps_snaps = 0

    # ------------------------------------------------------------------
    def on_step(self) -> None:
        now = self.sim.now
        dt = 0.0 if self._last_step is None else (now - self._last_step) / 1e9
        self._last_step = now

        # Heading integrates from the odometry import *continuously* —
        # otherwise every outage would start with a stale heading and
        # the dead-reckoned track would swing wide immediately.
        v = self._read_odometry()
        if v is not None and dt > 0.0:
            speed, yaw = v
            self.heading += yaw * dt

        gps_port = self.port("msgGpsFix")
        fix, t_fix = gps_port.read()
        if fix is not None and t_fix is not None and now - t_fix <= self.gps_fresh_ns:
            self.x = from_cm(fix.get("Fix", "x"))
            self.y = from_cm(fix.get("Fix", "y"))
            self.gps_snaps += 1
        elif v is not None and dt > 0.0:
            speed, _ = v
            self.x += speed * math.cos(self.heading) * dt
            self.y += speed * math.sin(self.heading) * dt
            self.dead_reckoning_steps += 1
        # else: no import, no fix — coast on the last estimate.

        truth = self.vehicle.state_at(now)
        err = math.hypot(self.x - truth.x, self.y - truth.y)
        self.errors.append((now, err))

    def _read_odometry(self) -> tuple[float, float] | None:
        """(speed m/s, yaw rad/s) from the imported wheel speeds."""
        from ..errors import PortError

        try:
            odo, _ = self.port("msgOdometry").read()
        except PortError:
            return None  # no odometry import configured (E9's baseline)
        if odo is None:
            return None
        speeds = odo.values["WheelSpeeds"]
        left = from_mm_per_s(speeds["fl"])
        right = from_mm_per_s(speeds["fr"])
        v = (left + right) / 2.0
        yaw = (right - left) / self.track_width
        return v, yaw

    # -- round-template support (see repro.sim.round_template) ---------
    # The float estimate (x, y, heading, errors) is observational — not
    # part of the scenario parity surface — so replayed spans may skip
    # its updates.  What must stay exact are the branch counters below,
    # whose per-step increments depend only on which branch of on_step
    # runs: that branch is pinned by the fingerprint cells.
    def rt_counters(self) -> dict[str, int]:
        c = super().rt_counters()
        c["snap"] = self.gps_snaps
        c["dr"] = self.dead_reckoning_steps
        return c

    def rt_advance(self, delta: dict[str, int], k: int, prefix: str) -> None:
        super().rt_advance(delta, k, prefix)
        self.gps_snaps += delta[prefix + "snap"] * k
        self.dead_reckoning_steps += delta[prefix + "dr"] * k

    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        gps = self._ports.get("msgGpsFix")
        if gps is None:
            cls = "noport"
        else:
            t_fix = gps._t_update
            if gps._value is None or t_fix is None:
                cls = "nofix"
            else:
                cut = t_fix + self.gps_fresh_ns
                if cut >= boundary + round_len:
                    cls = "fresh"
                elif cut > boundary:
                    return None  # freshness expires mid-round — run live
                else:
                    cls = "stale"
        odo = self._ports.get("msgOdometry")
        has_odo = odo is not None and odo._value is not None
        return (cls, has_odo, self._last_step is None)

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        gps = self._ports.get("msgGpsFix")
        if gps is None or gps._value is None or gps._t_update is None:
            return None
        cut = gps._t_update + self.gps_fresh_ns
        if cut <= boundary:
            return None  # already stale — no freshness transition ahead
        return max(0, (cut - boundary) // round_len)

    # ------------------------------------------------------------------
    def error_during(self, since: int, until: int) -> list[float]:
        return [e for t, e in self.errors if since <= t < until]

    def max_error(self, since: int = 0, until: int | None = None) -> float:
        errs = [e for t, e in self.errors
                if t >= since and (until is None or t < until)]
        return max(errs) if errs else 0.0
