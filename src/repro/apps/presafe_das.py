"""Pre-Safe DAS — tactic coordination across subsystems (Sec. I).

"The Pre-Safe system tensions seat-belts, realigns seats to a safer
position, and closes an open sun roof when sensors detect possibly
hazardous situations.  The system correlates information of existing
car dynamics sensors in order to determine hazardous situations such as
skidding, emergency braking, or avoidance maneuvers."

:class:`PreSafeController` consumes the *imported* vehicle dynamics
(``msgDynamicsPreSafe`` — the ABS DAS's sensors, renamed across the
gateway) and fires when |yaw rate| or brake pressure crosses its
thresholds: it emits ``msgBeltCommand`` and ``msgRoofCommand`` events
on its own DAS; a second gateway exports the roof command into the
comfort DAS.  E11 measures the skid-onset → roof-command latency, and —
crucially — that the whole function exists *without* fusing ABS,
Pre-Safe, and comfort into one DAS.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..platform import Job
from .signals import belt_command_type, from_mrad_per_s, obs_time, roof_command_type

if TYPE_CHECKING:  # pragma: no cover
    from ..vn import ETVirtualNetwork

__all__ = ["PreSafeController"]


class PreSafeController(Job):
    """Hazard detection + actuation command emission."""

    def __init__(self, sim, name, das, partition,
                 yaw_threshold: float = 0.5,  # rad/s
                 brake_threshold: float = 0.8,  # pedal fraction
                 rearm_after: int = 3_000_000_000):
        super().__init__(sim, name, das, partition)
        self.vn: "ETVirtualNetwork | None" = None
        self.yaw_threshold = yaw_threshold
        self.brake_threshold = brake_threshold
        self.rearm_after = rearm_after
        self.detections: list[int] = []
        self.commands_sent: list[int] = []
        self._armed = True
        self._last_fire: int | None = None
        self._roof_type = roof_command_type()
        self._belt_type = belt_command_type()

    def on_step(self) -> None:
        now = self.sim.now
        if not self._armed and self._last_fire is not None:
            if now - self._last_fire >= self.rearm_after:
                self._armed = True
        if not self._armed:
            return
        from ..errors import PortError

        try:
            dyn, t_update = self.port("msgDynamicsPreSafe").read()
        except PortError:
            return  # no dynamics import: the function cannot exist
        if dyn is None:
            return
        yaw = abs(from_mrad_per_s(dyn.get("Dynamics", "yaw_rate")))
        brake = dyn.get("Dynamics", "brake") / 1000.0
        if yaw >= self.yaw_threshold or brake >= self.brake_threshold:
            self._fire(now)

    def _fire(self, now: int) -> None:
        self._armed = False
        self._last_fire = now
        self.detections.append(now)
        if self.vn is None:
            return
        self.vn.send("msgBeltCommand", self._belt_type.instance(Command={
            "tension": 800, "t_cmd": obs_time(now),
        }), sender_job=self.name)
        self.vn.send("msgRoofCommand", self._roof_type.instance(Command={
            "close": True, "t_cmd": obs_time(now),
        }), sender_job=self.name)
        self.commands_sent.append(now)

    # -- round-template support (see repro.sim.round_template) ---------
    def rt_fingerprint(self, boundary: int, round_len: int) -> tuple | None:
        if not self._armed:
            if self._last_fire is None:
                return None  # inconsistent — be conservative
            due = self._last_fire + self.rearm_after
            if due < boundary + round_len:
                return None  # re-arm flips _armed this round — run live
            return ("disarmed",)
        port = self._ports.get("msgDynamicsPreSafe")
        if port is None:
            return ("noimport",)
        dyn = port._value
        if dyn is None:
            return ("armed", "nodata")
        # Same hazard predicate as on_step (side-effect-free peek): a
        # firing round mutates _armed/_last_fire and emits ET sends, so
        # it must run live; the veto self-sustains until the fire.
        yaw = abs(from_mrad_per_s(dyn.get("Dynamics", "yaw_rate")))
        brake = dyn.get("Dynamics", "brake") / 1000.0
        if yaw >= self.yaw_threshold or brake >= self.brake_threshold:
            return None
        return ("armed", "calm")

    def rt_headroom(self, boundary: int, round_len: int) -> int | None:
        if not self._armed and self._last_fire is not None:
            due = self._last_fire + self.rearm_after
            return max(0, (due - boundary) // round_len - 1)
        return None
