"""Automotive application DASs (substrate S11, Section V substitute).

Vehicle dynamics ground truth, sensor/control/comfort/navigation jobs,
and the full-car assembler with all of the paper's motivating couplings
(ABS→navigation reuse, Pre-Safe correlation, Fig. 6 roof→dashboard).
"""

from .abs_das import DynamicsSensor, WheelSpeedSensor
from .car import CarConfig, CarSystem, build_car
from .comfort_das import SlidingRoofController
from .common import RecorderJob
from .navigation_das import GpsReceiver, NavigationEstimator
from .presafe_das import PreSafeController
from .vehicle import Phase, VehicleModel, VehicleState, skid_trip, standard_trip
from .xbywire_das import BrakeByWireController

__all__ = [
    "WheelSpeedSensor",
    "DynamicsSensor",
    "GpsReceiver",
    "NavigationEstimator",
    "SlidingRoofController",
    "PreSafeController",
    "BrakeByWireController",
    "RecorderJob",
    "Phase",
    "VehicleModel",
    "VehicleState",
    "standard_trip",
    "skid_trip",
    "CarConfig",
    "CarSystem",
    "build_car",
]
