"""The exemplary automotive system (Section V substitute).

Assembles the full integrated car on four node computers and six DASs,
with every coupling the paper's motivating examples name:

====================  =========  =======================================
DAS                   paradigm   content
====================  =========  =======================================
abs                   TT         wheel-speed + dynamics sensors
xbywire               TT         brake-by-wire control
navigation            ET         GPS + dead-reckoning estimator
presafe               ET         hazard correlation + actuation commands
comfort               ET         Fig. 6 sliding roof
dashboard             TT         instrument display of the roof state
====================  =========  =======================================

Gateways (all hidden, hosted on ``center-ecu``):

* ``gw-nav``      abs → navigation: ``msgWheelSpeed`` → ``msgOdometry``
  (sensor reuse for dead reckoning, Sec. I),
* ``gw-presafe``  abs → presafe: ``msgVehicleDynamics`` →
  ``msgDynamicsPreSafe`` (dynamics correlation, Sec. I),
* ``gw-roof``     presafe → comfort: ``msgRoofCommand`` pass-through
  (tactic coordination: close the roof on hazard),
* ``gw-dash``     comfort → dashboard: ``msgSlidingRoof`` →
  ``msgRoofState`` with Fig. 6's event→state transfer semantics and the
  reception-monitor automaton.

Every coupling is individually switchable so experiments can compare
"integrated with gateways" against "strict separation" (the paper's
claim is precisely the delta).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..automata import AutomatonBuilder
from ..messaging import Semantics
from ..sim import MS, SEC, Simulator, make_trace
from ..spec import (
    ControlParadigm,
    Direction,
    ETTiming,
    InteractionType,
    LinkSpec,
    PortSpec,
    TTTiming,
)
from ..spec.transfer import DerivedElement, DerivedField, TransferSemantics
from ..systems import GatewayDecl, System, SystemBuilder
from . import signals
from .abs_das import DynamicsSensor, WheelSpeedSensor
from .comfort_das import SlidingRoofController
from .common import RecorderJob
from .navigation_das import GpsReceiver, NavigationEstimator
from .presafe_das import PreSafeController
from .vehicle import VehicleFingerprint, VehicleModel, skid_trip

__all__ = ["CarConfig", "CarSystem", "build_car"]


@dataclass
class CarConfig:
    """Which couplings exist, plus workload knobs."""

    vehicle: VehicleModel = field(default_factory=skid_trip)
    seed: int = 0
    nav_import: bool = True
    presafe_import: bool = True
    roof_command_export: bool = True
    dashboard_import: bool = True
    gps_outages: list[tuple[int, int]] = field(default_factory=list)
    gps_noise_m: float = 0.0
    roof_motion_plan: list[tuple[int, int]] = field(
        default_factory=lambda: [(2 * SEC, 60), (20 * SEC, 30)]
    )
    d_acc_odometry: int = 200 * MS
    d_acc_dynamics: int = 100 * MS
    d_acc_roof: int = 500 * MS
    sensor_period: int = 10 * MS
    #: The roof job emits at most once per 2 ms partition window, but the
    #: observable interarrival at the gateway jitters by up to one TDMA
    #: cycle (ET slot phase) — the link-level tmin must budget for that
    #: transmission jitter (the paper's level-3 spec concern, Sec. II-E).
    roof_tmin: int = 1 * MS
    roof_tmax: int = 60 * SEC  # generous: the roof is mostly idle
    major_frame: int = 2 * MS
    guardian_enabled: bool = True
    #: Trace configuration (see repro.sim.trace.make_trace): "full"
    #: keeps every record in memory, "counters" keeps per-category
    #: counts only, "stream" writes NDJSON to ``trace_stream``, "off"
    #: disables tracing.  Metrics stay on in every mode.
    trace_mode: str = "full"
    trace_stream: str | None = None
    #: Causal flow tracing (repro.sim.flow): assign per-message flow ids
    #: and emit flow.origin/flow.hop records.  Off by default — with it
    #: off the trace byte stream is identical to a build without flow
    #: tracing.
    flow_tracing: bool = False
    #: Wall-clock handler profiling (Simulator.enable_profiling):
    #: observe per-event-label callback durations into profile.*
    #: histograms.  Off by default (wall time is nondeterministic).
    profile: bool = False
    #: Round-template fast-forward (repro.sim.round_template).  On by
    #: default in *strict* mode: the car's ET VNs and gateways are
    #: dynamic sources that block strict replay, so the engine stays
    #: disengaged here but records its reason.  The scenario runner
    #: re-activates quasi-periodic mode, where the same dynamics
    #: participate via fingerprints instead (see runner/scenarios.py).
    round_template: bool = True
    #: Optional value-domain filter chain on the abs->navigation
    #: gateway (e.g. plausibility bounds on imported wheel speeds).
    nav_import_filters: object = None  # FilterChain | None


@dataclass
class CarSystem:
    """The assembled car plus direct references for experiments."""

    system: System
    config: CarConfig
    vehicle: VehicleModel
    wheel_sensor: WheelSpeedSensor
    dynamics_sensor: DynamicsSensor
    gps: GpsReceiver
    navigator: NavigationEstimator
    presafe: PreSafeController
    roof: SlidingRoofController
    display: RecorderJob
    belt: RecorderJob

    @property
    def sim(self) -> Simulator:
        return self.system.sim

    def run_for(self, duration: int) -> None:
        self.system.run_for(duration)


def _tt_state_out(mtype, period, d_acc=None) -> PortSpec:
    return PortSpec(message_type=mtype, direction=Direction.OUTPUT,
                    semantics=Semantics.STATE,
                    control=ControlParadigm.TIME_TRIGGERED,
                    tt=TTTiming(period=period), temporal_accuracy=d_acc)


def _et_state_in(mtype, d_acc=None) -> PortSpec:
    return PortSpec(message_type=mtype, direction=Direction.INPUT,
                    semantics=Semantics.STATE,
                    control=ControlParadigm.EVENT_TRIGGERED,
                    interaction=InteractionType.PULL, temporal_accuracy=d_acc)


def _et_event_out(mtype, priority=100, queue=32) -> PortSpec:
    return PortSpec(message_type=mtype, direction=Direction.OUTPUT,
                    semantics=Semantics.EVENT,
                    control=ControlParadigm.EVENT_TRIGGERED,
                    queue_depth=queue, priority=priority)


def _et_event_in(mtype, queue=32) -> PortSpec:
    return PortSpec(message_type=mtype, direction=Direction.INPUT,
                    semantics=Semantics.EVENT,
                    control=ControlParadigm.EVENT_TRIGGERED,
                    interaction=InteractionType.PUSH, queue_depth=queue)


def _roof_reception_monitor(tmin: int, tmax: int):
    """Fig. 6's msgSlidingRoofReception automaton, parameterized."""
    return (
        AutomatonBuilder("msgSlidingRoofReception")
        .parameter("tmin", tmin)
        .parameter("tmax", tmax)
        .location("statePassive", initial=True)
        .location("stateActive")
        .location("stateError", error=True)
        .on_receive("msgSlidingRoof", "statePassive", "stateActive",
                    guard="x >= tmin", assign="x := 0")
        .on_receive("msgSlidingRoof", "statePassive", "stateError", guard="x < tmin")
        .transition("stateActive", "statePassive", guard="x < tmax")
        .transition("statePassive", "stateError", guard="x >= tmax")
        .build()
    )


def build_car(config: CarConfig | None = None) -> CarSystem:
    """Assemble (and start) the integrated automotive system."""
    cfg = config if config is not None else CarConfig()
    vehicle = cfg.vehicle
    sim = Simulator(seed=cfg.seed,
                    trace=make_trace(cfg.trace_mode, cfg.trace_stream))
    if cfg.flow_tracing:
        sim.flows.enable()
    if cfg.profile:
        sim.enable_profiling()
    if cfg.round_template:
        sim.round_template.activate()
        # Pin the vehicle model's behavioural phase for quasi-periodic
        # replay (no-op in strict mode): transitions of the quantized
        # dynamics veto replay around them, steady phases are replayable.
        sim.round_template.register_participant(VehicleFingerprint(vehicle))
    builder = SystemBuilder(sim=sim, major_frame=cfg.major_frame,
                            guardian_enabled=cfg.guardian_enabled)
    for node in ("front-ecu", "center-ecu", "body-ecu", "nav-ecu"):
        builder.add_node(node)
    builder.add_das("abs", ControlParadigm.TIME_TRIGGERED)
    builder.add_das("xbywire", ControlParadigm.TIME_TRIGGERED)
    builder.add_das("navigation", ControlParadigm.EVENT_TRIGGERED)
    builder.add_das("presafe", ControlParadigm.EVENT_TRIGGERED)
    builder.add_das("comfort", ControlParadigm.EVENT_TRIGGERED)
    builder.add_das("dashboard", ControlParadigm.TIME_TRIGGERED)

    # ------------------------------------------------------------------
    # jobs
    # ------------------------------------------------------------------
    period = cfg.sensor_period
    builder.add_job(
        "wheel-sensor", "abs", "front-ecu",
        lambda sim, n, d, p: WheelSpeedSensor(sim, n, d, p, vehicle),
        ports=(_tt_state_out(signals.wheel_speed_type(), period),),
    )
    builder.add_job(
        "dyn-sensor", "abs", "front-ecu",
        lambda sim, n, d, p: DynamicsSensor(sim, n, d, p, vehicle),
        ports=(_tt_state_out(signals.vehicle_dynamics_type(), period),),
    )
    from .xbywire_das import BrakeByWireController

    builder.add_job(
        "brake-ctrl", "xbywire", "front-ecu",
        lambda sim, n, d, p: BrakeByWireController(sim, n, d, p, vehicle),
        ports=(_tt_state_out(signals.brake_cmd_type(), period),),
    )
    builder.add_job(
        "gps", "navigation", "nav-ecu",
        lambda sim, n, d, p: GpsReceiver(sim, n, d, p, vehicle,
                                         outages=cfg.gps_outages,
                                         noise_m=cfg.gps_noise_m),
        ports=(_et_event_out(signals.gps_fix_type(), priority=50),),
    )
    nav_ports = [_et_state_in(signals.gps_fix_type())]
    if cfg.nav_import:
        nav_ports.append(_et_state_in(signals.odometry_type(),
                                      d_acc=cfg.d_acc_odometry))
    builder.add_job(
        "navigator", "navigation", "nav-ecu",
        lambda sim, n, d, p: NavigationEstimator(sim, n, d, p, vehicle),
        ports=tuple(nav_ports),
    )
    presafe_ports = [
        _et_event_out(signals.roof_command_type(), priority=10),
        _et_event_out(signals.belt_command_type(), priority=10),
    ]
    if cfg.presafe_import:
        presafe_ports.append(_et_state_in(signals.dynamics_presafe_type(),
                                          d_acc=cfg.d_acc_dynamics))
    builder.add_job(
        "presafe", "presafe", "center-ecu",
        lambda sim, n, d, p: PreSafeController(sim, n, d, p),
        ports=tuple(presafe_ports),
    )
    builder.add_job(
        "belt-actuator", "presafe", "center-ecu",
        lambda sim, n, d, p: RecorderJob(sim, n, d, p),
        ports=(_et_event_in(signals.belt_command_type()),),
    )
    roof_ports = [_et_event_out(signals.sliding_roof_type(), priority=60)]
    if cfg.roof_command_export:
        roof_ports.append(_et_event_in(signals.roof_command_type()))
    builder.add_job(
        "roof", "comfort", "body-ecu",
        lambda sim, n, d, p: SlidingRoofController(
            sim, n, d, p, motion_plan=list(cfg.roof_motion_plan)),
        ports=tuple(roof_ports),
    )
    builder.add_job(
        "display", "dashboard", "body-ecu",
        lambda sim, n, d, p: RecorderJob(sim, n, d, p),
        ports=(PortSpec(
            message_type=signals.roof_state_type(), direction=Direction.INPUT,
            semantics=Semantics.STATE, control=ControlParadigm.TIME_TRIGGERED,
            tt=TTTiming(period=20 * MS), interaction=InteractionType.PUSH,
            temporal_accuracy=cfg.d_acc_roof,
        ),),
    )

    # ------------------------------------------------------------------
    # gateways
    # ------------------------------------------------------------------
    if cfg.nav_import:
        builder.add_gateway(GatewayDecl(
            name="gw-nav", host="center-ecu", das_a="abs", das_b="navigation",
            link_a=LinkSpec(das="abs", ports=(PortSpec(
                message_type=signals.wheel_speed_type(), direction=Direction.INPUT,
                semantics=Semantics.STATE, control=ControlParadigm.TIME_TRIGGERED,
                tt=TTTiming(period=period), temporal_accuracy=cfg.d_acc_odometry,
            ),)),
            link_b=LinkSpec(das="navigation", ports=(PortSpec(
                message_type=signals.odometry_type(), direction=Direction.OUTPUT,
                semantics=Semantics.STATE, control=ControlParadigm.EVENT_TRIGGERED,
                temporal_accuracy=cfg.d_acc_odometry, priority=40,
            ),)),
            rules=[("msgWheelSpeed", "msgOdometry", "a_to_b",
                    cfg.nav_import_filters)],
        ))
    if cfg.presafe_import:
        builder.add_gateway(GatewayDecl(
            name="gw-presafe", host="center-ecu", das_a="abs", das_b="presafe",
            link_a=LinkSpec(das="abs", ports=(PortSpec(
                message_type=signals.vehicle_dynamics_type(), direction=Direction.INPUT,
                semantics=Semantics.STATE, control=ControlParadigm.TIME_TRIGGERED,
                tt=TTTiming(period=period), temporal_accuracy=cfg.d_acc_dynamics,
            ),)),
            link_b=LinkSpec(das="presafe", ports=(PortSpec(
                message_type=signals.dynamics_presafe_type(), direction=Direction.OUTPUT,
                semantics=Semantics.STATE, control=ControlParadigm.EVENT_TRIGGERED,
                temporal_accuracy=cfg.d_acc_dynamics, priority=20,
            ),)),
            rules=[("msgVehicleDynamics", "msgDynamicsPreSafe", "a_to_b", None)],
        ))
    if cfg.roof_command_export:
        builder.add_gateway(GatewayDecl(
            name="gw-roof", host="center-ecu", das_a="presafe", das_b="comfort",
            link_a=LinkSpec(das="presafe", ports=(PortSpec(
                message_type=signals.roof_command_type(), direction=Direction.INPUT,
                semantics=Semantics.EVENT, control=ControlParadigm.EVENT_TRIGGERED,
                queue_depth=8,
            ),)),
            link_b=LinkSpec(das="comfort", ports=(PortSpec(
                message_type=signals.roof_command_type(), direction=Direction.OUTPUT,
                semantics=Semantics.EVENT, control=ControlParadigm.EVENT_TRIGGERED,
                queue_depth=8, priority=10,
            ),)),
            rules=[("msgRoofCommand", "msgRoofCommand", "a_to_b", None)],
        ))
    if cfg.dashboard_import:
        transfer = TransferSemantics(elements=(
            DerivedElement(
                name="MovementState", source_element="MovementEvent",
                fields=(
                    DerivedField.parse("StateValue",
                                       "StateValue=StateValue+ValueChange",
                                       semantics=Semantics.STATE, init=0),
                    DerivedField.parse("ObservationTime",
                                       "ObservationTime=EventTime",
                                       semantics=Semantics.STATE, init=0),
                ),
            ),
        ))
        builder.add_gateway(GatewayDecl(
            name="gw-dash", host="center-ecu", das_a="comfort", das_b="dashboard",
            link_a=LinkSpec(
                das="comfort",
                ports=(PortSpec(
                    message_type=signals.sliding_roof_type(), direction=Direction.INPUT,
                    semantics=Semantics.EVENT, control=ControlParadigm.EVENT_TRIGGERED,
                    et=ETTiming(min_interarrival=cfg.roof_tmin,
                                max_interarrival=cfg.roof_tmax),
                    queue_depth=16,
                ),),
                automata=(_roof_reception_monitor(cfg.roof_tmin, cfg.roof_tmax),),
                transfer=transfer,
            ),
            link_b=LinkSpec(das="dashboard", ports=(PortSpec(
                message_type=signals.roof_state_type(), direction=Direction.OUTPUT,
                semantics=Semantics.STATE, control=ControlParadigm.TIME_TRIGGERED,
                tt=TTTiming(period=20 * MS), temporal_accuracy=cfg.d_acc_roof,
            ),)),
            rules=[("msgSlidingRoof", "msgRoofState", "a_to_b", None)],
            restart_delay=50 * MS,
        ))

    system = builder.build()
    system.start()

    gps = system.job("gps")
    gps.vn = system.vn("navigation")
    roof = system.job("roof")
    roof.vn = system.vn("comfort")
    presafe = system.job("presafe")
    presafe.vn = system.vn("presafe")

    return CarSystem(
        system=system,
        config=cfg,
        vehicle=vehicle,
        wheel_sensor=system.job("wheel-sensor"),
        dynamics_sensor=system.job("dyn-sensor"),
        gps=gps,
        navigator=system.job("navigator"),
        presafe=presafe,
        roof=roof,
        display=system.job("display"),
        belt=system.job("belt-actuator"),
    )
