"""Fault models from the paper's fault hypothesis (Sec. II-D).

Hardware FCR = a whole component; failure mode *arbitrary*; permanent
failures at ~100 FIT, transients orders of magnitude more frequent.
Software FCR = a job; failure mode = violation of the port
specification in the time domain (wrong send instant) or the value
domain (content off-spec).

Each :class:`FaultModel` subclass knows how to *activate* against a
target in a running system and (for transients) how to *deactivate*.
The :class:`~repro.faults.injector.FaultInjector` schedules activations
either deterministically (scenario campaigns for E8) or stochastically
from FIT-style rates.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import FaultInjectionError
from ..sim import Simulator, TraceCategory

if TYPE_CHECKING:  # pragma: no cover
    from ..core_network import CommunicationController, FrameChunk
    from ..platform import Component, Job

__all__ = [
    "FaultModel",
    "ComponentCrash",
    "ComponentTransient",
    "BabblingIdiot",
    "OmissionFault",
    "SendDelayFault",
    "ValueCorruption",
    "JobTimingFailure",
    "JobValueFailure",
    "JobCrash",
]


@dataclass
class FaultModel:
    """Base class: a named fault with activate/deactivate semantics."""

    name: str = "fault"
    activated_at: int | None = field(default=None, init=False)
    deactivated_at: int | None = field(default=None, init=False)

    def activate(self, sim: Simulator) -> None:
        self.activated_at = sim.now
        sim.metrics.inc("fault.injections")
        sim.trace.record(sim.now, TraceCategory.FAULT_INJECT, self.name,
                         kind=type(self).__name__)
        self._apply(sim)

    def deactivate(self, sim: Simulator) -> None:
        self.deactivated_at = sim.now
        sim.metrics.inc("fault.clears")
        sim.trace.record(sim.now, TraceCategory.FAULT_CLEAR, self.name,
                         kind=type(self).__name__)
        self._revert(sim)

    def _apply(self, sim: Simulator) -> None:
        raise NotImplementedError

    def _revert(self, sim: Simulator) -> None:
        """Transient recovery; permanent faults ignore deactivation."""


# ----------------------------------------------------------------------
# hardware FCR faults (component level)
# ----------------------------------------------------------------------
@dataclass
class ComponentCrash(FaultModel):
    """Permanent fail-silence of a whole component (~100 FIT class)."""

    component: "Component | None" = None

    def _apply(self, sim: Simulator) -> None:
        if self.component is None:
            raise FaultInjectionError("ComponentCrash needs a component")
        self.component.crash()


@dataclass
class ComponentTransient(FaultModel):
    """Transient outage: crash now, restart on deactivate."""

    component: "Component | None" = None

    def _apply(self, sim: Simulator) -> None:
        if self.component is None:
            raise FaultInjectionError("ComponentTransient needs a component")
        self.component.crash()

    def _revert(self, sim: Simulator) -> None:
        assert self.component is not None
        self.component.restart()


@dataclass
class BabblingIdiot(FaultModel):
    """Arbitrary-failure mode: transmit constantly, schedule be damned.

    The canonical worst case for a shared bus — what the central
    guardian (C3) exists to contain.  ``burst_period`` is the interval
    between forced transmissions while active.
    """

    controller: "CommunicationController | None" = None
    burst_period: int = 50_000
    chunk_factory: "Callable[[], tuple[FrameChunk, ...]] | None" = None
    _cancel: Callable[[], None] | None = field(default=None, init=False)
    transmissions_attempted: int = field(default=0, init=False)

    def _apply(self, sim: Simulator) -> None:
        if self.controller is None:
            raise FaultInjectionError("BabblingIdiot needs a controller")
        if self.burst_period <= 0:
            raise FaultInjectionError("burst_period must be positive")

        def babble() -> None:
            chunks = self.chunk_factory() if self.chunk_factory else ()
            self.controller.force_transmit(chunks)
            self.transmissions_attempted += 1

        self._cancel = sim.every(self.burst_period, babble,
                                 start=sim.now, label=f"{self.name}.babble")

    def _revert(self, sim: Simulator) -> None:
        if self._cancel is not None:
            self._cancel()
            self._cancel = None


@dataclass
class OmissionFault(FaultModel):
    """Drop the next ``cycles`` whole TDMA cycles of a component."""

    controller: "CommunicationController | None" = None
    cycles: int = 1

    def _apply(self, sim: Simulator) -> None:
        if self.controller is None:
            raise FaultInjectionError("OmissionFault needs a controller")
        self.controller.omit_cycles += self.cycles


@dataclass
class SendDelayFault(FaultModel):
    """Shift a component's send instants (physical timing failure)."""

    controller: "CommunicationController | None" = None
    offset: int = 0

    def _apply(self, sim: Simulator) -> None:
        if self.controller is None:
            raise FaultInjectionError("SendDelayFault needs a controller")
        self.controller.send_offset += self.offset

    def _revert(self, sim: Simulator) -> None:
        assert self.controller is not None
        self.controller.send_offset -= self.offset


@dataclass
class ValueCorruption(FaultModel):
    """SEU-style value failures: flip outgoing chunk payload bits with
    probability ``probability`` per chunk."""

    controller: "CommunicationController | None" = None
    probability: float = 1.0
    rng_stream: str = "value-corruption"
    corrupted: int = field(default=0, init=False)

    def _apply(self, sim: Simulator) -> None:
        if self.controller is None:
            raise FaultInjectionError("ValueCorruption needs a controller")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultInjectionError("probability must be in [0, 1]")
        rng = sim.streams.get(self.rng_stream)

        def corrupt(chunk: "FrameChunk") -> "FrameChunk":
            if rng.random() < self.probability:
                self.corrupted += 1
                return chunk.corrupted_copy()
            return chunk

        self.controller.chunk_corruptor = corrupt

    def _revert(self, sim: Simulator) -> None:
        assert self.controller is not None
        self.controller.chunk_corruptor = None


# ----------------------------------------------------------------------
# software FCR faults (job level)
# ----------------------------------------------------------------------
@dataclass
class JobCrash(FaultModel):
    """A job halts (software FCR fail-silence)."""

    job: "Job | None" = None

    def _apply(self, sim: Simulator) -> None:
        if self.job is None:
            raise FaultInjectionError("JobCrash needs a job")
        self.job.halt()

    def _revert(self, sim: Simulator) -> None:
        assert self.job is not None
        self.job.resume()


@dataclass
class JobTimingFailure(FaultModel):
    """Port-spec violation in the time domain: the job's send instant is
    wrong.  Implemented by rescaling a sender attribute named ``period``
    (the idiom used by the workload jobs in :mod:`repro.apps`)."""

    job: "Job | None" = None
    speedup: float = 10.0
    _original: int | None = field(default=None, init=False)

    def _apply(self, sim: Simulator) -> None:
        if self.job is None:
            raise FaultInjectionError("JobTimingFailure needs a job")
        period = getattr(self.job, "period", None)
        if not isinstance(period, int):
            raise FaultInjectionError(
                f"job {self.job.name!r} has no integer 'period' attribute to distort"
            )
        if self.speedup <= 0:
            raise FaultInjectionError("speedup must be positive")
        self._original = period
        self.job.period = max(1, int(period / self.speedup))  # type: ignore[attr-defined]

    def _revert(self, sim: Simulator) -> None:
        if self.job is not None and self._original is not None:
            self.job.period = self._original  # type: ignore[attr-defined]


@dataclass
class JobValueFailure(FaultModel):
    """Port-spec violation in the value domain: message content off-spec.

    Installs a ``value_distortion`` callable the workload jobs apply to
    each produced field dict before sending."""

    job: "Job | None" = None
    distortion: Callable[[dict], dict] | None = None

    def _apply(self, sim: Simulator) -> None:
        if self.job is None:
            raise FaultInjectionError("JobValueFailure needs a job")
        distortion = self.distortion or (lambda fields: {k: -(2**14) for k in fields})
        self.job.value_distortion = distortion  # type: ignore[attr-defined]

    def _revert(self, sim: Simulator) -> None:
        if self.job is not None:
            self.job.value_distortion = None  # type: ignore[attr-defined]
