"""Fault injection (substrate S10) per the paper's fault hypothesis.

Hardware-FCR faults (component crash/transient, babbling idiot,
omission, send delay, value corruption) and software-FCR faults (job
crash, timing violation, value violation), scheduled deterministically
or from FIT-style stochastic rates.
"""

from .injector import FaultInjector, ScheduledFault, fit_to_mean_interarrival_ns
from .models import (
    BabblingIdiot,
    ComponentCrash,
    ComponentTransient,
    FaultModel,
    JobCrash,
    JobTimingFailure,
    JobValueFailure,
    OmissionFault,
    SendDelayFault,
    ValueCorruption,
)

__all__ = [
    "FaultModel",
    "ComponentCrash",
    "ComponentTransient",
    "BabblingIdiot",
    "OmissionFault",
    "SendDelayFault",
    "ValueCorruption",
    "JobCrash",
    "JobTimingFailure",
    "JobValueFailure",
    "FaultInjector",
    "ScheduledFault",
    "fit_to_mean_interarrival_ns",
]
