"""Fault-injection campaigns.

Two modes:

* **Scenario** — deterministic activations at fixed instants (optionally
  with a deactivation for transients).  Used by the error-containment
  experiment E8, where the question is "does the fault propagate", not
  "how often does it occur".
* **Stochastic** — activations drawn from exponential interarrival
  times parameterized in FIT (failures per 10^9 device-hours), matching
  Sec. II-D's "failure frequency ... in the order of 100 FIT" for
  permanent and "orders of hours" for transient hardware faults.  Note
  that at 100 FIT a single component fails about once per 1141 years;
  stochastic campaigns therefore run at accelerated rates and report
  the acceleration factor.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultInjectionError
from ..sim import SEC, Simulator
from .models import FaultModel

__all__ = ["fit_to_mean_interarrival_ns", "ScheduledFault", "FaultInjector"]

#: Hours per FIT reference interval (10^9 device-hours).
_FIT_HOURS = 1e9
_NS_PER_HOUR = 3_600 * SEC


def fit_to_mean_interarrival_ns(fit: float, acceleration: float = 1.0) -> float:
    """Mean time between failures in ns for a given FIT rate.

    ``acceleration`` scales the rate up for simulation feasibility
    (e.g. 1e9 makes a 100-FIT component fail about every 36 s of
    simulated time).
    """
    if fit <= 0:
        raise FaultInjectionError("FIT rate must be positive")
    if acceleration <= 0:
        raise FaultInjectionError("acceleration must be positive")
    hours_between = _FIT_HOURS / (fit * acceleration)
    return hours_between * _NS_PER_HOUR


@dataclass
class ScheduledFault:
    """One campaign entry."""

    fault: FaultModel
    at: int
    until: int | None = None  # deactivation instant for transients


class FaultInjector:
    """Schedules fault activations against a running simulation."""

    def __init__(self, sim: Simulator, name: str = "injector") -> None:
        self.sim = sim
        self.name = name
        self.scheduled: list[ScheduledFault] = []
        self.activations = 0
        self.deactivations = 0

    # ------------------------------------------------------------------
    # deterministic scenarios
    # ------------------------------------------------------------------
    def inject_at(self, fault: FaultModel, at: int, until: int | None = None) -> ScheduledFault:
        """Activate ``fault`` at ``at``; deactivate at ``until`` if given."""
        if until is not None and until <= at:
            raise FaultInjectionError(f"until ({until}) must be after at ({at})")
        entry = ScheduledFault(fault=fault, at=at, until=until)
        self.scheduled.append(entry)
        self.sim.at(at, lambda: self._activate(fault), label=f"{self.name}.inject")
        if until is not None:
            self.sim.at(until, lambda: self._deactivate(fault), label=f"{self.name}.clear")
        return entry

    # ------------------------------------------------------------------
    # stochastic campaigns
    # ------------------------------------------------------------------
    def inject_poisson(
        self,
        fault_factory,
        fit: float,
        horizon: int,
        acceleration: float = 1.0,
        duration: int | None = None,
        rng_stream: str = "fault-arrivals",
    ) -> int:
        """Draw fault arrivals over ``[now, now+horizon)`` at the given
        (accelerated) FIT rate; returns the number injected.

        ``fault_factory(k)`` builds the k-th fault instance; transient
        faults get ``duration`` ns before deactivation.
        """
        mean = fit_to_mean_interarrival_ns(fit, acceleration)
        rng = self.sim.streams.get(rng_stream)
        t = self.sim.now
        count = 0
        while True:
            t += max(1, int(rng.exponential(mean)))
            if t >= self.sim.now + horizon:
                break
            fault = fault_factory(count)
            until = t + duration if duration is not None else None
            self.inject_at(fault, t, until)
            count += 1
        return count

    # ------------------------------------------------------------------
    def _activate(self, fault: FaultModel) -> None:
        fault.activate(self.sim)
        self.activations += 1
        self.sim.metrics.inc("injector.activations")
        # The model's dynamics just changed discontinuously: any compiled
        # round template is stale, so puncture the fast path.
        self.sim.round_template.puncture()
        # Black-box semantics: a fault activation is exactly the moment
        # the window of records leading up to it becomes interesting.
        recorder = self.sim.trace.flight_recorder
        if recorder is not None and recorder.dump_path is not None and len(recorder):
            recorder.dump_to()

    def _deactivate(self, fault: FaultModel) -> None:
        fault.deactivate(self.sim)
        self.deactivations += 1
        self.sim.metrics.inc("injector.deactivations")
        self.sim.round_template.puncture()
