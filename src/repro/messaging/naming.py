"""Per-DAS namespaces and naming resolution.

Sec. II-E: "each DAS's virtual network possesses such a namespace"; the
namespace discriminates *messages*, not message instances.  Sec. III-A.1
defines **incoherent naming**: the same name bound to different entities
in different DASs, or the same entity bound to different names.  The
gateway resolves both via a :class:`NameMapping` between the two
namespaces.

A message name can be *explicit* (static key fields in the content) or
*implicit* (defined by the send instant, i.e. by the TT schedule slot).
:class:`Namespace` registers :class:`~repro.messaging.message.MessageType`
objects and enforces name uniqueness within one virtual network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import NamingError
from .message import MessageType

__all__ = ["Namespace", "NameMapping"]


@dataclass
class Namespace:
    """The message namespace of one virtual network / DAS."""

    das: str
    _types: dict[str, MessageType] = field(default_factory=dict)
    _explicit_index: dict[tuple, str] = field(default_factory=dict)

    def register(self, mtype: MessageType,
                 allow_shared_explicit: bool = False) -> MessageType:
        """Register a message type; names must be unique per namespace.

        ``allow_shared_explicit`` permits several registered types to
        carry the same wire-level explicit name — used by transparent
        replication, where replicas intentionally share the original
        message's identity (the first registrant keeps the index entry).
        """
        if mtype.name in self._types:
            raise NamingError(f"message name {mtype.name!r} already bound in DAS {self.das!r}")
        key = mtype.explicit_name_values()
        if key:
            if key in self._explicit_index:
                if not allow_shared_explicit:
                    raise NamingError(
                        f"explicit name {key!r} already bound to "
                        f"{self._explicit_index[key]!r} in DAS {self.das!r}"
                    )
            else:
                self._explicit_index[key] = mtype.name
        self._types[mtype.name] = mtype
        return mtype

    def lookup(self, name: str) -> MessageType:
        try:
            return self._types[name]
        except KeyError:
            raise NamingError(f"no message {name!r} in DAS {self.das!r}") from None

    def lookup_explicit(self, key: tuple) -> MessageType:
        """Resolve a wire-level explicit name (static key values)."""
        try:
            return self._types[self._explicit_index[key]]
        except KeyError:
            raise NamingError(f"no message with explicit name {key!r} in DAS {self.das!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def names(self) -> list[str]:
        return sorted(self._types)

    def types(self) -> list[MessageType]:
        return [self._types[n] for n in self.names()]

    def __len__(self) -> int:
        return len(self._types)


@dataclass
class NameMapping:
    """Bidirectional message-name mapping between two namespaces.

    Encodes the gateway's naming-resolution table: for each redirected
    message, which name the producing DAS uses and which name the
    consuming DAS expects.  Identity entries are allowed (coherent
    naming); missing entries mean "not redirected".
    """

    ns_a: Namespace
    ns_b: Namespace
    _a_to_b: dict[str, str] = field(default_factory=dict)
    _b_to_a: dict[str, str] = field(default_factory=dict)

    def bind(self, name_a: str, name_b: str) -> None:
        """Declare that ``name_a`` in A denotes the same entity as ``name_b`` in B."""
        # Both sides must exist: the mapping is between *registered* messages.
        self.ns_a.lookup(name_a)
        self.ns_b.lookup(name_b)
        if name_a in self._a_to_b and self._a_to_b[name_a] != name_b:
            raise NamingError(f"{name_a!r} already mapped to {self._a_to_b[name_a]!r}")
        if name_b in self._b_to_a and self._b_to_a[name_b] != name_a:
            raise NamingError(f"{name_b!r} already mapped to {self._b_to_a[name_b]!r}")
        self._a_to_b[name_a] = name_b
        self._b_to_a[name_b] = name_a

    def to_b(self, name_a: str) -> str | None:
        """Consuming-side name for a producer name in A (None = not exported)."""
        return self._a_to_b.get(name_a)

    def to_a(self, name_b: str) -> str | None:
        return self._b_to_a.get(name_b)

    def mapped_pairs(self) -> list[tuple[str, str]]:
        return sorted(self._a_to_b.items())

    def is_incoherent(self) -> bool:
        """True if any mapped pair uses different names for one entity,
        or one name denotes different entities on the two sides."""
        for a, b in self._a_to_b.items():
            if a != b:
                return True
            # same name both sides: check it denotes the same structure
        for a, b in self._a_to_b.items():
            if a == b:
                ta, tb = self.ns_a.lookup(a), self.ns_b.lookup(b)
                if {e.name for e in ta.elements} != {e.name for e in tb.elements}:
                    return True
        return False
