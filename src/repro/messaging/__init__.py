"""Message model and codec (substrate S5).

Typed fields assembled into elements (with the paper's *convertible
element* and *key* flags), messages as categories of frames, bit-level
encode/decode, and per-DAS namespaces with gateway name mappings.
"""

from .datatypes import (
    TYPE_NAMES,
    BitReader,
    BitWriter,
    BoolType,
    EnumType,
    FieldType,
    FloatType,
    IntType,
    StringType,
    TimestampType,
    UIntType,
    resolve_type,
)
from .message import ElementDef, FieldDef, MessageInstance, MessageType, Semantics
from .naming import NameMapping, Namespace

__all__ = [
    "BitReader",
    "BitWriter",
    "FieldType",
    "IntType",
    "UIntType",
    "FloatType",
    "BoolType",
    "TimestampType",
    "StringType",
    "EnumType",
    "resolve_type",
    "TYPE_NAMES",
    "Semantics",
    "FieldDef",
    "ElementDef",
    "MessageType",
    "MessageInstance",
    "Namespace",
    "NameMapping",
]
