"""Message structure: fields, elements, message types, message instances.

Terminology follows Sec. II-E and IV-B.1 of the paper exactly:

* A **field** is an atomic typed variable (``static`` fields are
  time-invariant; the message *name* is built from static key fields).
* An **element** groups fields; an element flagged ``convertible`` is a
  *convertible element* — the atomic unit the gateway dissects, stores
  in its repository, and recombines.  An element flagged ``key``
  contributes to the explicit message name.
* A **message** (here: :class:`MessageType`) is a category of frames
  with common syntactic/temporal/semantic properties; a **message
  instance** (:class:`MessageInstance`) is one member sent at a
  particular time.

Information semantics (state vs event, Sec. II-A) is carried per
element via :class:`Semantics`, because conversion rules operate on
convertible elements, not whole messages.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from ..errors import CodecError, SpecificationError
from .datatypes import BitReader, BitWriter, FieldType

__all__ = [
    "Semantics",
    "FieldDef",
    "ElementDef",
    "MessageType",
    "MessageInstance",
]


class Semantics(str, Enum):
    """Information semantics of an element (Sec. II-A)."""

    STATE = "state"
    EVENT = "event"


@dataclass(frozen=True)
class FieldDef:
    """A named atomic field within an element."""

    name: str
    ftype: FieldType
    static: bool = False
    static_value: Any = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("field name must be non-empty")
        if self.static and self.static_value is None:
            raise SpecificationError(f"static field {self.name!r} needs a value")
        if self.static:
            self.ftype.validate(self.static_value)


@dataclass(frozen=True)
class ElementDef:
    """A named group of fields; possibly a convertible element.

    ``key`` marks elements whose static fields form the message name
    (Fig. 6: ``<element name="Name" key="yes" ...>``); ``convertible``
    marks elements subject to redirection through a gateway
    (``conv="yes"``).  ``semantics`` applies to convertible elements.
    """

    name: str
    fields: tuple[FieldDef, ...]
    key: bool = False
    convertible: bool = False
    semantics: Semantics = Semantics.STATE

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("element name must be non-empty")
        if not self.fields:
            raise SpecificationError(f"element {self.name!r} needs at least one field")
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate field names in element {self.name!r}: {names}")
        if self.key and not all(f.static for f in self.fields):
            raise SpecificationError(
                f"key element {self.name!r} must contain only static fields "
                "(the message name is time-invariant)"
            )

    def field_def(self, name: str) -> FieldDef:
        for f in self.fields:
            if f.name == name:
                return f
        raise SpecificationError(f"element {self.name!r} has no field {name!r}")

    def bit_width(self) -> int:
        return sum(f.ftype.bit_width() for f in self.fields)

    def default_values(self) -> dict[str, Any]:
        return {
            f.name: (f.static_value if f.static else f.ftype.default()) for f in self.fields
        }


@dataclass(frozen=True)
class MessageType:
    """Syntactic specification of one message on a virtual network."""

    name: str
    elements: tuple[ElementDef, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("message name must be non-empty")
        if not self.elements:
            raise SpecificationError(f"message {self.name!r} needs at least one element")
        names = [e.name for e in self.elements]
        if len(set(names)) != len(names):
            raise SpecificationError(f"duplicate element names in {self.name!r}: {names}")

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def element(self, name: str) -> ElementDef:
        for e in self.elements:
            if e.name == name:
                return e
        raise SpecificationError(f"message {self.name!r} has no element {name!r}")

    def has_element(self, name: str) -> bool:
        return any(e.name == name for e in self.elements)

    def convertible_elements(self) -> tuple[ElementDef, ...]:
        """Elements subject to redirection through a gateway."""
        return tuple(e for e in self.elements if e.convertible)

    def key_elements(self) -> tuple[ElementDef, ...]:
        return tuple(e for e in self.elements if e.key)

    def explicit_name_values(self) -> tuple[Any, ...]:
        """The wire-level explicit message name: static key field values."""
        vals: list[Any] = []
        for e in self.key_elements():
            for f in e.fields:
                vals.append(f.static_value)
        return tuple(vals)

    def bit_width(self) -> int:
        return sum(e.bit_width() for e in self.elements)

    def byte_width(self) -> int:
        return (self.bit_width() + 7) // 8

    # ------------------------------------------------------------------
    # instances & codec
    # ------------------------------------------------------------------
    def instance(
        self, values: Mapping[str, Mapping[str, Any]] | None = None, **element_values: Mapping[str, Any]
    ) -> MessageInstance:
        """Build an instance; unspecified fields take defaults/static values.

        ``values`` maps element name -> {field name -> value}.  Keyword
        arguments are merged on top for call-site convenience.
        """
        merged: dict[str, dict[str, Any]] = {}
        for e in self.elements:
            merged[e.name] = e.default_values()
        for src in (values or {}), element_values:
            for ename, fvals in src.items():
                edef = self.element(ename)
                for fname, v in fvals.items():
                    fdef = edef.field_def(fname)
                    if fdef.static and v != fdef.static_value:
                        raise SpecificationError(
                            f"cannot override static field {ename}.{fname} "
                            f"({fdef.static_value!r}) with {v!r}"
                        )
                    merged[ename][fname] = fdef.ftype.validate(v)
        return MessageInstance(mtype=self, values=merged)

    def encode(self, instance: "MessageInstance") -> bytes:
        """Serialize an instance to its wire representation."""
        if instance.mtype is not self and instance.mtype.name != self.name:
            raise CodecError(
                f"instance of {instance.mtype.name!r} encoded with type {self.name!r}"
            )
        writer = BitWriter()
        for e in self.elements:
            evals = instance.values[e.name]
            for f in e.fields:
                f.ftype.encode(evals[f.name], writer)
        return writer.getvalue()

    def decode(self, data: bytes) -> "MessageInstance":
        """Parse wire bytes back into an instance (strict static checks)."""
        reader = BitReader(data)
        values: dict[str, dict[str, Any]] = {}
        for e in self.elements:
            evals: dict[str, Any] = {}
            for f in e.fields:
                v = f.ftype.decode(reader)
                if f.static and v != f.static_value:
                    raise CodecError(
                        f"static field {e.name}.{f.name} decoded {v!r}, "
                        f"expected {f.static_value!r} — wrong message type?"
                    )
                evals[f.name] = v
            values[e.name] = evals
        return MessageInstance(mtype=self, values=values)

    def renamed(self, new_name: str) -> "MessageType":
        """A structurally identical type under a different name.

        Used by the gateway's naming resolution (Sec. III-A.1): "the
        gateway has to change the message name assigned by the producing
        DAS to the message name of the consuming DAS".
        """
        return replace(self, name=new_name)


@dataclass(slots=True)
class MessageInstance:
    """One concrete message: values for every field of every element."""

    mtype: MessageType
    values: dict[str, dict[str, Any]]
    send_time: int | None = None
    meta: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, element: str) -> dict[str, Any]:
        return self.values[element]

    def get(self, element: str, fieldname: str) -> Any:
        return self.values[element][fieldname]

    def set(self, element: str, fieldname: str, value: Any) -> None:
        fdef = self.mtype.element(element).field_def(fieldname)
        self.values[element][fieldname] = fdef.ftype.validate(value)

    def iter_fields(self) -> Iterator[tuple[str, str, Any]]:
        for ename, fvals in self.values.items():
            for fname, v in fvals.items():
                yield ename, fname, v

    def copy(self) -> "MessageInstance":
        return MessageInstance(
            mtype=self.mtype,
            values={e: dict(fv) for e, fv in self.values.items()},
            send_time=self.send_time,
            meta=dict(self.meta),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MessageInstance {self.mtype.name} t={self.send_time}>"
