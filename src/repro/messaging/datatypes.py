"""Field data types for message syntactic specifications.

The paper's syntactic specification "forms larger information units
(e.g., string, floating point number) out of bits" and builds messages
as hierarchical compounds of elementary types (Sec. II-E, IV-B.1).  This
module is the elementary-type layer: every type knows its bit width and
how to encode/decode itself through a :class:`BitWriter`/:class:`BitReader`.

Types are value objects (frozen dataclasses) registered under the names
the paper's XML uses (``integer``, ``timestamp``, ``boolean``, ...), so
:mod:`repro.spec.xml_io` can resolve ``<type length=16>integer</type>``
directly to ``IntType(16)``.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Any

from ..errors import CodecError

__all__ = [
    "BitWriter",
    "BitReader",
    "FieldType",
    "IntType",
    "UIntType",
    "FloatType",
    "BoolType",
    "TimestampType",
    "StringType",
    "EnumType",
    "resolve_type",
    "TYPE_NAMES",
]


class BitWriter:
    """Accumulates values most-significant-bit first into a byte string."""

    def __init__(self) -> None:
        self._acc = 0
        self._nbits = 0

    def write(self, value: int, nbits: int) -> None:
        """Append the ``nbits`` low bits of non-negative ``value``."""
        if nbits < 0:
            raise CodecError(f"negative bit width {nbits}")
        if value < 0 or value >= (1 << nbits):
            raise CodecError(f"value {value} does not fit in {nbits} bits")
        self._acc = (self._acc << nbits) | value
        self._nbits += nbits

    @property
    def bit_length(self) -> int:
        return self._nbits

    def getvalue(self) -> bytes:
        """Final byte string, zero-padded in the last byte."""
        pad = (-self._nbits) % 8
        acc = self._acc << pad
        return acc.to_bytes((self._nbits + pad) // 8, "big")


class BitReader:
    """Reads values most-significant-bit first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0  # in bits

    def read(self, nbits: int) -> int:
        """Read ``nbits`` as an unsigned integer."""
        if self._pos + nbits > len(self._data) * 8:
            raise CodecError(
                f"bit underflow: want {nbits} bits at offset {self._pos}, "
                f"have {len(self._data) * 8}"
            )
        val = 0
        pos = self._pos
        for _ in range(nbits):
            byte = self._data[pos // 8]
            bit = (byte >> (7 - pos % 8)) & 1
            val = (val << 1) | bit
            pos += 1
        self._pos = pos
        return val

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos


@dataclass(frozen=True)
class FieldType:
    """Abstract elementary type; subclasses define width and codec."""

    def bit_width(self) -> int:
        raise NotImplementedError

    def encode(self, value: Any, writer: BitWriter) -> None:
        raise NotImplementedError

    def decode(self, reader: BitReader) -> Any:
        raise NotImplementedError

    def validate(self, value: Any) -> Any:
        """Check/normalize a value; raise :class:`CodecError` if invalid."""
        raise NotImplementedError

    def default(self) -> Any:
        """A neutral initial value of this type."""
        raise NotImplementedError


@dataclass(frozen=True)
class IntType(FieldType):
    """Signed two's-complement integer of ``length`` bits."""

    length: int = 32

    def __post_init__(self) -> None:
        if self.length < 1 or self.length > 64:
            raise CodecError(f"integer length {self.length} out of range 1..64")

    def bit_width(self) -> int:
        return self.length

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise CodecError(f"expected int, got {type(value).__name__}")
        lo, hi = -(1 << (self.length - 1)), (1 << (self.length - 1)) - 1
        if not lo <= value <= hi:
            raise CodecError(f"int {value} out of range [{lo}, {hi}] for {self.length} bits")
        return value

    def encode(self, value: Any, writer: BitWriter) -> None:
        v = self.validate(value)
        writer.write(v & ((1 << self.length) - 1), self.length)

    def decode(self, reader: BitReader) -> int:
        raw = reader.read(self.length)
        if raw >= 1 << (self.length - 1):
            raw -= 1 << self.length
        return raw

    def default(self) -> int:
        return 0


@dataclass(frozen=True)
class UIntType(FieldType):
    """Unsigned integer of ``length`` bits."""

    length: int = 32

    def __post_init__(self) -> None:
        if self.length < 1 or self.length > 64:
            raise CodecError(f"uint length {self.length} out of range 1..64")

    def bit_width(self) -> int:
        return self.length

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise CodecError(f"expected int, got {type(value).__name__}")
        if not 0 <= value < (1 << self.length):
            raise CodecError(f"uint {value} out of range for {self.length} bits")
        return value

    def encode(self, value: Any, writer: BitWriter) -> None:
        writer.write(self.validate(value), self.length)

    def decode(self, reader: BitReader) -> int:
        return reader.read(self.length)

    def default(self) -> int:
        return 0


@dataclass(frozen=True)
class FloatType(FieldType):
    """IEEE-754 float of 32 or 64 bits."""

    length: int = 64

    def __post_init__(self) -> None:
        if self.length not in (32, 64):
            raise CodecError(f"float length must be 32 or 64, got {self.length}")

    def bit_width(self) -> int:
        return self.length

    def validate(self, value: Any) -> float:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise CodecError(f"expected float, got {type(value).__name__}")
        v = float(value)
        if math.isnan(v):
            raise CodecError("NaN is not a transmittable field value")
        return v

    def encode(self, value: Any, writer: BitWriter) -> None:
        v = self.validate(value)
        fmt = ">f" if self.length == 32 else ">d"
        raw = int.from_bytes(struct.pack(fmt, v), "big")
        writer.write(raw, self.length)

    def decode(self, reader: BitReader) -> float:
        raw = reader.read(self.length)
        fmt = ">f" if self.length == 32 else ">d"
        return struct.unpack(fmt, raw.to_bytes(self.length // 8, "big"))[0]

    def default(self) -> float:
        return 0.0


@dataclass(frozen=True)
class BoolType(FieldType):
    """Single-bit boolean (the paper's ``<type>boolean</type>``)."""

    def bit_width(self) -> int:
        return 1

    def validate(self, value: Any) -> bool:
        if not isinstance(value, bool):
            raise CodecError(f"expected bool, got {type(value).__name__}")
        return value

    def encode(self, value: Any, writer: BitWriter) -> None:
        writer.write(1 if self.validate(value) else 0, 1)

    def decode(self, reader: BitReader) -> bool:
        return reader.read(1) == 1

    def default(self) -> bool:
        return False


@dataclass(frozen=True)
class TimestampType(FieldType):
    """A point in global time, integer nanoseconds, ``length`` bits unsigned.

    The paper's Fig. 6 uses ``<type length=16>timestamp</type>``: short
    timestamps wrap around; consumers interpret them relative to the
    current epoch.  We model the wrap explicitly via modulo encoding.
    """

    length: int = 64

    def __post_init__(self) -> None:
        if self.length < 1 or self.length > 64:
            raise CodecError(f"timestamp length {self.length} out of range 1..64")

    def bit_width(self) -> int:
        return self.length

    def validate(self, value: Any) -> int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise CodecError(f"expected int timestamp, got {type(value).__name__}")
        if value < 0:
            raise CodecError(f"timestamp {value} is negative")
        return value

    def encode(self, value: Any, writer: BitWriter) -> None:
        v = self.validate(value)
        writer.write(v % (1 << self.length), self.length)

    def decode(self, reader: BitReader) -> int:
        return reader.read(self.length)

    def default(self) -> int:
        return 0


@dataclass(frozen=True)
class StringType(FieldType):
    """Fixed-capacity UTF-8 string of ``length`` **bytes** on the wire."""

    length: int = 16

    def __post_init__(self) -> None:
        if self.length < 1:
            raise CodecError(f"string byte length must be positive, got {self.length}")

    def bit_width(self) -> int:
        return self.length * 8

    def validate(self, value: Any) -> str:
        if not isinstance(value, str):
            raise CodecError(f"expected str, got {type(value).__name__}")
        if len(value.encode()) > self.length:
            raise CodecError(f"string {value!r} exceeds {self.length} bytes")
        return value

    def encode(self, value: Any, writer: BitWriter) -> None:
        raw = self.validate(value).encode().ljust(self.length, b"\0")
        writer.write(int.from_bytes(raw, "big"), self.length * 8)

    def decode(self, reader: BitReader) -> str:
        raw = reader.read(self.length * 8).to_bytes(self.length, "big")
        return raw.rstrip(b"\0").decode()

    def default(self) -> str:
        return ""


@dataclass(frozen=True)
class EnumType(FieldType):
    """A closed set of symbolic values encoded as an index."""

    symbols: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.symbols:
            raise CodecError("enum needs at least one symbol")
        if len(set(self.symbols)) != len(self.symbols):
            raise CodecError("enum symbols must be unique")

    def bit_width(self) -> int:
        return max(1, (len(self.symbols) - 1).bit_length())

    def validate(self, value: Any) -> str:
        if value not in self.symbols:
            raise CodecError(f"{value!r} is not one of {self.symbols}")
        return value

    def encode(self, value: Any, writer: BitWriter) -> None:
        writer.write(self.symbols.index(self.validate(value)), self.bit_width())

    def decode(self, reader: BitReader) -> str:
        idx = reader.read(self.bit_width())
        if idx >= len(self.symbols):
            raise CodecError(f"enum index {idx} out of range")
        return self.symbols[idx]

    def default(self) -> str:
        return self.symbols[0]


#: Names accepted by :func:`resolve_type` (the XML vocabulary of Fig. 6).
TYPE_NAMES = ("integer", "uinteger", "float", "boolean", "timestamp", "string")


def resolve_type(name: str, length: int | None = None) -> FieldType:
    """Map an XML type name + optional length to a :class:`FieldType`."""
    key = name.strip().lower()
    if key == "integer":
        return IntType(length if length is not None else 32)
    if key in ("uinteger", "unsigned"):
        return UIntType(length if length is not None else 32)
    if key in ("float", "double"):
        return FloatType(length if length is not None else 64)
    if key in ("boolean", "bool"):
        return BoolType()
    if key == "timestamp":
        return TimestampType(length if length is not None else 64)
    if key == "string":
        return StringType(length if length is not None else 16)
    raise CodecError(f"unknown field type {name!r}")
