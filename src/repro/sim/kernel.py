"""The discrete-event simulation kernel.

:class:`Simulator` advances virtual time by popping the deterministic
:class:`~repro.sim.events.EventQueue`.  Everything in the DECOS model —
the TDMA bus, communication controllers, partition schedulers, gateways,
application jobs, fault injectors, and measurement probes — is driven by
callbacks scheduled here.

Design notes
------------
* **Callback style, not coroutines.**  Processes register callbacks (or
  use :class:`repro.sim.process.Process` for a thin stateful wrapper).
  Callbacks keep the ready-set ordering fully explicit via
  :class:`~repro.sim.events.EventPriority`, which matters for
  reproducibility claims; generator-based processes would hide ordering
  inside the scheduler.
* **No wall-clock anywhere.**  ``now`` is the only notion of time
  *inside the model*.  How virtual time relates to wall time is the
  business of the bound :class:`~repro.sim.runtime.Runtime` — the
  default :class:`~repro.sim.runtime.SimulatedRuntime` runs as fast as
  the host allows, while the paced and asyncio runtimes gate dispatch
  against an external clock without changing virtual-time behaviour.
* **Stop conditions.**  ``run_until(t)`` executes every event with
  ``time <= t`` and then sets ``now = t``; ``run()`` drains the queue or
  stops at an optional event budget (a runaway-loop backstop).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from time import perf_counter_ns  # det-ok: DET001 — profiler instrumentation only

from ..errors import ConfigurationError, SimulationError
from .events import EventPriority, EventQueue, ScheduledEvent
from .flow import FlowTracer
from .metrics import Histogram, Metrics
from .random import RandomStreams
from .round_template import RoundTemplateEngine
from .runtime import Runtime, SimulatedRuntime
from .time import Duration, Instant
from .trace import TraceLog

__all__ = ["PeriodicTask", "Simulator"]


class PeriodicTask:
    """A first-class periodic activity owned by the kernel.

    Replaces the closure-chain re-scheduling idiom: one object holds the
    period, the next nominal instant, and the live queue handle, and
    re-arms itself after each tick.  The next activation is computed
    from the *scheduled* instant, not from when the callback ran, so
    periodic activity never drifts.

    Instances are callable — calling one cancels it — so existing code
    that treats :meth:`Simulator.every`'s return value as a cancel
    function keeps working.
    """

    __slots__ = ("_sim", "period", "callback", "priority", "label",
                 "next_time", "fires", "_event", "_cancelled")

    def __init__(
        self,
        sim: "Simulator",
        period: Duration,
        callback: Callable[[], None],
        start: Instant,
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> None:
        self._sim = sim
        self.period = period
        self.callback = callback
        self.priority = priority
        self.label = label
        self.next_time = start
        self.fires = 0
        self._cancelled = False
        self._event: ScheduledEvent = sim._queue.push(
            start, self._fire, priority=priority, label=label)

    def _fire(self) -> None:
        if self._cancelled:
            return
        self.fires += 1
        self.callback()
        if self._cancelled:
            return
        self.next_time += self.period
        self._event = self._sim._queue.push(
            self.next_time, self._fire, priority=self.priority, label=self.label)

    def cancel(self) -> None:
        """Stop the task; safe to call mid-tick and idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._event.cancel()

    #: calling the task cancels it (back-compat with the old cancel-fn API)
    __call__ = cancel

    @property
    def active(self) -> bool:
        return not self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else f"next={self.next_time}"
        return f"<PeriodicTask {self.label!r} period={self.period} {state}>"


class Simulator:
    """Owns virtual time, the event queue, RNG streams, the trace log,
    and the metrics registry.

    Parameters
    ----------
    seed:
        Master seed for :class:`~repro.sim.random.RandomStreams`.  Two
        simulators built with the same seed and the same model produce
        identical traces.
    trace:
        Optional pre-built trace log; a fresh one is created by default.
    metrics:
        Optional pre-built metrics registry; a fresh one is created by
        default.  Metrics are always-on and O(1) per update, independent
        of the trace configuration.
    runtime:
        Optional :class:`~repro.sim.runtime.Runtime` owning the dispatch
        loop; the zero-cost :class:`~repro.sim.runtime.SimulatedRuntime`
        is bound by default.
    """

    def __init__(self, seed: int = 0, trace: TraceLog | None = None,
                 metrics: Metrics | None = None,
                 runtime: Runtime | None = None) -> None:
        self._now: Instant = 0
        self._queue = EventQueue()
        self._running = False
        self._stopped = False
        self.streams = RandomStreams(seed)
        self.trace = trace if trace is not None else TraceLog()
        self.metrics = metrics if metrics is not None else Metrics()
        self.flows = FlowTracer(self.trace)
        self.events_executed = 0
        self._profiling = False
        self._profile_cache: dict[str, Histogram] = {}
        #: Steady-state fast-forward engine (dormant until activated —
        #: see :mod:`repro.sim.round_template`).
        self.round_template = RoundTemplateEngine(self)
        #: Artifacts registered for static pre-flight verification
        #: (systems, clusters, VNs, link specs) — see :meth:`preflight`.
        self.checkables: list[object] = []
        self._runtime: Runtime = runtime if runtime is not None else SimulatedRuntime()
        self._runtime.bind(self)

    # ------------------------------------------------------------------
    # runtime
    # ------------------------------------------------------------------
    @property
    def runtime(self) -> Runtime:
        """The bound execution runtime (see :mod:`repro.sim.runtime`)."""
        return self._runtime

    def set_runtime(self, runtime: Runtime) -> None:
        """Swap the execution runtime (e.g. after building a system).

        Only the dispatch loop changes — virtual time, the event queue,
        and everything scheduled so far are untouched.  Not allowed
        while a ``run*`` call is in flight.
        """
        if self._running:
            raise ConfigurationError(
                "cannot swap the runtime while the simulator is running"
            )
        runtime.bind(self)
        self._runtime = runtime

    # ------------------------------------------------------------------
    # time & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self) -> Instant:
        """Current virtual time in integer nanoseconds."""
        return self._now

    def at(
        self,
        time: Instant,
        callback: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self._now} ({label!r})"
            )
        return self._queue.push(time, callback, priority=priority, label=label)

    def after(
        self,
        delay: Duration,
        callback: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` nanoseconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} ({label!r})")
        return self._queue.push(self._now + delay, callback, priority=priority, label=label)

    def every(
        self,
        period: Duration,
        callback: Callable[[], None],
        start: Instant | None = None,
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> PeriodicTask:
        """Schedule ``callback`` periodically; returns the (cancellable)
        :class:`PeriodicTask`.

        Like :meth:`at`, the first activation must not lie in the past.
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        first = self._now if start is None else start
        if first < self._now:
            raise SimulationError(
                f"cannot schedule into the past: start={first} < now={self._now} ({label!r})"
            )
        return PeriodicTask(self, period, callback, first,
                            priority=priority, label=label)

    # ------------------------------------------------------------------
    # static pre-flight verification
    # ------------------------------------------------------------------
    def register_checkable(self, obj: object) -> None:
        """Register a model artifact for :meth:`preflight` analysis.

        Builders call this as they assemble the model (SystemBuilder,
        ClusterBuilder, VN constructors), so a fully built simulator
        knows every statically-checkable artifact it hosts.
        """
        if all(existing is not obj for existing in self.checkables):
            self.checkables.append(obj)

    def preflight(self, strict: bool = True):
        """Run the static analyzers over every registered artifact.

        Returns the :class:`~repro.check.CheckReport`; with ``strict``
        (the default) a report containing error-severity diagnostics
        raises :class:`~repro.errors.PreflightError` instead of letting
        a broken configuration burn simulation time.
        """
        from ..check.analyzer import check_simulator

        report = check_simulator(self)
        if strict and not report.ok:
            from ..check.diagnostics import render_text
            from ..errors import PreflightError

            raise PreflightError(
                "pre-flight check failed:\n" + render_text(report)
            )
        return report

    # ------------------------------------------------------------------
    # profiling (off by default: wall-clock handler attribution)
    # ------------------------------------------------------------------
    @property
    def profiling(self) -> bool:
        return self._profiling

    def enable_profiling(self) -> None:
        """Attribute wall-clock handler time into ``Metrics`` histograms.

        Each executed event's callback duration (``perf_counter_ns``) is
        observed into ``profile.<group>``, where ``group`` is the first
        two dot-separated segments of the event label (``ctrl.n0.slot``
        → ``ctrl.n0``; unlabeled events land in ``profile.unlabeled``).
        Off by default because wall-clock durations are inherently
        non-deterministic — enabling it never changes virtual-time
        behaviour, only adds histograms to the snapshot.
        """
        self._profiling = True

    def disable_profiling(self) -> None:
        self._profiling = False

    def _profile_histogram(self, label: str) -> Histogram:
        h = self._profile_cache.get(label)
        if h is None:
            group = ".".join(label.split(".", 2)[:2]) if label else "unlabeled"
            h = self.metrics.histogram(f"profile.{group}")
            self._profile_cache[label] = h
        return h

    def _profiled_call(self, ev: ScheduledEvent) -> None:
        t0 = perf_counter_ns()  # det-ok: DET001 — profiler instrumentation only
        try:
            ev.callback()
        finally:
            self._profile_histogram(ev.label).observe(
                perf_counter_ns() - t0  # det-ok: DET001 — profiler only
            )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the single next event; returns False if queue is empty."""
        nxt = self._queue.peek_time()
        if nxt is None:
            return False
        ev = self._queue.pop()
        self._now = ev.time
        self.events_executed += 1
        if self._profiling:
            self._profiled_call(ev)
        else:
            ev.callback()
        return True

    def run(self, max_events: int | None = None) -> None:
        """Run until the event queue drains (or ``max_events`` executed).

        Delegates the dispatch loop to the bound runtime (the default
        :class:`~repro.sim.runtime.SimulatedRuntime` runs at maximum
        speed; see :mod:`repro.sim.runtime` for the paced and asyncio
        variants).
        """
        self._runtime.run(max_events)

    def run_until(self, t: Instant) -> None:
        """Run every event with ``time <= t`` and advance ``now`` to ``t``.

        The dispatch loop itself lives in the bound runtime — event
        *order* is identical across runtimes; only wall-clock pacing
        differs.  Target validation is uniform here: a target before
        ``now`` is a configuration error under every runtime.
        """
        if t < self._now:
            raise ConfigurationError(
                f"run_until({t}) is in the past (now={self._now})"
            )
        self._runtime.run_until(t)

    def run_for(self, d: Duration) -> None:
        """Run for ``d`` nanoseconds of virtual time from ``now``."""
        if d < 0:
            raise ConfigurationError(f"run_for({d}): duration must be >= 0")
        self.run_until(self._now + d)

    def stop(self) -> None:
        """Request that the current ``run*`` call return after this event."""
        self._stopped = True

    def pending(self) -> int:
        """Number of live events in the queue."""
        return len(self._queue)

    def _guard_reentry(self) -> None:
        if self._running:
            raise SimulationError("simulator run methods are not reentrant")
        self._running = True

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def iterate(self, max_events: int | None = None) -> Iterator[Instant]:
        """Yield ``now`` after each executed event (debugging/inspection)."""
        count = 0
        while max_events is None or count < max_events:
            if not self.step():
                return
            count += 1
            yield self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now} pending={self.pending()}>"
