"""Causal flow correlation: one cheap id per message, hop records per stage.

The trace log records *occurrences* — a frame on the bus, an instance at
a port, a gateway decision — but nothing ties the occurrences of one
message together.  The paper's claims (selective redirection, error
containment, temporal-accuracy blocking) are claims about what happens
to an *individual message on its path* from a sender port across the TT
backbone, through a gateway decision, to a receiver in another virtual
network.  :class:`FlowTracer` makes that path reconstructable:

* every message instance gets a monotonically increasing ``flow_id`` at
  origination (ET send, TT dispatch, or gateway construction), carried
  in ``instance.meta["flow"]`` — the existing meta propagation through
  :class:`~repro.core_network.frame.FrameChunk` encode/decode moves it
  across the wire for free,
* every interesting stage emits a **hop record** through the normal
  :class:`~repro.sim.trace.TraceLog` under two categories
  (``flow.origin`` and ``flow.hop``), guarded by the standard
  ``wants()/tick()`` idiom so counters-mode overhead stays O(1),
* a gateway-constructed message is a *child* flow: its origin record
  carries ``parent`` — the flow that last updated the repository
  elements it was recombined from — so cross-VN journeys stitch
  together across the gateway's store/construct boundary.

Flow tracing is **off by default** (``sim.flows.enabled`` is False):
with it off, the only cost at every call site is one attribute check,
no record or tick is ever emitted, and the trace byte stream is
identical to a build without this module — the golden-digest anchor
stays valid.  :mod:`repro.analysis.flows` rebuilds journeys and
attributes per-hop latency from the emitted records.
"""

from __future__ import annotations

from typing import Any

from .time import Instant
from .trace import TraceLog

__all__ = ["FlowStage", "FlowTracer"]


class FlowStage:
    """Well-known hop stages (plain strings, open set like categories)."""

    BUS_TX = "bus.tx"
    BUS_RX = "bus.rx"
    VN_SEND = "vn.send"
    VN_DISPATCH = "vn.dispatch"
    PORT_RECV = "port.recv"
    GATEWAY_RX = "gw.rx"
    GATEWAY_STORED = "gw.stored"
    GATEWAY_BLOCK = "gw.block"

    #: origin kinds (the ``kind`` detail of a ``flow.origin`` record)
    ORIGIN_ET_SEND = "et.send"
    ORIGIN_TT_DISPATCH = "tt.dispatch"
    ORIGIN_GW_CONSTRUCT = "gw.construct"


class FlowTracer:
    """Per-simulator flow-id allocator and hop-record emitter.

    Hot call sites guard on :attr:`enabled` first (one attribute read
    when tracing is off), then call :meth:`origin`/:meth:`hop`, which
    apply the ``wants()/tick()`` discipline internally — in counters
    mode a hop is a single O(1) tick, in full mode a normal record.
    """

    __slots__ = ("trace", "enabled", "_next_id", "originated")

    #: trace categories used by flow records
    CATEGORY_ORIGIN = "flow.origin"
    CATEGORY_HOP = "flow.hop"

    def __init__(self, trace: TraceLog) -> None:
        self.trace = trace
        self.enabled = False
        self._next_id = 1
        self.originated = 0

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def new_flow(self) -> int:
        """Allocate the next flow id (monotonic, deterministic)."""
        fid = self._next_id
        self._next_id += 1
        self.originated += 1
        return fid

    # ------------------------------------------------------------------
    def origin(self, time: Instant, source: str, flow: int, message: str,
               kind: str, parent: int | None = None, **detail: Any) -> None:
        """Emit the origination record of ``flow`` (birth of a message)."""
        tr = self.trace
        if tr.wants(self.CATEGORY_ORIGIN):
            if parent is not None:
                detail["parent"] = parent
            tr.record(time, self.CATEGORY_ORIGIN, source,
                      flow=flow, message=message, kind=kind, **detail)
        else:
            tr.tick(self.CATEGORY_ORIGIN)

    def hop(self, time: Instant, source: str, flow: int, stage: str,
            **detail: Any) -> None:
        """Emit one hop of ``flow`` at ``stage`` (wants/tick guarded)."""
        tr = self.trace
        if tr.wants(self.CATEGORY_HOP):
            tr.record(time, self.CATEGORY_HOP, source,
                      flow=flow, stage=stage, **detail)
        else:
            tr.tick(self.CATEGORY_HOP)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"<FlowTracer {state} originated={self.originated}>"
