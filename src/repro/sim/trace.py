"""Structured trace log.

Every architecturally interesting occurrence — frame on the bus, message
at a port, gateway decision, automaton transition, fault activation,
membership change — is appended to the :class:`TraceLog` as a
:class:`TraceRecord`.  Experiments and tests then *query* the trace
instead of instrumenting model code ad hoc; this keeps measurement from
perturbing the model (probes run at :class:`~repro.sim.events.EventPriority.PROBE`)
and gives every experiment the same ground truth.

Records are cheap named tuples; categories are plain strings (see
:class:`TraceCategory` for the well-known ones) so applications can add
their own without touching the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from .time import Instant

__all__ = ["TraceCategory", "TraceRecord", "TraceLog"]


class TraceCategory:
    """Well-known trace categories (plain strings, open set)."""

    FRAME_TX = "frame.tx"
    FRAME_RX = "frame.rx"
    FRAME_BLOCKED = "frame.blocked"
    SLOT_START = "slot.start"
    SYNC_ROUND = "sync.round"
    MEMBERSHIP = "membership"
    PORT_SEND = "port.send"
    PORT_RECV = "port.recv"
    PORT_DROP = "port.drop"
    VN_DISPATCH = "vn.dispatch"
    GATEWAY_FORWARD = "gateway.forward"
    GATEWAY_BLOCK = "gateway.block"
    GATEWAY_ERROR = "gateway.error"
    GATEWAY_RESTART = "gateway.restart"
    AUTOMATON_TRANSITION = "automaton.transition"
    AUTOMATON_ERROR = "automaton.error"
    FAULT_INJECT = "fault.inject"
    FAULT_CLEAR = "fault.clear"
    PARTITION_WINDOW = "partition.window"
    JOB_ACTIVATION = "job.activation"
    APP = "app"


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: when, what, who, and free-form details."""

    time: Instant
    category: str
    source: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.detail[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.detail.get(key, default)


class TraceLog:
    """Append-only in-memory trace with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []
        self._listeners: list[Callable[[TraceRecord], None]] = []

    # ------------------------------------------------------------------
    def record(self, time: Instant, category: str, source: str, **detail: Any) -> None:
        """Append a record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        rec = TraceRecord(time=time, category=category, source=source, detail=detail)
        self._records.append(rec)
        for listener in self._listeners:
            listener(rec)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Register a live listener; returns an unsubscribe function."""
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

        return unsubscribe

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def records(
        self,
        category: str | None = None,
        source: str | None = None,
        since: Instant | None = None,
        until: Instant | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Filtered view of the trace (all filters optional, ANDed)."""
        out = []
        for rec in self._records:
            if category is not None and rec.category != category:
                continue
            if source is not None and rec.source != source:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def count(self, category: str | None = None, source: str | None = None) -> int:
        """Number of records matching the filters."""
        return len(self.records(category=category, source=source))

    def times(self, category: str, source: str | None = None) -> list[Instant]:
        """Timestamps of matching records, in trace order."""
        return [r.time for r in self.records(category=category, source=source)]

    def last(self, category: str, source: str | None = None) -> TraceRecord | None:
        """Most recent matching record, or None."""
        matching = self.records(category=category, source=source)
        return matching[-1] if matching else None

    def clear(self) -> None:
        """Drop all records (listeners stay subscribed)."""
        self._records.clear()

    def extend_from(self, records: Iterable[TraceRecord]) -> None:
        """Bulk-append pre-built records (used by trace merging in tests)."""
        self._records.extend(records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceLog n={len(self._records)} enabled={self.enabled}>"
