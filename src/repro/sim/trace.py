"""Structured trace log with pluggable sinks.

Every architecturally interesting occurrence — frame on the bus, message
at a port, gateway decision, automaton transition, fault activation,
membership change — is *emitted* through the :class:`TraceLog` front-end
and consumed by whichever **sinks** are attached:

* :class:`MemorySink` — keep full :class:`TraceRecord` objects in memory
  (the historical behavior; what tests and trace queries use),
* :class:`CounterSink` — per-category record counts only, O(1) memory,
* :class:`StreamSink` — NDJSON records appended to a file.

Observation cost is controlled in two layers.  A **per-category enable
mask** gates what is emitted at all, and the :meth:`TraceLog.wants`
guard tells hot call sites whether building a full record (detail dict,
source formatting) would be consumed by anyone — with only counting
sinks attached, ``wants()`` is False and the caller falls back to the
O(1) :meth:`TraceLog.tick` path, so full-record cost is paid exactly
when a sink or listener will read the record.  The canonical call-site
idiom on hot paths::

    tr = self.sim.trace
    if tr.wants(TraceCategory.FRAME_TX):
        tr.record(now, TraceCategory.FRAME_TX, self.name, sender=..., ...)
    else:
        tr.tick(TraceCategory.FRAME_TX)

Cold paths may call :meth:`TraceLog.record` unconditionally — it applies
the same gating internally and skips record construction when nothing
consumes records.

**Determinism guarantee.**  Sinks only *observe* the record stream; they
never feed back into the model.  With any sink configuration, a fixed
seed produces the same simulation, and with a :class:`MemorySink` the
stored record sequence is bit-identical to the pre-sink ``TraceLog``.

Records are cheap frozen dataclasses; categories are plain strings (see
:class:`TraceCategory` for the well-known ones) so applications can add
their own without touching the kernel.
"""

from __future__ import annotations

import json
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Any

from ..errors import SimulationError
from .time import Instant

__all__ = [
    "TraceCategory",
    "TraceRecord",
    "TraceSink",
    "MemorySink",
    "CounterSink",
    "StreamSink",
    "FlightRecorderSink",
    "TraceLog",
    "TRACE_MODES",
    "make_trace",
    "jsonable",
    "record_to_json",
]


class TraceCategory:
    """Well-known trace categories (plain strings, open set)."""

    FRAME_TX = "frame.tx"
    FRAME_RX = "frame.rx"
    FRAME_BLOCKED = "frame.blocked"
    SLOT_START = "slot.start"
    SYNC_ROUND = "sync.round"
    MEMBERSHIP = "membership"
    PORT_SEND = "port.send"
    PORT_RECV = "port.recv"
    PORT_DROP = "port.drop"
    VN_DISPATCH = "vn.dispatch"
    GATEWAY_FORWARD = "gateway.forward"
    GATEWAY_BLOCK = "gateway.block"
    GATEWAY_ERROR = "gateway.error"
    GATEWAY_RESTART = "gateway.restart"
    AUTOMATON_TRANSITION = "automaton.transition"
    AUTOMATON_ERROR = "automaton.error"
    FAULT_INJECT = "fault.inject"
    FAULT_CLEAR = "fault.clear"
    PARTITION_WINDOW = "partition.window"
    JOB_ACTIVATION = "job.activation"
    APP = "app"
    FLOW_ORIGIN = "flow.origin"
    FLOW_HOP = "flow.hop"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One trace entry: when, what, who, and free-form details."""

    time: Instant
    category: str
    source: str
    detail: dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.detail[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.detail.get(key, default)


def jsonable(value: Any) -> Any:
    """Coerce a detail value to something JSON-native (stringify rest)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    return str(value)


def record_to_json(rec: TraceRecord) -> str:
    """One NDJSON line for ``rec`` with stable field order."""
    return json.dumps({
        "time": rec.time,
        "category": rec.category,
        "source": rec.source,
        **{k: jsonable(v) for k, v in sorted(rec.detail.items())},
    }, separators=(",", ":"))


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
class TraceSink:
    """Consumer of the trace stream.

    ``needs_records`` declares whether the sink reads full
    :class:`TraceRecord` objects (:meth:`emit`) or only per-category
    occurrence ticks (:meth:`tick`).  The front-end builds records only
    when some attached sink (or listener) needs them.
    """

    #: Does this sink consume full records (True) or count-only ticks?
    needs_records: bool = True

    def emit(self, rec: TraceRecord) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def tick(self, category: str, n: int = 1) -> None:
        """Count-only notification (called instead of ``emit`` when the
        front-end skipped record construction)."""

    def close(self) -> None:
        """Release external resources (files); idempotent."""


class MemorySink(TraceSink):
    """Append every record to an in-memory list — today's full trace."""

    needs_records = True

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []

    def emit(self, rec: TraceRecord) -> None:
        self.records.append(rec)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def clear(self) -> None:
        self.records.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MemorySink n={len(self.records)}>"


class CounterSink(TraceSink):
    """Per-category record counts only; O(1) memory, O(1) per record."""

    needs_records = False

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def emit(self, rec: TraceRecord) -> None:
        c = self.counts
        c[rec.category] = c.get(rec.category, 0) + 1

    def tick(self, category: str, n: int = 1) -> None:
        c = self.counts
        c[category] = c.get(category, 0) + n

    def count(self, category: str) -> int:
        return self.counts.get(category, 0)

    def total(self) -> int:
        return sum(self.counts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CounterSink total={self.total()}>"


class StreamSink(TraceSink):
    """NDJSON records appended to a file (path or open text handle).

    Buffered writes through the standard io stack; :meth:`close` flushes.
    The file is opened lazily on the first record so constructing a
    simulator with a stream trace does not touch the filesystem until
    something is emitted.
    """

    needs_records = True

    def __init__(self, target: str | Path | IO[str]) -> None:
        self._target = target
        self._fh: IO[str] | None = None
        self._owns_fh = False
        self._closed = False
        self.emitted = 0

    def _handle(self) -> IO[str]:
        if self._closed:
            raise SimulationError(
                "stream sink is closed (a re-opened path target would "
                "truncate the records already written)")
        if self._fh is None:
            if isinstance(self._target, (str, Path)):
                self._fh = open(self._target, "w")
                self._owns_fh = True
            else:
                self._fh = self._target
        return self._fh

    def emit(self, rec: TraceRecord) -> None:
        self._handle().write(record_to_json(rec) + "\n")
        self.emitted += 1

    def close(self) -> None:
        """Flush (and, for owned files, close) the handle; idempotent.

        A second close is a no-op, and a caller-owned handle that was
        already closed externally is tolerated — the double-exit paths
        (``with trace: ... trace.close()``, CLI plus executor cleanup)
        must never raise on the way out.
        """
        fh, self._fh = self._fh, None
        self._closed = True
        if fh is None:
            return
        if not fh.closed:
            fh.flush()
            if self._owns_fh:
                fh.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StreamSink emitted={self.emitted}>"


class FlightRecorderSink(TraceSink):
    """Bounded ring buffer of the last ``capacity`` records — O(1) memory.

    The flight recorder is for the runs you did *not* expect to care
    about: it rides along at full-record fidelity but only ever holds
    the most recent window, so it can stay attached to long runs that
    would overflow a :class:`MemorySink`.  On a fault (the
    :class:`~repro.faults.injector.FaultInjector` dumps any recorder
    with a ``dump_path``) or on demand, :meth:`dump`/:meth:`dump_to`
    write out the window as NDJSON — the last N records leading up to
    the interesting moment.
    """

    needs_records = True

    def __init__(self, capacity: int = 4096,
                 dump_path: str | Path | None = None) -> None:
        if capacity <= 0:
            raise SimulationError(f"flight recorder capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.dump_path = Path(dump_path) if dump_path is not None else None
        self.buffer: deque[TraceRecord] = deque(maxlen=capacity)
        self.seen = 0
        self.dumps = 0
        self._closed = False

    def emit(self, rec: TraceRecord) -> None:
        self.buffer.append(rec)
        self.seen += 1

    def records(self) -> list[TraceRecord]:
        """The retained window, oldest first."""
        return list(self.buffer)

    def dump(self) -> str:
        """The retained window as NDJSON text (oldest first)."""
        return "".join(record_to_json(rec) + "\n" for rec in self.buffer)

    def dump_to(self, path: str | Path | None = None) -> Path:
        """Write the window to ``path`` (default: ``dump_path``)."""
        target = Path(path) if path is not None else self.dump_path
        if target is None:
            raise SimulationError("flight recorder has no dump path configured")
        target.write_text(self.dump())
        self.dumps += 1
        return target

    def close(self) -> None:
        """Dump the final window to ``dump_path``, if one is configured.

        Idempotent: only the first close dumps, so the double-exit
        paths (context manager + explicit close) write the final
        window exactly once.  Explicit :meth:`dump_to` calls still
        work after close.
        """
        if self._closed:
            return
        self._closed = True
        if self.dump_path is not None and self.buffer:
            self.dump_to(self.dump_path)

    def __len__(self) -> int:
        return len(self.buffer)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlightRecorderSink {len(self.buffer)}/{self.capacity} "
                f"seen={self.seen}>")


# ----------------------------------------------------------------------
# front-end
# ----------------------------------------------------------------------
class TraceLog:
    """Trace front-end: category mask + fan-out to the attached sinks.

    The default configuration (one :class:`MemorySink`, no mask) behaves
    exactly like the historical append-only ``TraceLog``: every query
    helper (:meth:`records`, :meth:`count`, :meth:`times`, :meth:`last`,
    iteration, ``len``) reads the memory sink's record list.
    """

    def __init__(self, enabled: bool = True,
                 sinks: Iterable[TraceSink] | None = None) -> None:
        self.enabled = enabled
        self._sinks: list[TraceSink] = (list(sinks) if sinks is not None
                                        else [MemorySink()])
        self._listeners: list[Callable[[TraceRecord], None]] = []
        #: None = every category enabled; else the enabled set.
        self._mask: frozenset[str] | None = None
        self._rebuild()

    def _rebuild(self) -> None:
        self._record_sinks = [s for s in self._sinks if s.needs_records]
        self._tick_sinks = [s for s in self._sinks if not s.needs_records]
        # Cached: would a full record be consumed right now?
        self._consumes_records = bool(self._record_sinks or self._listeners)

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def wants_records(self) -> bool:
        """Would any *sink* keep full records right now?

        Unlike :meth:`wants`, listeners do not count: the round-template
        engine uses this to decide whether replayed rounds must re-emit
        record prototypes (full-trace runs) or only bump tick counts
        (counter-mode runs), and its own capture listener must not flip
        that decision.
        """
        return self.enabled and bool(self._record_sinks)

    @property
    def sinks(self) -> tuple[TraceSink, ...]:
        return tuple(self._sinks)

    def add_sink(self, sink: TraceSink) -> TraceSink:
        self._sinks.append(sink)
        self._rebuild()
        return sink

    def remove_sink(self, sink: TraceSink) -> None:
        self._sinks.remove(sink)
        self._rebuild()

    def set_mask(self, categories: Iterable[str] | None) -> None:
        """Enable only ``categories`` (None re-enables everything)."""
        self._mask = None if categories is None else frozenset(categories)

    def enable_only(self, *categories: str) -> None:
        self.set_mask(categories)

    def disable_categories(self, *categories: str) -> None:
        """Mask out ``categories`` (relative to the current mask)."""
        base = self._mask if self._mask is not None else frozenset(
            v for k, v in vars(TraceCategory).items() if not k.startswith("_")
        )
        self._mask = base - frozenset(categories)

    @property
    def mask(self) -> frozenset[str] | None:
        return self._mask

    def close(self) -> None:
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "TraceLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        """Flush and close every sink — also on the exception path, so a
        ``with make_trace(...) as trace:`` block never leaves a stream
        or flight-recorder file unflushed."""
        self.close()

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def wants(self, category: str) -> bool:
        """Would a full record of ``category`` be consumed?

        Hot call sites use this to skip detail-dict construction
        entirely; when it returns False they call :meth:`tick` instead
        so counting sinks stay exact.
        """
        if not self.enabled or not self._consumes_records:
            return False
        m = self._mask
        return m is None or category in m

    def tick(self, category: str, n: int = 1) -> None:
        """Count-only fast path: no record is built."""
        if not self.enabled:
            return
        m = self._mask
        if m is not None and category not in m:
            return
        for sink in self._tick_sinks:
            sink.tick(category, n)

    def record(self, time: Instant, category: str, source: str, **detail: Any) -> None:
        """Emit a record (gated by ``enabled`` and the category mask)."""
        if not self.enabled:
            return
        m = self._mask
        if m is not None and category not in m:
            return
        for sink in self._tick_sinks:
            sink.tick(category)
        if not self._consumes_records:
            return
        rec = TraceRecord(time=time, category=category, source=source, detail=detail)
        for sink in self._record_sinks:
            sink.emit(rec)
        for listener in self._listeners:
            listener(rec)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> Callable[[], None]:
        """Register a live listener; returns an unsubscribe function."""
        self._listeners.append(listener)
        self._consumes_records = True

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass
            self._rebuild()

        return unsubscribe

    # ------------------------------------------------------------------
    # queries (read the memory sink, if one is attached)
    # ------------------------------------------------------------------
    @property
    def memory(self) -> MemorySink | None:
        """The first attached :class:`MemorySink`, if any."""
        for sink in self._sinks:
            if isinstance(sink, MemorySink):
                return sink
        return None

    @property
    def flight_recorder(self) -> FlightRecorderSink | None:
        """The first attached :class:`FlightRecorderSink`, if any."""
        for sink in self._sinks:
            if isinstance(sink, FlightRecorderSink):
                return sink
        return None

    def _stored(self) -> list[TraceRecord]:
        mem = self.memory
        return mem.records if mem is not None else []

    def __len__(self) -> int:
        return len(self._stored())

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._stored())

    def records(
        self,
        category: str | None = None,
        source: str | None = None,
        since: Instant | None = None,
        until: Instant | None = None,
        predicate: Callable[[TraceRecord], bool] | None = None,
    ) -> list[TraceRecord]:
        """Filtered view of the stored trace (all filters optional, ANDed)."""
        out = []
        for rec in self._stored():
            if category is not None and rec.category != category:
                continue
            if source is not None and rec.source != source:
                continue
            if since is not None and rec.time < since:
                continue
            if until is not None and rec.time > until:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def count(self, category: str | None = None, source: str | None = None) -> int:
        """Number of records matching the filters.

        Falls back to the counting sinks' per-category totals when no
        memory sink is attached (counters-only runs); the source filter
        then requires the full trace and raises.
        """
        if self.memory is None and self._tick_sinks:
            if source is not None:
                raise SimulationError(
                    "per-source counts need a MemorySink (counters-only "
                    "traces keep per-category totals)"
                )
            sink = self._tick_sinks[0]
            assert isinstance(sink, CounterSink)
            return sink.total() if category is None else sink.count(category)
        return len(self.records(category=category, source=source))

    def category_counts(self) -> dict[str, int]:
        """Per-category record counts from whichever sink is cheapest."""
        for sink in self._tick_sinks:
            if isinstance(sink, CounterSink):
                return dict(sink.counts)
        counts: dict[str, int] = {}
        for rec in self._stored():
            counts[rec.category] = counts.get(rec.category, 0) + 1
        return counts

    def times(self, category: str, source: str | None = None) -> list[Instant]:
        """Timestamps of matching records, in trace order."""
        return [r.time for r in self.records(category=category, source=source)]

    def last(self, category: str, source: str | None = None) -> TraceRecord | None:
        """Most recent matching record, or None."""
        matching = self.records(category=category, source=source)
        return matching[-1] if matching else None

    def clear(self) -> None:
        """Drop all stored records (sinks and listeners stay attached)."""
        mem = self.memory
        if mem is not None:
            mem.clear()

    def extend_from(self, records: Iterable[TraceRecord]) -> None:
        """Bulk-append pre-built records (used by trace merging in tests)."""
        mem = self.memory
        if mem is None:
            raise SimulationError("extend_from needs an attached MemorySink")
        mem.records.extend(records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(type(s).__name__ for s in self._sinks) or "none"
        return f"<TraceLog n={len(self)} sinks=[{kinds}] enabled={self.enabled}>"


# ----------------------------------------------------------------------
# mode factory (shared by the CLI and benchmark harnesses)
# ----------------------------------------------------------------------
TRACE_MODES = ("full", "counters", "stream", "flight", "off")


def make_trace(mode: str = "full",
               stream_target: str | Path | IO[str] | None = None,
               flight_capacity: int = 4096) -> TraceLog:
    """Build a :class:`TraceLog` for one of the standard modes.

    * ``full``     — one :class:`MemorySink` (the default behavior),
    * ``counters`` — one :class:`CounterSink`; hot paths skip record
      construction entirely,
    * ``stream``   — NDJSON to ``stream_target`` plus a
      :class:`CounterSink` for cheap totals,
    * ``flight``   — :class:`FlightRecorderSink` ring buffer of the last
      ``flight_capacity`` records (dumped to ``stream_target`` on close
      or fault, when given) plus a :class:`CounterSink`,
    * ``off``      — no sinks, ``enabled=False``.
    """
    if mode == "full":
        return TraceLog()
    if mode == "counters":
        return TraceLog(sinks=[CounterSink()])
    if mode == "stream":
        if stream_target is None:
            raise SimulationError("trace mode 'stream' needs a stream_target")
        return TraceLog(sinks=[StreamSink(stream_target), CounterSink()])
    if mode == "flight":
        dump = None
        if stream_target is not None and isinstance(stream_target, (str, Path)):
            dump = stream_target
        return TraceLog(sinks=[FlightRecorderSink(flight_capacity, dump_path=dump),
                               CounterSink()])
    if mode == "off":
        return TraceLog(enabled=False, sinks=[])
    raise SimulationError(
        f"unknown trace mode {mode!r} (expected one of {', '.join(TRACE_MODES)})"
    )
