"""A thin stateful wrapper over kernel callbacks.

:class:`Process` gives model elements (controllers, jobs, gateways,
injectors) a common idiom: a name, a reference to the simulator, helper
scheduling methods that tag events with the process name, and a uniform
``start``/``stop`` lifecycle.  It deliberately adds no scheduling policy
of its own — ordering stays fully visible in the event priorities.
"""

from __future__ import annotations

from collections.abc import Callable

from .events import EventPriority, ScheduledEvent
from .kernel import Simulator
from .time import Duration, Instant

__all__ = ["Process"]


class Process:
    """Base class for named model elements driven by the kernel."""

    #: Default priority for events scheduled by this process.
    priority: int = EventPriority.DEFAULT

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self._active = False
        self._cancels: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether the process has been started and not stopped."""
        return self._active

    def start(self) -> None:
        """Activate the process; calls :meth:`on_start` once."""
        if self._active:
            return
        self._active = True
        self.on_start()

    def stop(self) -> None:
        """Deactivate and cancel every event this process scheduled."""
        if not self._active:
            return
        self._active = False
        for cancel in self._cancels:
            cancel()
        self._cancels.clear()
        self.on_stop()

    def on_start(self) -> None:
        """Hook: schedule initial activity here."""

    def on_stop(self) -> None:
        """Hook: release model resources here."""

    # ------------------------------------------------------------------
    # scheduling sugar (auto-labelled, auto-cancelled on stop)
    # ------------------------------------------------------------------
    def call_at(self, time: Instant, callback: Callable[[], None], label: str = "") -> ScheduledEvent:
        ev = self.sim.at(time, self._guarded(callback), priority=self.priority,
                         label=label or self.name)
        self._cancels.append(ev.cancel)
        return ev

    def call_after(self, delay: Duration, callback: Callable[[], None], label: str = "") -> ScheduledEvent:
        ev = self.sim.after(delay, self._guarded(callback), priority=self.priority,
                            label=label or self.name)
        self._cancels.append(ev.cancel)
        return ev

    def call_every(
        self,
        period: Duration,
        callback: Callable[[], None],
        start: Instant | None = None,
        label: str = "",
    ) -> Callable[[], None]:
        cancel = self.sim.every(period, self._guarded(callback), start=start,
                                priority=self.priority, label=label or self.name)
        self._cancels.append(cancel)
        return cancel

    def _guarded(self, callback: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            if self._active:
                callback()

        return run

    # ------------------------------------------------------------------
    def trace(self, category: str, **detail: object) -> None:
        """Record a trace entry attributed to this process."""
        self.sim.trace.record(self.sim.now, category, self.name, **detail)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r} active={self._active}>"
