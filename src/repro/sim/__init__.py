"""Discrete-event simulation kernel (substrate S1).

Integer-nanosecond virtual time, a deterministic event queue, named RNG
streams, per-component drifting clocks, a structured trace log with
pluggable sinks, and an always-on metrics registry.  All other
subsystems of the DECOS reproduction are built on this package.
"""

from .clock import LocalClock
from .events import EventPriority, EventQueue, ScheduledEvent
from .flow import FlowStage, FlowTracer
from .kernel import PeriodicTask, Simulator
from .metrics import Counter, Histogram, Metrics
from .process import Process
from .random import RandomStreams
from .round_template import RoundTemplateEngine
from .runtime import (
    RUNTIME_NAMES,
    AsyncioBridgedRuntime,
    AsyncPort,
    PacedRealTimeRuntime,
    Runtime,
    SimulatedRuntime,
    make_runtime,
)
from .time import (
    MS,
    NEVER,
    NS,
    SEC,
    US,
    ZERO,
    Duration,
    Instant,
    format_instant,
    ms,
    ns,
    sec,
    to_ms,
    to_seconds,
    to_us,
    us,
)
from .trace import (
    TRACE_MODES,
    CounterSink,
    FlightRecorderSink,
    MemorySink,
    StreamSink,
    TraceCategory,
    TraceLog,
    TraceRecord,
    TraceSink,
    make_trace,
)

__all__ = [
    "Simulator",
    "PeriodicTask",
    "Process",
    "EventPriority",
    "EventQueue",
    "ScheduledEvent",
    "RoundTemplateEngine",
    "Runtime",
    "SimulatedRuntime",
    "PacedRealTimeRuntime",
    "AsyncioBridgedRuntime",
    "AsyncPort",
    "RUNTIME_NAMES",
    "make_runtime",
    "LocalClock",
    "RandomStreams",
    "Counter",
    "Histogram",
    "Metrics",
    "TraceCategory",
    "TraceLog",
    "TraceRecord",
    "TraceSink",
    "MemorySink",
    "CounterSink",
    "StreamSink",
    "FlightRecorderSink",
    "FlowStage",
    "FlowTracer",
    "TRACE_MODES",
    "make_trace",
    "Instant",
    "Duration",
    "NS",
    "US",
    "MS",
    "SEC",
    "NEVER",
    "ZERO",
    "ns",
    "us",
    "ms",
    "sec",
    "to_seconds",
    "to_us",
    "to_ms",
    "format_instant",
]
