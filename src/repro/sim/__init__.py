"""Discrete-event simulation kernel (substrate S1).

Integer-nanosecond virtual time, a deterministic event queue, named RNG
streams, per-component drifting clocks, and a structured trace log.  All
other subsystems of the DECOS reproduction are built on this package.
"""

from .clock import LocalClock
from .events import EventPriority, EventQueue, ScheduledEvent
from .kernel import Simulator
from .process import Process
from .random import RandomStreams
from .time import (
    MS,
    NEVER,
    NS,
    SEC,
    US,
    ZERO,
    Duration,
    Instant,
    format_instant,
    ms,
    ns,
    sec,
    to_ms,
    to_seconds,
    to_us,
    us,
)
from .trace import TraceCategory, TraceLog, TraceRecord

__all__ = [
    "Simulator",
    "Process",
    "EventPriority",
    "EventQueue",
    "ScheduledEvent",
    "LocalClock",
    "RandomStreams",
    "TraceCategory",
    "TraceLog",
    "TraceRecord",
    "Instant",
    "Duration",
    "NS",
    "US",
    "MS",
    "SEC",
    "NEVER",
    "ZERO",
    "ns",
    "us",
    "ms",
    "sec",
    "to_seconds",
    "to_us",
    "to_ms",
    "format_instant",
]
