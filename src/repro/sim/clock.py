"""Local clocks with drift, and the global-time abstraction.

Each DECOS component owns a :class:`LocalClock`: a linear map from the
simulator's perfect reference time to the component's *local* view,

    ``local(t) = state_local + (t - state_ref) * (1 + drift_ppm * 1e-6)``

re-anchored whenever fault-tolerant clock synchronization (core service
C2, :mod:`repro.core_network.sync`) applies a correction.  Drift is kept
in parts-per-million as an exact rational (ppm numerator over 10^6) so
local time stays integer-exact and reproducible.

The *precision* of the global time base — the maximum difference between
any two correct local clocks — is what the sync experiment (E1) measures
and what a TT schedule's inter-slot gaps must exceed.
"""

from __future__ import annotations

from fractions import Fraction

from ..errors import SimulationError
from .time import Duration, Instant

__all__ = ["LocalClock"]


class LocalClock:
    """A drifting local clock, correctable by a synchronization service.

    Parameters
    ----------
    drift_ppm:
        Constant rate deviation in parts per million.  Positive means the
        local clock runs fast relative to the reference.
    offset:
        Initial offset of local time from reference time at t=0.
    """

    def __init__(self, drift_ppm: float = 0.0, offset: Duration = 0) -> None:
        self._rate = 1 + Fraction(drift_ppm).limit_denominator(10**9) / 1_000_000
        self.drift_ppm = drift_ppm
        self._anchor_ref: Instant = 0
        self._anchor_local: Fraction = Fraction(offset)
        self.corrections_applied = 0
        # Fast path: a perfect clock (the common case in large models)
        # needs no rational arithmetic at all — local time is reference
        # time plus an integer offset.
        self._perfect = self._rate == 1

    # ------------------------------------------------------------------
    def local_time(self, ref_now: Instant) -> Instant:
        """Local clock reading at reference instant ``ref_now``."""
        if self._perfect:
            return int(self._anchor_local) + (ref_now - self._anchor_ref)
        val = self._anchor_local + (ref_now - self._anchor_ref) * self._rate
        return int(val)  # truncation toward zero: clock granularity 1 ns

    def local_time_exact(self, ref_now: Instant) -> Fraction:
        """Exact (fractional) local time; used by the sync algorithm."""
        return self._anchor_local + (ref_now - self._anchor_ref) * self._rate

    def offset_from_reference(self, ref_now: Instant) -> int:
        """Signed deviation ``local - reference`` at ``ref_now`` (ns)."""
        return self.local_time(ref_now) - ref_now

    # ------------------------------------------------------------------
    def apply_correction(self, ref_now: Instant, correction: Duration) -> None:
        """State-correct the clock by ``correction`` ns at ``ref_now``.

        Used by the FTA synchronization round: the clock jumps, the rate
        keeps drifting as before.
        """
        self._anchor_local = self.local_time_exact(ref_now) + correction
        self._anchor_ref = ref_now
        self.corrections_applied += 1

    def set_local_time(self, ref_now: Instant, new_local: Instant) -> None:
        """Force the local reading to ``new_local`` at ``ref_now``."""
        self._anchor_local = Fraction(new_local)
        self._anchor_ref = ref_now
        self.corrections_applied += 1

    # ------------------------------------------------------------------
    def ref_time_for_local(self, local_target: Instant, ref_hint: Instant) -> Instant:
        """Reference instant at which this clock reads ``local_target``.

        Needed to schedule "act when *my* clock shows T" on the perfect
        event queue.  ``ref_hint`` must not be after the answer; the
        returned instant is the earliest reference time with
        ``local_time >= local_target``.
        """
        if self._perfect:
            t_fast = local_target - int(self._anchor_local) + self._anchor_ref
            if t_fast < ref_hint:
                raise SimulationError(
                    f"local target {local_target} already passed "
                    f"(local now {self.local_time(ref_hint)})"
                )
            return t_fast
        cur = self.local_time_exact(ref_hint)
        if cur > local_target:
            raise SimulationError(
                f"local target {local_target} already passed (local now ~{float(cur):.0f})"
            )
        # Solve anchor_local + (t - anchor_ref)*rate >= local_target for t.
        delta = (Fraction(local_target) - self._anchor_local) / self._rate
        t = self._anchor_ref + delta
        # Round up to the next integer nanosecond.
        t_int = int(t)
        if t_int < t:
            t_int += 1
        return max(t_int, ref_hint)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LocalClock drift={self.drift_ppm}ppm corrections={self.corrections_applied}>"
