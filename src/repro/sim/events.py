"""Event queue for the discrete-event kernel.

Events are ``(time, priority, seq, callback)`` entries in a binary heap.
The ``seq`` counter breaks ties deterministically: two events scheduled
for the same instant with the same priority fire in the order they were
scheduled, regardless of callback identity.  This is what makes whole
simulation runs bit-reproducible across processes and Python versions.

Priorities order *simultaneous* events: lower values fire first.  The
kernel reserves a small band of well-known priorities (see
:class:`EventPriority`) so that, e.g., a communication controller always
observes a slot boundary before application jobs react to it.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from dataclasses import dataclass, field
from enum import IntEnum

from ..errors import SimulationError
from .time import Duration, Instant

__all__ = ["EventPriority", "ScheduledEvent", "EventQueue"]


class EventPriority(IntEnum):
    """Deterministic ordering of events that share an instant.

    The bands mirror the causality layers of the architecture: the
    physical network settles before controllers, controllers before
    architectural services (gateways), services before application jobs,
    and measurement probes observe last.
    """

    NETWORK = 0
    CONTROLLER = 10
    SERVICE = 20
    APPLICATION = 30
    PROBE = 40
    DEFAULT = 30


@dataclass(order=True, slots=True)
class ScheduledEvent:
    """A single pending event; orderable by (time, priority, seq)."""

    time: Instant
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    #: Backref to the owning queue while the entry is in its heap; the
    #: queue clears it on pop so cancelling an already-executed event
    #: (e.g. a periodic task cancelling itself mid-tick) is a no-op.
    _queue: "EventQueue | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped.

        Cancellation is O(1) amortized; the heap entry is lazily
        discarded (or purged wholesale by queue compaction).
        Idempotent, and safe on events that have already fired.
        """
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            self._queue._note_cancelled()


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent`.

    Not thread-safe by design: the kernel is single-threaded, which is
    both sufficient (virtual time, not wall time) and required for
    reproducibility.

    Heap entries are ``(time, priority, seq, event)`` tuples rather than
    the events themselves: every comparison a heap sift performs is then
    a plain C-level integer-tuple compare instead of a Python-level
    dataclass ``__lt__`` that allocates two tuples per call.  The
    ``seq`` component is unique, so the trailing event object is never
    compared.
    """

    #: Lazily-cancelled entries are purged from the heap once they both
    #: exceed this floor and outnumber the live entries, keeping pop and
    #: peek O(log live) even under heavy cancel/re-arm churn.
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, ScheduledEvent]] = []
        self._seq = 0
        self._live = 0
        self._dead = 0
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: Instant,
        callback: Callable[[], None],
        priority: int = EventPriority.DEFAULT,
        label: str = "",
    ) -> ScheduledEvent:
        """Schedule ``callback`` at ``time``; returns a cancellable handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        seq = self._seq
        ev = ScheduledEvent(time=time, priority=priority, seq=seq,
                            callback=callback, label=label, _queue=self)
        self._seq = seq + 1
        self._live += 1
        # IntEnum priorities compare through int's C slots, so the tuple
        # entry never triggers a Python-level comparison.
        heapq.heappush(self._heap, (time, priority, seq, ev))
        return ev

    def _note_cancelled(self) -> None:
        """A pending entry turned dead; compact once the dead dominate.

        Called from :meth:`ScheduledEvent.cancel` — the only place dead
        entries are created — so the schedule-heavy ``push``/``pop``
        fast path carries no compaction bookkeeping at all.
        """
        self._live -= 1
        self._dead += 1
        if self._dead > self.COMPACT_MIN_CANCELLED and self._dead > self._live:
            self.compact()

    def compact(self) -> None:
        """Drop every lazily-cancelled entry and re-heapify.

        Events are totally ordered by ``(time, priority, seq)``, so
        rebuilding the heap cannot change pop order — compaction is
        invisible to the simulation.  The heap list is mutated in place
        (never rebound) because compaction can fire inside a kernel
        callback while ``Simulator.run_until`` holds a reference to the
        list for its preemption guard.
        """
        self._heap[:] = [e for e in self._heap if not e[3].cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1

    def peek_time(self) -> Instant | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        ev = heapq.heappop(self._heap)[3]
        self._live -= 1
        ev._queue = None
        return ev

    def pop_ready(self, t: Instant, limit: int = 4096) -> list[ScheduledEvent]:
        """Pop every live event with ``time <= t`` (up to ``limit``), in
        execution order.

        This is the kernel's batched drain: one heap touch per event
        instead of the peek+pop pair.  Popped events no longer belong to
        the queue — ``cancel()`` on them still sets the flag (the kernel
        checks it before executing) but does no queue accounting, exactly
        like events returned by :meth:`pop`.  Events the kernel decides
        not to execute must be handed back via :meth:`requeue`.
        """
        heap = self._heap
        if not heap:
            return []
        out: list[ScheduledEvent] = []
        pop = heapq.heappop
        append = out.append
        n = 0
        while heap:
            head = heap[0][3]
            if head.cancelled:
                pop(heap)
                head._queue = None
                self._dead -= 1
                continue
            if head.time > t or n >= limit:
                break
            pop(heap)
            head._queue = None
            append(head)
            n += 1
        self._live -= n
        return out

    def requeue(self, events: list[ScheduledEvent]) -> None:
        """Return unexecuted events from :meth:`pop_ready` to the heap.

        Cancelled entries are dropped (their live-count exit already
        happened at pop time).  Re-inserting cannot change pop order:
        events are totally ordered by ``(time, priority, seq)``.
        """
        heap = self._heap
        for ev in events:
            if ev.cancelled:
                continue
            ev._queue = self
            self._live += 1
            heapq.heappush(heap, (ev.time, ev.priority, ev.seq, ev))

    def shift_span(self, bound: Instant, dt: Duration) -> None:
        """Shift every live event with ``time < bound`` forward by ``dt``.

        This is the heap half of round-template fast-forward (see
        :mod:`repro.sim.round_template`): the events pending inside a
        replayed round are exactly the periodic activity whose next
        occurrence lies ``k`` rounds later, so translating them in time
        — preserving their relative ``(time, priority, seq)`` order —
        reproduces the queue state event-by-event execution would have
        reached.  Cancelled entries are purged while we're rewriting the
        heap anyway.
        """
        heap = self._heap
        out = []
        for tm, pr, sq, ev in heap:
            if ev.cancelled:
                ev._queue = None
                continue
            if tm < bound:
                ev.time = tm + dt
                out.append((tm + dt, pr, sq, ev))
            else:
                out.append((tm, pr, sq, ev))
        heap[:] = out
        heapq.heapify(heap)
        self._dead = 0

    def retime_span(self, bound: Instant,
                    mapper: "Callable[[Instant, int, ScheduledEvent], Instant | None]",
                    ) -> None:
        """Re-timestamp live events with ``time < bound`` individually.

        The per-event sibling of :meth:`shift_span`, used by
        quasi-periodic round replay when the chains pending inside a
        replayed round advance by *different* strides (a drifting
        producer next to an exactly-periodic slot chain).  ``mapper``
        receives ``(time, priority, event)`` and returns the event's new
        time, or None to leave it untouched.  Cancelled entries are
        purged while the heap is rewritten anyway.
        """
        heap = self._heap
        out = []
        for tm, pr, sq, ev in heap:
            if ev.cancelled:
                ev._queue = None
                continue
            if tm < bound:
                nt = mapper(tm, pr, ev)
                if nt is not None and nt != tm:
                    ev.time = nt
                    out.append((nt, pr, sq, ev))
                    continue
            out.append((tm, pr, sq, ev))
        heap[:] = out
        heapq.heapify(heap)
        self._dead = 0

    def clear(self) -> None:
        """Drop every pending event."""
        for entry in self._heap:
            entry[3]._queue = None
        self._heap.clear()
        self._live = 0
        self._dead = 0

    def _drop_cancelled(self) -> None:
        # Cancelled entries already left the live count when cancel()
        # ran; here they just leave the heap.
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)[3]._queue = None
            self._dead -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nxt = self.peek_time()
        return f"<EventQueue live={self._live} next={nxt}>"
