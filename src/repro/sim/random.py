"""Named, independently-seeded random streams.

Stochastic model elements (event-triggered interarrival times, clock
drift draws, fault arrival processes) each pull from their **own** named
stream, derived from the master seed via ``numpy.random.SeedSequence``
spawning.  That way, adding a new stochastic element — or changing how
often one element draws — never perturbs the sequences seen by the
others, which keeps experiments comparable across code revisions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory and registry of named ``numpy.random.Generator`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._root = np.random.SeedSequence(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The per-name seed is derived from the master seed *and* the name
        (stable hash), so stream identity does not depend on creation
        order.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Stable, order-independent derivation: hash the name into
            # extra entropy words appended to the master sequence.
            name_words = np.frombuffer(name.encode().ljust(4, b"\0"), dtype=np.uint8)
            entropy = [self.master_seed] + [int(w) for w in name_words]
            gen = np.random.Generator(np.random.PCG64(np.random.SeedSequence(entropy)))
            self._streams[name] = gen
        return gen

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self) -> list[str]:
        """Names of all streams created so far (sorted)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RandomStreams seed={self.master_seed} n={len(self._streams)}>"
