"""Compiled TDMA round templates: steady-state fast-forward execution.

The paper's premise — every virtual network is an overlay on *one*
time-triggered physical network with a statically known TDMA schedule —
means that in steady state the simulation repeats itself every
communication round: the same controller slot actions, frame
transmissions, bus deliveries, and TT dispatches at the same offsets
within every round.  This module compiles that repetition into a
**round template** and lets the kernel *replay* whole rounds in bulk
instead of executing them event by event.

How it works
------------
The engine observes the simulation at **round boundaries** (multiples of
the cluster-cycle LCM).  After a short warm-up it records two full
consecutive rounds: a state snapshot at each boundary (metric counters,
histograms, trace tick counts, and every registered participant's
``rt_state()``) plus the exact trace records the round emitted.  If the
two rounds produced *identical* deltas and *identical* record sequences
(same categories/sources/details at the same offsets, allowing an
integer per-round stride on whitelisted keys like ``cycle``), the round
is provably in steady state and the pair compiles into a template.

Replaying ``k`` rounds then means: emit ``k`` copies of the record
prototypes (with strided details) into the record sinks, bump tick
counts, counters, histogram buckets, ``events_executed``, and every
participant's statistics by ``k`` times the per-round delta, advance the
pending heap events of the round by ``k`` round lengths, and skip ahead.
Byte-for-byte trace parity is *checked, not assumed*: the template is
built from observed equality, the boundary **signature** (the pending
heap events' (offset, priority, label) tuples restricted to registered
labels) is re-verified before every replay, and any deviation — an
unregistered event, a non-linear state delta, a membership flip, a
clock correction — aborts the fast path back to event-by-event
execution with exponential back-off.

Interleaving-source contract
----------------------------
Dynamic activity that is *not* part of the periodic round must either

* register a permanent **interleaving source**
  (:meth:`RoundTemplateEngine.add_interleaving_source`) — ET virtual
  networks and gateways do this at construction, which disables the
  fast path for their simulator entirely, or
* **puncture** the fast path at the instant the dynamics change
  (:meth:`RoundTemplateEngine.puncture`) — the fault injector does this
  on every activation/deactivation, which drops the compiled template
  and restarts recording from scratch, or
* simply schedule events with labels the engine does not know: an
  unregistered label pending at a round boundary blocks both recording
  and replay for that window (this is what makes one-shot test events
  safe by default).

The engine is **dormant until** :meth:`activate` is called.  Scenario
builders (:func:`repro.runner.scenarios.build_scenario`), the CLI, and
the benchmarks activate it by default (``--no-round-template`` opts
out); hand-built simulators — unit tests poking at model internals
between events — keep exact event-by-event execution unless they opt
in.

Participant protocol (duck-typed)
---------------------------------
``rt_state() -> dict[str, int]``
    Integer-valued statistics snapshot with a *stable key set*.
``rt_check(delta: dict[str, int]) -> bool``
    True iff the per-round delta is legal to linearly extrapolate
    (every non-zero key is a plain monotonic statistic).
``rt_advance(delta: dict[str, int], k: int) -> None``
    Apply ``k`` rounds' worth of ``delta`` to the model state.
"""

from __future__ import annotations

import math
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from .trace import CounterSink, TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

__all__ = ["RoundTemplateEngine", "STRIDE_KEYS", "WARMUP", "MAX_BACKOFF"]

#: Trace-detail keys allowed to advance by a constant integer stride per
#: round (everything else must be bit-identical between rounds).
STRIDE_KEYS = ("cycle", "nominal")

#: Rounds skipped after activation/reset before recording begins, so
#: start-up transients (first sync round, membership settling) never
#: land in a template.
WARMUP = 2

#: Ceiling for the exponential recording back-off, in rounds.
MAX_BACKOFF = 64

_IDLE, _REC1, _REC2, _ARMED = 0, 1, 2, 3


class RoundTemplateEngine:
    """Round-template compiler and fast-forward executor for one simulator."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._active = False
        self._round_len = 0
        self._participants: list[Any] = []
        self._labels: set[str] = set()
        self._sources: set[str] = set()
        self._state = _IDLE
        self._boundary = 0
        self._skip = WARMUP
        self._backoff = 1
        self._snap: dict | None = None
        self._first_delta: dict | None = None
        self._capture: list[TraceRecord] = []
        self._capture_listener = self._capture.append
        self._unsub: Callable[[], None] | None = None
        self._template: dict | None = None
        # statistics ----------------------------------------------------
        self.rounds_replayed = 0
        self.replays = 0
        self.recordings = 0
        self.failed_recordings = 0
        self.punctures = 0

    # ------------------------------------------------------------------
    # configuration & registration
    # ------------------------------------------------------------------
    def activate(self) -> None:
        """Enable the fast path (dormant by default — see module docs)."""
        self._active = True

    def deactivate(self) -> None:
        self._active = False
        self._reset()

    @property
    def active(self) -> bool:
        return self._active

    @property
    def engaged(self) -> bool:
        """Could the fast path run right now (active, no permanent
        interleaving sources)?"""
        return self._active and not self._sources

    @property
    def next_boundary(self) -> int:
        return self._boundary

    @property
    def round_length(self) -> int:
        return self._round_len

    def register_cluster(self, cluster: Any) -> None:
        """Fold one TT cluster's round into the template domain.

        Registers the cluster's cycle length, every controller's slot and
        cycle-end event labels, and the controllers, bus, and guardian as
        participants.  A controller on an imperfect (drifting) clock is
        a permanent interleaving source: its clock state mutates every
        sync round, which linear extrapolation cannot reproduce.
        """
        self._fold_period(cluster.schedule.cycle_length)
        for ctrl in cluster.controllers.values():
            self._labels.add(f"{ctrl.name}.cycle_end")
            for slot, _offset in ctrl._own_slots:
                self._labels.add(f"{ctrl.name}.slot{slot.slot_id}")
            self._participants.append(ctrl)
            if not ctrl.clock._perfect:
                self._sources.add(f"clock.{ctrl.component}")
        self._participants.append(cluster.bus)
        self._participants.append(cluster.guardian)
        self._touch_config()

    def register_labels(self, labels: Any, period: int | None = None) -> None:
        """Declare event labels as template-covered; ``period`` (if any)
        is folded into the round length."""
        self._labels.update(labels)
        if period is not None:
            self._fold_period(period)
        self._touch_config()

    def register_participant(self, obj: Any) -> None:
        """Register an object implementing the participant protocol."""
        if all(existing is not obj for existing in self._participants):
            self._participants.append(obj)
        self._touch_config()

    def add_interleaving_source(self, name: str) -> None:
        """Permanently disable the fast path for this simulator (used by
        inherently aperiodic subsystems: ET networks, gateways)."""
        self._sources.add(name)
        self._reset()

    def puncture(self) -> None:
        """Drop any compiled template and restart recording (called at
        the instant the model's dynamics change, e.g. fault injection)."""
        self._reset()
        self.punctures += 1

    def _fold_period(self, period: int) -> None:
        if period <= 0:
            return
        self._round_len = (math.lcm(self._round_len, period)
                           if self._round_len else period)

    def _touch_config(self) -> None:
        """Registration changed mid-run: drop state, re-derive boundary."""
        self._reset()
        if self._round_len > 0:
            self._boundary = (self.sim._now // self._round_len + 1) * self._round_len

    def _reset(self) -> None:
        self._abort_capture()
        self._capture.clear()
        self._template = None
        self._snap = None
        self._first_delta = None
        self._state = _IDLE
        self._skip = WARMUP
        self._backoff = 1

    def _abort_capture(self) -> None:
        if self._unsub is not None:
            self._unsub()
            self._unsub = None

    # ------------------------------------------------------------------
    # kernel entry points
    # ------------------------------------------------------------------
    def begin(self, t: int) -> "RoundTemplateEngine | None":
        """Arm the engine for one ``run_until(t)`` call; None = stay off.

        Recording always restarts from scratch: model state may have been
        mutated between runs (tests crash controllers, tweak queues), so
        a template from a previous run is never trusted.
        """
        if not self._active or self._round_len <= 0 or self._sources:
            return None
        self._reset()
        sim = self.sim
        if not sim._runtime.supports_round_templates:
            # Bulk round replay is only sound when nothing outside the
            # event queue observes intermediate instants; paced/asyncio
            # runtimes gate every event against an external clock.
            return None
        if sim.flows.enabled or sim._profiling:
            return None
        if sim.trace._listeners:
            # A live listener observes records one by one; bulk replay
            # would change what it sees relative to model state.
            return None
        self._boundary = (sim._now // self._round_len + 1) * self._round_len
        return self

    def on_boundary(self, t: int) -> None:
        """Called by the kernel with the queue drained up to (excluding)
        ``next_boundary``; advances the recording state machine and/or
        fast-forwards.  Always either advances the boundary or replays,
        so kernel progress is guaranteed."""
        B = self._boundary
        L = self._round_len
        state = self._state
        if state == _ARMED:
            self._replay(B, t)
            return
        if state == _IDLE:
            if self._skip > 0:
                self._skip -= 1
                self._boundary = B + L
                return
            snap = self._snapshot(B)
            if snap is None:
                self._fail()
            else:
                self._snap = snap
                self._capture.clear()
                self._unsub = self.sim.trace.subscribe(self._capture_listener)
                self._state = _REC1
            self._boundary = B + L
            return
        # _REC1 / _REC2: one more recorded round just completed
        snap = self._snapshot(B)
        delta = self._delta(self._snap, snap) if snap is not None else None
        if delta is None:
            self._abort_capture()
            self._fail()
            self._boundary = B + L
            return
        if state == _REC1:
            self._first_delta = delta
            self._snap = snap
            self._state = _REC2
            self._boundary = B + L
            return
        # _REC2: two consecutive rounds observed — compile and arm
        self._abort_capture()
        template = self._compile(self._first_delta, delta, B)
        self._snap = None
        self._first_delta = None
        if template is None:
            self._fail()
            self._boundary = B + L
            return
        self._template = template
        self._state = _ARMED
        self._backoff = 1
        self.recordings += 1
        self._replay(B, t)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _fail(self) -> None:
        self._state = _IDLE
        self._snap = None
        self._first_delta = None
        self._skip = self._backoff
        self._backoff = min(self._backoff * 2, MAX_BACKOFF)
        self.failed_recordings += 1

    def _signature(self, B: int) -> tuple[tuple, int | None] | None:
        """The pending queue's shape at boundary ``B``.

        Returns ``(sig, far_min)`` where ``sig`` is the sorted tuple of
        ``(offset-in-round, priority, label)`` for every live event
        inside the next round and ``far_min`` is the earliest live event
        at or beyond the round's end (None if none) — or None if any
        in-round event carries an unregistered label.
        """
        horizon = B + self._round_len
        labels = self._labels
        near: list[tuple[int, int, int, str]] = []
        far_min: int | None = None
        for tm, pr, sq, ev in self.sim._queue._heap:
            if ev.cancelled:
                continue
            if tm >= horizon:
                if far_min is None or tm < far_min:
                    far_min = tm
            elif ev.label not in labels:
                return None
            else:
                near.append((tm - B, pr, sq, ev.label))
        near.sort()
        return tuple((rel, pr, label) for rel, pr, _sq, label in near), far_min

    def _snapshot(self, B: int) -> dict | None:
        """Full observable-state snapshot at boundary ``B`` (None if the
        queue shape or sink configuration is not template-compatible)."""
        sig = self._signature(B)
        if sig is None:
            return None
        sim = self.sim
        tick_sinks = tuple(sim.trace._tick_sinks)
        for sink in tick_sinks:
            if not isinstance(sink, CounterSink):
                return None  # unknown tick semantics — cannot bulk-apply
        return {
            "sig": sig,
            "ticks": tick_sinks,
            "tick_counts": [dict(s.counts) for s in tick_sinks],
            "counters": {name: c.value
                         for name, c in sim.metrics._counters.items()},
            "hists": {name: (h.count, h.total, h.minimum, h.maximum,
                             tuple(h.buckets))
                      for name, h in sim.metrics._histograms.items()},
            "events": sim.events_executed,
            "parts": [p.rt_state() for p in self._participants],
        }

    def _delta(self, prev: dict | None, cur: dict) -> dict | None:
        """Per-round delta between two boundary snapshots, or None if the
        round is not linearly replayable."""
        if prev is None:
            return None
        if prev["sig"][0] != cur["sig"][0]:
            return None
        pt, ct = prev["ticks"], cur["ticks"]
        if len(pt) != len(ct) or any(a is not b for a, b in zip(pt, ct)):
            return None
        records = list(self._capture)
        self._capture.clear()
        tick_deltas = []
        for pc, cc in zip(prev["tick_counts"], cur["tick_counts"]):
            tick_deltas.append({cat: n - pc.get(cat, 0)
                                for cat, n in cc.items()})
        pc_counters = prev["counters"]
        if tuple(pc_counters) != tuple(cur["counters"]):
            return None  # a counter was created mid-round
        counter_deltas = {name: v - pc_counters[name]
                          for name, v in cur["counters"].items()}
        ph = prev["hists"]
        hist_deltas: dict[str, tuple[int, int, tuple]] = {}
        for name, (hc, htot, hmin, hmax, hbuckets) in cur["hists"].items():
            p = ph.get(name)
            if p is None:
                return None  # histogram created mid-round
            if p[2] != hmin or p[3] != hmax:
                return None  # min/max moved — not linearly replayable
            bucket_delta = tuple(
                (i, b - pb) for i, (b, pb) in enumerate(zip(hbuckets, p[4]))
                if b != pb
            )
            hist_deltas[name] = (hc - p[0], htot - p[1], bucket_delta)
        part_deltas: list[dict[str, int]] = []
        for p_prev, p_cur, part in zip(prev["parts"], cur["parts"],
                                       self._participants):
            if tuple(p_prev) != tuple(p_cur):
                return None  # participant key set changed
            d = {key: v - p_prev[key] for key, v in p_cur.items()}
            if not part.rt_check(d):
                return None
            part_deltas.append(d)
        return {
            "records": records,
            "ticks": tick_deltas,
            "counters": counter_deltas,
            "hists": hist_deltas,
            "events": cur["events"] - prev["events"],
            "parts": part_deltas,
        }

    def _compile(self, d1: dict | None, d2: dict, B2: int) -> dict | None:
        """Compile two equal consecutive round deltas into a template.

        ``d2``'s round spans ``[B2 - L, B2)``; it becomes the template's
        base round.  Record prototypes pair off the two rounds' records:
        equal category/source/detail (with an optional integer stride on
        :data:`STRIDE_KEYS`) at equal in-round offsets.
        """
        if d1 is None:
            return None
        if (d1["ticks"] != d2["ticks"] or d1["counters"] != d2["counters"]
                or d1["hists"] != d2["hists"] or d1["events"] != d2["events"]
                or d1["parts"] != d2["parts"]):
            return None
        r1s, r2s = d1["records"], d2["records"]
        if len(r1s) != len(r2s):
            return None
        L = self._round_len
        base = B2 - L
        protos: list[tuple[int, str, str, dict, tuple]] = []
        for r1, r2 in zip(r1s, r2s):
            if r1.category != r2.category or r1.source != r2.source:
                return None
            if r2.time - r1.time != L:
                return None
            rel = r2.time - base
            if not 0 <= rel < L:
                return None
            dd1, dd2 = r1.detail, r2.detail
            if tuple(sorted(dd1)) != tuple(sorted(dd2)):
                return None
            strides: list[tuple[str, int, int]] = []
            for key, v2 in dd2.items():
                v1 = dd1[key]
                if v1 == v2:
                    continue
                if (key in STRIDE_KEYS and isinstance(v1, int)
                        and isinstance(v2, int)):
                    strides.append((key, v2, v2 - v1))
                else:
                    return None
            protos.append((rel, r1.category, r1.source, dd2, tuple(strides)))
        return {
            "base": base,
            "protos": protos,
            "ticks": d2["ticks"],
            "counters": d2["counters"],
            "hists": d2["hists"],
            "events": d2["events"],
            "parts": d2["parts"],
            "sig": self._snap["sig"][0] if self._snap else None,
        }

    # ------------------------------------------------------------------
    # replay
    # ------------------------------------------------------------------
    def _replay(self, B: int, t: int) -> None:
        L = self._round_len
        tpl = self._template
        sig = self._signature(B)
        if tpl is None or sig is None or sig[0] != tpl["sig"]:
            # The queue no longer matches the compiled round — invalidate.
            self._template = None
            self._fail()
            self._boundary = B + L
            return
        far_min = sig[1]
        k = (t - B) // L
        if far_min is not None:
            k = min(k, (far_min - B - 1) // L)
        if k < 1:
            # Not a whole template-safe round of headroom: run it live
            # (the template stays armed for the next boundary).
            self._boundary = B + L
            return
        self._apply(k, B)
        self._boundary = B + k * L
        self.rounds_replayed += k
        self.replays += 1

    def _apply(self, k: int, B: int) -> None:
        """Apply ``k`` rounds' worth of the template starting at ``B``."""
        from .kernel import PeriodicTask  # local import: kernel imports us

        sim = self.sim
        tpl = self._template
        L = self._round_len
        base = tpl["base"]
        trace = sim.trace

        # 1. trace records, byte-for-byte (strided details re-derived
        #    exactly as live execution would have produced them)
        record_sinks = trace._record_sinks if trace.enabled else ()
        if record_sinks and tpl["protos"]:
            protos = tpl["protos"]
            for j in range(k):
                rb = B + j * L
                m = (rb - base) // L
                for rel, category, source, detail, strides in protos:
                    if strides:
                        detail = dict(detail)
                        for key, bval, stride in strides:
                            detail[key] = bval + stride * m
                    rec = TraceRecord(time=rb + rel, category=category,
                                      source=source, detail=detail)
                    for sink in record_sinks:
                        sink.emit(rec)

        # 2. tick counts (counter-mode sinks)
        if trace.enabled:
            for sink, dmap in zip(trace._tick_sinks, tpl["ticks"]):
                for cat, d in dmap.items():
                    if d:
                        sink.tick(cat, d * k)

        # 3. metrics
        counters = sim.metrics._counters
        for name, d in tpl["counters"].items():
            if d:
                counters[name].value += d * k
        hists = sim.metrics._histograms
        for name, (dc, dtot, bucket_delta) in tpl["hists"].items():
            if dc or dtot:
                h = hists[name]
                h.count += dc * k
                h.total += dtot * k
                for i, db in bucket_delta:
                    h.buckets[i] += db * k

        # 4. kernel accounting
        sim.events_executed += tpl["events"] * k

        # 5. participants (controllers, buses, guardians, TT VNs)
        for part, delta in zip(self._participants, tpl["parts"]):
            part.rt_advance(delta, k)

        # 6. pending events: periodic-task owners advance their nominal
        #    instants, then every in-round event shifts forward k rounds
        shift = k * L
        horizon = B + L
        for tm, _pr, _sq, ev in sim._queue._heap:
            if ev.cancelled or tm >= horizon:
                continue
            owner = getattr(ev.callback, "__self__", None)
            if isinstance(owner, PeriodicTask):
                owner.next_time += shift
        sim._queue.shift_span(horizon, shift)
        # sim._now is deliberately left alone: the next executed event
        # (or the run_until tail) advances it, exactly as if the skipped
        # rounds had run.

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready engine statistics (for results and debugging)."""
        return {
            "active": self._active,
            "round_length_ns": self._round_len,
            "interleaving_sources": sorted(self._sources),
            "rounds_replayed": self.rounds_replayed,
            "replays": self.replays,
            "recordings": self.recordings,
            "failed_recordings": self.failed_recordings,
            "punctures": self.punctures,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("dormant" if not self._active
                 else "blocked" if self._sources
                 else ("idle", "rec1", "rec2", "armed")[self._state])
        return (f"<RoundTemplateEngine {state} L={self._round_len} "
                f"replayed={self.rounds_replayed}>")
