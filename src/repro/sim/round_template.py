"""Compiled round templates: steady-state fast-forward execution.

The paper's premise — every virtual network is an overlay on *one*
time-triggered physical network with a statically known TDMA schedule —
means that in steady state the simulation repeats itself every
communication round: the same controller slot actions, frame
transmissions, bus deliveries, and TT dispatches at the same offsets
within every round.  This module compiles that repetition into a
**round template** and lets the kernel *replay* whole rounds in bulk
instead of executing them event by event.

Two eligibility modes (see DESIGN 6.w for the full matrix):

**Strict** (``activate()``) is the original engine: pure-TT clusters
only.  Any event-triggered virtual network, gateway, or drifting clock
permanently blocks the fast path, and a template requires two identical
*consecutive* rounds.

**Quasi-periodic** (``activate(quasi_periodic=True)``) extends capture
to gateway scenarios whose ET traffic reaches steady state: periodic
senders whose send pattern repeats at the hyperperiod.  Instead of one
template it maintains a **bank** keyed by the *phase-normalized* heap
signature plus a participant **fingerprint**, so rounds that recur at
different offsets against the round grid (drifting producers, window
orbits) re-arm by re-timestamping the template deltas against the
observed boundary phase.  ET networks and gateways register as *dynamic
participants* (:meth:`RoundTemplateEngine.register_dynamic`) rather
than permanent blockers: their per-round state deltas are checked and
extrapolated like any other participant, and their fingerprints veto
rounds whose hidden state (pending ET queues, message freshness) does
not exactly match the compiled occurrence.

How it works
------------
The engine observes the simulation at **round boundaries** (multiples
of the cluster-cycle LCM; in quasi-periodic mode registered *label*
periods are deliberately not folded in, so ET/TT dispatch periods above
the cycle hyperperiod show up as far events instead of exploding the
round).  While recording it snapshots observable state at boundaries
(metric counters, histograms, trace tick counts, and every registered
participant's ``rt_state()``) plus the exact trace records a round
emitted.  A strict template compiles from two identical consecutive
rounds; a quasi-periodic template compiles per bank key — immediately
in counter-trace runs (no records to prototype), or from two paired
occurrences of the same key in full-trace runs (record offsets must
match relative to each occurrence's phase, with an integer per-round
stride on whitelisted keys like ``cycle``).

Replaying ``k`` rounds then means: bulk-emit ``k`` copies of the record
prototypes re-timestamped against the current boundary phase (the
timestamp grid is a preallocated numpy outer sum), bump tick counts,
counters (numpy delta vector), histogram buckets
(:meth:`~repro.sim.metrics.Histogram.bulk_apply`), ``events_executed``,
and every participant's statistics by ``k`` times the per-round delta,
advance the pending heap events by their observed successor strides,
and skip ahead.  Byte-for-byte trace parity is *checked, not assumed*:
templates are built from observed equality, the boundary signature and
fingerprint are re-verified before every replay (in quasi-periodic mode
the bank lookup *is* that verification), and any deviation — an
unregistered event, a non-linear state delta, a fingerprint mismatch —
falls back to event-by-event execution for that round.

Persistent template store
-------------------------
``dump_bank()``/``load_bank()`` serialize compiled templates so a
sweep's second run — and every parallel worker — skips warm-up (see
:class:`repro.runner.cache.TemplateStore`; keyed by spec + code digest
+ :data:`ENGINE_VERSION`).  A loaded bank is validated eagerly against
the engine's mode, round length, label set, and participant count;
any mismatch or parse error discards it and falls back to live
compilation.  Runs that punctured never persist their bank.

Interleaving-source contract
----------------------------
Dynamic activity that is *not* part of the periodic round must either

* register a permanent **interleaving source**
  (:meth:`RoundTemplateEngine.add_interleaving_source`) — a true
  unknown, disabling the fast path in both modes, or
* register as a **dynamic participant**
  (:meth:`RoundTemplateEngine.register_dynamic`) — ET virtual networks
  and gateways do this at construction: blocking in strict mode,
  delta-checked and fingerprinted in quasi-periodic mode, or
* **puncture** the fast path at the instant the dynamics change
  (:meth:`RoundTemplateEngine.puncture`) — the fault injector does this
  on every activation/deactivation, which drops every compiled template
  (a post-fault steady state may collide with a pre-fault bank key) and
  restarts recording from scratch, or
* simply schedule events with labels the engine does not know: an
  unregistered label pending at a round boundary blocks both recording
  and replay for that window (this is what makes one-shot test events
  safe by default).

The engine is **dormant until** :meth:`activate` is called.  Scenario
builders (:func:`repro.runner.scenarios.build_scenario`) activate the
quasi-periodic mode by default (``--no-round-template`` opts out);
hand-built simulators — unit tests poking at model internals between
events — keep exact event-by-event execution unless they opt in.

Participant protocol (duck-typed)
---------------------------------
``rt_state() -> dict[str, int]``
    Integer-valued statistics snapshot with a *stable key set*.
``rt_check(delta: dict[str, int]) -> bool``
    True iff the per-round delta is legal to linearly extrapolate
    (every non-zero key is a plain monotonic statistic).
``rt_advance(delta: dict[str, int], k: int) -> None``
    Apply ``k`` rounds' worth of ``delta`` to the model state.
``rt_fingerprint(boundary: int, round_len: int) -> tuple | None``
    *(optional, quasi-periodic only)* JSON-safe tuple of the hidden
    state that must match exactly for a compiled round to be replayed
    at this boundary (queue occupancy, freshness ages, value-driven
    mode bits — including look-ahead over the round when behaviour can
    change mid-round).  ``None`` vetoes the boundary entirely: the
    round runs live and is not recorded.  **Invariance contract**: a
    replay of ``k`` rounds re-verifies the fingerprint only at entry,
    so a participant's fingerprint must be invariant under its own
    round delta (``rt_advance(delta, 1)`` at ``B`` must reproduce the
    fingerprint at ``B + round_len``) — or the participant must bound
    the span via ``rt_headroom``.
``rt_headroom(boundary: int, round_len: int) -> int | None``
    *(optional, quasi-periodic only)* Upper bound on the number of
    whole rounds from ``boundary`` over which the participant's
    behaviour is guaranteed phase-repeating (None = unbounded).  Used
    by model-driven participants whose behaviour changes at known
    future instants (scenario plan transitions, freshness expiry): a
    replay never extrapolates past the bound, and a bound of 0 forces
    the round to run live.
"""

from __future__ import annotations

import hashlib
import json
import math
from collections.abc import Callable
from typing import TYPE_CHECKING, Any

import numpy as np

from .trace import CounterSink, TraceRecord

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulator

__all__ = ["RoundTemplateEngine", "STRIDE_KEYS", "WARMUP", "MAX_BACKOFF",
           "ENGINE_VERSION"]

#: Trace-detail keys allowed to advance by a constant integer stride per
#: round (everything else must be bit-identical between rounds).
STRIDE_KEYS = ("cycle", "nominal")

#: Rounds skipped after activation/reset before strict recording begins,
#: so start-up transients (first sync round, membership settling) never
#: land in a template.
WARMUP = 2

#: Ceiling for the exponential strict-recording back-off, in rounds.
MAX_BACKOFF = 64

#: Template wire-format / semantics version.  Bumped whenever the
#: compiled-template shape or replay semantics change; the persistent
#: store keys on it so stale files can never be misread.
ENGINE_VERSION = 2

_IDLE, _REC1, _REC2, _ARMED = 0, 1, 2, 3


def _canon(value: Any) -> Any:
    """Recursively turn JSON lists back into tuples (bank keys and
    fingerprints round-trip through JSON as lists)."""
    if isinstance(value, list):
        return tuple(_canon(v) for v in value)
    return value


class RoundTemplateEngine:
    """Round-template compiler and fast-forward executor for one simulator."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._active = False
        self._quasi = False
        self._round_len = 0
        self._cycle_periods: list[int] = []
        self._label_periods: list[int] = []
        self._participants: list[Any] = []
        self._dynamics: list[tuple[str, Any]] = []
        self._labels: set[str] = set()
        self._sources: set[str] = set()
        self._clock_sources: set[str] = set()
        self._parts_cache: list[Any] | None = None
        self._hooks_cache: tuple[list[Any], list[Any]] | None = None
        self._state = _IDLE
        self._boundary = 0
        self._skip = WARMUP
        self._backoff = 1
        self._snap: dict | None = None
        self._first_delta: dict | None = None
        self._first_records: list[TraceRecord] | None = None
        self._capture: list[TraceRecord] = []
        self._capture_listener = self._capture.append
        self._unsub: Callable[[], None] | None = None
        self._qp_capture_wanted = False
        self._template: dict | None = None
        # quasi-periodic bank -------------------------------------------
        self._bank: dict[tuple, dict] = {}
        self._cands: dict[tuple, dict] = {}
        self._qp_prev: tuple | None = None
        self._pending_bank: dict | None = None
        self._loaded_strict: dict | None = None
        self._dirty = False
        # statistics ----------------------------------------------------
        self.rounds_replayed = 0
        self.replays = 0
        self.recordings = 0
        self.failed_recordings = 0
        self.punctures = 0
        self.templates_loaded = 0
        self.template_load_failures = 0

    # ------------------------------------------------------------------
    # configuration & registration
    # ------------------------------------------------------------------
    def activate(self, quasi_periodic: bool = False) -> None:
        """Enable the fast path (dormant by default — see module docs).

        ``quasi_periodic=True`` selects the extended eligibility mode:
        dynamic participants are fingerprinted instead of blocking, and
        the round length folds only cluster cycles (not label periods).
        """
        self._active = True
        if quasi_periodic != self._quasi:
            self._quasi = quasi_periodic
            self._touch_config()

    def deactivate(self) -> None:
        self._active = False
        self._qp_capture_wanted = False
        self._reset()

    @property
    def active(self) -> bool:
        return self._active

    @property
    def quasi_periodic(self) -> bool:
        return self._quasi

    @property
    def engaged(self) -> bool:
        """Could the fast path run right now (active, no blocking
        interleaving sources for the current mode)?"""
        return self._active and not self._blockers()

    @property
    def next_boundary(self) -> int:
        return self._boundary

    @property
    def round_length(self) -> int:
        return self._round_len

    @property
    def bank_dirty(self) -> bool:
        """True iff this run compiled at least one new template."""
        return self._dirty

    def _blockers(self) -> set[str]:
        """Names blocking the fast path in the current mode."""
        if self._quasi:
            return self._sources
        blockers = self._sources | self._clock_sources
        for name, _obj in self._dynamics:
            blockers.add(name)
        return blockers

    @property
    def _eff_parts(self) -> list[Any]:
        """Participants in delta order: explicit registrations first,
        then dynamic participants in registration order."""
        parts = self._parts_cache
        if parts is None:
            parts = list(self._participants)
            for _name, obj in self._dynamics:
                if all(existing is not obj for existing in parts):
                    parts.append(obj)
            self._parts_cache = parts
        return parts

    @property
    def _part_hooks(self) -> tuple[list[Any], list[Any]]:
        """Bound ``rt_fingerprint`` / ``rt_headroom`` methods of every
        participant that has one, cached alongside :attr:`_eff_parts`
        (the getattr probe per participant per boundary is measurable
        on hot runs)."""
        hooks = self._hooks_cache
        if hooks is None:
            parts = self._eff_parts
            fps = [fn for fn in (getattr(p, "rt_fingerprint", None)
                                 for p in parts) if fn is not None]
            hrs = [fn for fn in (getattr(p, "rt_headroom", None)
                                 for p in parts) if fn is not None]
            hooks = self._hooks_cache = (fps, hrs)
        return hooks

    def register_cluster(self, cluster: Any) -> None:
        """Fold one TT cluster's round into the template domain.

        Registers the cluster's cycle length, every controller's slot and
        cycle-end event labels, and the controllers, bus, and guardian as
        participants.  A controller on an imperfect (drifting) clock
        blocks the strict mode (its clock state mutates every sync
        round, which linear extrapolation cannot reproduce); in
        quasi-periodic mode the controller's clock-phase fingerprint
        decides round by round instead.
        """
        self._cycle_periods.append(cluster.schedule.cycle_length)
        for ctrl in cluster.controllers.values():
            self._labels.add(f"{ctrl.name}.cycle_end")
            for slot, _offset in ctrl._own_slots:
                self._labels.add(f"{ctrl.name}.slot{slot.slot_id}")
            self._participants.append(ctrl)
            if not ctrl.clock._perfect:
                self._clock_sources.add(f"clock.{ctrl.component}")
        self._participants.append(cluster.bus)
        self._participants.append(cluster.guardian)
        self._touch_config()

    def register_labels(self, labels: Any, period: int | None = None) -> None:
        """Declare event labels as template-covered; ``period`` (if any)
        is folded into the strict round length (quasi-periodic rounds
        fold cluster cycles only)."""
        self._labels.update(labels)
        if period is not None and period > 0:
            self._label_periods.append(period)
        self._touch_config()

    def register_participant(self, obj: Any) -> None:
        """Register an object implementing the participant protocol."""
        if all(existing is not obj for existing in self._participants):
            self._participants.append(obj)
        self._touch_config()

    def register_dynamic(self, name: str, obj: Any) -> None:
        """Register an inherently event-triggered subsystem (ET virtual
        network, gateway).  Blocks the strict mode like an interleaving
        source; participates (delta-checked + fingerprinted) in
        quasi-periodic mode."""
        if all(existing is not obj for _n, existing in self._dynamics):
            self._dynamics.append((name, obj))
        self._touch_config()

    def add_interleaving_source(self, name: str) -> None:
        """Permanently disable the fast path for this simulator (a true
        unknown the engine cannot model in any mode)."""
        self._sources.add(name)
        self._reset()

    def puncture(self) -> None:
        """Drop every compiled template and restart recording (called at
        the instant the model's dynamics change, e.g. fault injection).
        The whole bank is dropped, not just the current template: a
        post-fault steady state may collide with a pre-fault bank key,
        and a stale hit would replay the wrong deltas."""
        self._reset()
        self.punctures += 1

    def _recompute_round_len(self) -> None:
        periods = list(self._cycle_periods)
        if not (self._quasi and periods):
            periods += self._label_periods
        length = 0
        for period in periods:
            length = math.lcm(length, period) if length else period
        self._round_len = length

    def _touch_config(self) -> None:
        """Registration changed mid-run: drop state, re-derive boundary."""
        self._parts_cache = None
        self._hooks_cache = None
        self._recompute_round_len()
        self._reset()
        if self._round_len > 0:
            self._boundary = (self.sim._now // self._round_len + 1) * self._round_len

    def _reset(self) -> None:
        self._abort_capture()
        self._capture.clear()
        self._template = None
        self._snap = None
        self._first_delta = None
        self._first_records = None
        self._state = _IDLE
        self._skip = WARMUP
        self._backoff = 1
        self._bank.clear()
        self._cands.clear()
        self._qp_prev = None
        self._loaded_strict = None
        self._ensure_capture()

    def _abort_capture(self) -> None:
        if self._unsub is not None:
            self._unsub()
            self._unsub = None

    def _ensure_capture(self) -> None:
        """Keep the quasi-periodic record capture subscribed across
        resets; without it, every template compiled after a puncture
        would pair empty record lists and replay record-less rounds."""
        if self._qp_capture_wanted and self._unsub is None:
            self._unsub = self.sim.trace.subscribe(self._capture_listener)

    # ------------------------------------------------------------------
    # persistent template store
    # ------------------------------------------------------------------
    def load_bank(self, data: dict | None) -> None:
        """Stash a previously dumped template bank; it is validated and
        materialized at the next :meth:`begin` (registration must be
        complete before the bank can be checked against it)."""
        self._pending_bank = data

    def _labels_digest(self) -> str:
        payload = json.dumps(sorted(self._labels))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def _strip(self, tpl: dict) -> dict:
        return {k: v for k, v in tpl.items() if not k.startswith("_")}

    def dump_bank(self) -> dict | None:
        """JSON-able snapshot of every compiled template (None if there
        is nothing worth persisting)."""
        strict_tpl = None
        if not self._quasi and self._state == _ARMED and self._template:
            strict_tpl = self._strip(self._template)
        if not self._bank and strict_tpl is None:
            return None
        entries = []
        for key in sorted(self._bank, key=repr):
            entries.append({"key": [key[0], key[1]],
                            "tpl": self._strip(self._bank[key])})
        return {
            "version": ENGINE_VERSION,
            "mode": "qp" if self._quasi else "strict",
            "round_len": self._round_len,
            "labels": self._labels_digest(),
            "parts": len(self._eff_parts),
            "strict_tpl": strict_tpl,
            "templates": entries,
        }

    def _canon_tpl(self, raw: dict) -> dict:
        protos = tuple(
            (int(nrel), str(cat), str(src), dict(detail),
             tuple((str(k), v, int(s)) for k, v, s in strides))
            for nrel, cat, src, detail, strides in raw["protos"]
        )
        tpl = {
            "protos": protos,
            "ticks": [{str(c): int(n) for c, n in d.items()}
                      for d in raw["ticks"]],
            "counters": {str(n): int(v) for n, v in raw["counters"].items()},
            "hists": {str(n): (int(dc), int(dtot),
                               tuple((int(i), int(db)) for i, db in bd))
                      for n, (dc, dtot, bd) in raw["hists"].items()},
            "events": int(raw["events"]),
            "parts": [{str(k): int(v) for k, v in d.items()}
                      for d in raw["parts"]],
            "mbase": int(raw["mbase"]),
            "uniform": None if raw["uniform"] is None else int(raw["uniform"]),
            "strides": tuple(int(s) for s in raw["strides"]),
        }
        if raw.get("sig") is not None:
            tpl["sig"] = tuple((int(r), int(p), str(lb))
                               for r, p, lb in raw["sig"])
        return tpl

    def _materialize_bank(self) -> None:
        data = self._pending_bank
        # One-shot: a puncture drops loaded templates on purpose (their
        # keys may collide with post-fault state), so a later run_until
        # must not quietly resurrect the same bank.
        self._pending_bank = None
        if data is None:
            return
        if not isinstance(data, dict):
            self.template_load_failures += 1
            return
        try:
            if data.get("version") != ENGINE_VERSION:
                raise ValueError("engine version mismatch")
            if data.get("mode") != ("qp" if self._quasi else "strict"):
                raise ValueError("mode mismatch")
            if data.get("round_len") != self._round_len:
                raise ValueError("round length mismatch")
            if data.get("labels") != self._labels_digest():
                raise ValueError("label set mismatch")
            if data.get("parts") != len(self._eff_parts):
                raise ValueError("participant count mismatch")
            bank: dict[tuple, dict] = {}
            count = 0
            for entry in data.get("templates", ()):
                norm, fp = entry["key"]
                key = (_canon(norm), _canon(fp))
                bank[key] = self._canon_tpl(entry["tpl"])
                count += 1
            loaded_strict = None
            strict_raw = data.get("strict_tpl")
            if strict_raw is not None and not self._quasi:
                loaded_strict = self._canon_tpl(strict_raw)
                if loaded_strict.get("sig") is None:
                    raise ValueError("strict template without signature")
                count += 1
        except Exception:
            self.template_load_failures += 1
            return
        self._bank.update(bank)
        self._loaded_strict = loaded_strict
        self.templates_loaded = count

    # ------------------------------------------------------------------
    # kernel entry points
    # ------------------------------------------------------------------
    def begin(self, t: int) -> "RoundTemplateEngine | None":
        """Arm the engine for one ``run_until(t)`` call; None = stay off.

        Recording always restarts from scratch: model state may have been
        mutated between runs (tests crash controllers, tweak queues), so
        an in-process template from a previous run is never trusted.  A
        *persisted* bank (``load_bank``) is the one exception: it is
        validated against the freshly built registration and its
        templates remain signature/fingerprint-verified before every
        replay.
        """
        if not self._active or self._round_len <= 0 or self._blockers():
            return None
        self._reset()
        sim = self.sim
        if not sim._runtime.supports_round_templates:
            # Bulk round replay is only sound when nothing outside the
            # event queue observes intermediate instants; paced/asyncio
            # runtimes gate every event against an external clock.
            return None
        if sim.flows.enabled or sim._profiling:
            return None
        if sim.trace._listeners:
            # A live listener observes records one by one; bulk replay
            # would change what it sees relative to model state.
            return None
        self._materialize_bank()
        # Quasi-periodic recording is continuous: every live round is a
        # potential template occurrence, so capture stays subscribed for
        # the whole run (cleared at each boundary) — and must survive
        # mid-run resets (punctures, registrations), which re-establish
        # it via ``_ensure_capture``.
        self._qp_capture_wanted = self._quasi and sim.trace.wants_records
        self._ensure_capture()
        self._boundary = (sim._now // self._round_len + 1) * self._round_len
        return self

    def on_boundary(self, t: int) -> None:
        """Called by the kernel with the queue drained up to (excluding)
        ``next_boundary``; advances the recording machinery and/or
        fast-forwards.  Always either advances the boundary or replays,
        so kernel progress is guaranteed."""
        if self._quasi:
            self._qp_on_boundary(t)
            return
        B = self._boundary
        L = self._round_len
        state = self._state
        if state == _ARMED:
            self._replay(B, t)
            return
        if state == _IDLE:
            if self._loaded_strict is not None:
                sig = self._signature(B)
                if sig is not None and sig[0] == self._loaded_strict["sig"]:
                    # Persisted-template warm start: skip the warm-up and
                    # the two-round recording entirely.
                    self._template = self._loaded_strict
                    self._loaded_strict = None
                    self._state = _ARMED
                    self._backoff = 1
                    self._replay(B, t)
                    return
            if self._skip > 0:
                self._skip -= 1
                self._boundary = B + L
                return
            snap = self._snapshot(B)
            if snap is None:
                self._fail()
            else:
                self._snap = snap
                self._capture.clear()
                self._unsub = self.sim.trace.subscribe(self._capture_listener)
                self._state = _REC1
            self._boundary = B + L
            return
        # _REC1 / _REC2: one more recorded round just completed
        snap = self._snapshot(B)
        records = list(self._capture)
        self._capture.clear()
        delta = (self._delta(self._snap, snap)
                 if snap is not None else None)
        if delta is None:
            self._abort_capture()
            self._fail()
            self._boundary = B + L
            return
        if state == _REC1:
            self._first_delta = delta
            self._first_records = records
            self._snap = snap
            self._state = _REC2
            self._boundary = B + L
            return
        # _REC2: two consecutive rounds observed — compile and arm
        self._abort_capture()
        template = self._compile(self._first_delta, self._first_records,
                                 delta, records, B)
        self._snap = None
        self._first_delta = None
        self._first_records = None
        if template is None:
            self._fail()
            self._boundary = B + L
            return
        self._template = template
        self._state = _ARMED
        self._backoff = 1
        self.recordings += 1
        self._dirty = True
        self._replay(B, t)

    # ------------------------------------------------------------------
    # shared observation machinery
    # ------------------------------------------------------------------
    def _fail(self) -> None:
        self._state = _IDLE
        self._snap = None
        self._first_delta = None
        self._first_records = None
        self._skip = self._backoff
        self._backoff = min(self._backoff * 2, MAX_BACKOFF)
        self.failed_recordings += 1

    def _scan(self, B: int) -> tuple[tuple, int | None] | None:
        """The pending queue's shape at boundary ``B``.

        Returns ``(near, far_min)`` where ``near`` is the sorted tuple
        of ``(time, priority, label)`` for every live event inside the
        next round and ``far_min`` is the earliest live event at or
        beyond the round's end (None if none) — or None if any in-round
        event carries an unregistered label.
        """
        horizon = B + self._round_len
        labels = self._labels
        near: list[tuple[int, int, int, str]] = []
        far_min: int | None = None
        for tm, pr, sq, ev in self.sim._queue._heap:
            if ev.cancelled:
                continue
            if tm >= horizon:
                if far_min is None or tm < far_min:
                    far_min = tm
            elif ev.label not in labels:
                return None
            else:
                near.append((tm, pr, sq, ev.label))
        near.sort()
        return tuple((tm, pr, label) for tm, pr, _sq, label in near), far_min

    def _signature(self, B: int) -> tuple[tuple, int | None] | None:
        """Strict-mode view of :meth:`_scan`: boundary-relative offsets."""
        scan = self._scan(B)
        if scan is None:
            return None
        near, far_min = scan
        return tuple((tm - B, pr, label) for tm, pr, label in near), far_min

    def _snapshot(self, B: int,
                  scan: tuple | None = None) -> dict | None:
        """Full observable-state snapshot at boundary ``B`` (None if the
        queue shape or sink configuration is not template-compatible)."""
        if scan is None:
            scan = self._scan(B)
            if scan is None:
                return None
        near, far_min = scan
        sim = self.sim
        tick_sinks = tuple(sim.trace._tick_sinks)
        for sink in tick_sinks:
            if not isinstance(sink, CounterSink):
                return None  # unknown tick semantics — cannot bulk-apply
        return {
            "sig": (tuple((tm - B, pr, label) for tm, pr, label in near),
                    far_min),
            "near": near,
            "ticks": tick_sinks,
            "tick_counts": [dict(s.counts) for s in tick_sinks],
            "counters": {name: c.value
                         for name, c in sim.metrics._counters.items()},
            "hists": {name: (h.count, h.total, h.minimum, h.maximum,
                             tuple(h.buckets))
                      for name, h in sim.metrics._histograms.items()},
            "events": sim.events_executed,
            "parts": [p.rt_state() for p in self._eff_parts],
        }

    def _delta(self, prev: dict | None, cur: dict,
               require_sig_match: bool = True) -> dict | None:
        """Per-round delta between two boundary snapshots, or None if the
        round is not linearly replayable.  ``require_sig_match`` enforces
        the strict-mode invariant that the round exits looking exactly
        like it entered; the quasi-periodic bank keys rounds by entry
        signature instead."""
        if prev is None:
            return None
        if require_sig_match and prev["sig"][0] != cur["sig"][0]:
            return None
        pt, ct = prev["ticks"], cur["ticks"]
        if len(pt) != len(ct) or any(a is not b for a, b in zip(pt, ct)):
            return None
        tick_deltas = []
        for pc, cc in zip(prev["tick_counts"], cur["tick_counts"]):
            tick_deltas.append({cat: n - pc.get(cat, 0)
                                for cat, n in cc.items()})
        pc_counters = prev["counters"]
        if tuple(pc_counters) != tuple(cur["counters"]):
            return None  # a counter was created mid-round
        counter_deltas = {name: v - pc_counters[name]
                          for name, v in cur["counters"].items()}
        ph = prev["hists"]
        hist_deltas: dict[str, tuple[int, int, tuple]] = {}
        for name, (hc, htot, hmin, hmax, hbuckets) in cur["hists"].items():
            p = ph.get(name)
            if p is None:
                return None  # histogram created mid-round
            if p[2] != hmin or p[3] != hmax:
                return None  # min/max moved — not linearly replayable
            bucket_delta = tuple(
                (i, b - pb) for i, (b, pb) in enumerate(zip(hbuckets, p[4]))
                if b != pb
            )
            hist_deltas[name] = (hc - p[0], htot - p[1], bucket_delta)
        part_deltas: list[dict[str, int]] = []
        for p_prev, p_cur, part in zip(prev["parts"], cur["parts"],
                                       self._eff_parts):
            if tuple(p_prev) != tuple(p_cur):
                return None  # participant key set changed
            d = {key: v - p_prev[key] for key, v in p_cur.items()}
            if not part.rt_check(d):
                return None
            part_deltas.append(d)
        return {
            "ticks": tick_deltas,
            "counters": counter_deltas,
            "hists": hist_deltas,
            "events": cur["events"] - prev["events"],
            "parts": part_deltas,
        }

    def _make_tpl(self, delta: dict, protos: tuple, mbase: int,
                  uniform: int | None, strides: tuple) -> dict:
        return {
            "protos": protos,
            "ticks": delta["ticks"],
            "counters": delta["counters"],
            "hists": delta["hists"],
            "events": delta["events"],
            "parts": delta["parts"],
            "mbase": mbase,
            "uniform": uniform,
            "strides": strides,
        }

    # ------------------------------------------------------------------
    # strict compilation (two identical consecutive rounds)
    # ------------------------------------------------------------------
    def _compile(self, d1: dict | None, r1s: list | None,
                 d2: dict, r2s: list, B2: int) -> dict | None:
        """Compile two equal consecutive round deltas into a template.

        ``d2``'s round spans ``[B2 - L, B2)``; it becomes the template's
        base round.  Record prototypes pair off the two rounds' records:
        equal category/source/detail (with an optional integer stride on
        :data:`STRIDE_KEYS`) at equal in-round offsets.
        """
        if d1 is None or r1s is None:
            return None
        if (d1["ticks"] != d2["ticks"] or d1["counters"] != d2["counters"]
                or d1["hists"] != d2["hists"] or d1["events"] != d2["events"]
                or d1["parts"] != d2["parts"]):
            return None
        if len(r1s) != len(r2s):
            return None
        L = self._round_len
        base = B2 - L
        protos = self._pair_records(r1s, r2s, base - L, 0, base, 0, 1)
        if protos is None:
            return None
        tpl = self._make_tpl(d2, protos, base, L, ())
        tpl["sig"] = self._snap["sig"][0] if self._snap else None
        return tpl

    def _pair_records(self, r1s: list, r2s: list, B1: int, phi1: int,
                      B2: int, phi2: int, n: int) -> tuple | None:
        """Pair two occurrences' record lists into prototypes.

        Offsets are compared relative to each occurrence's boundary and
        phase; whitelisted detail keys may advance by an integer stride
        per round (``n`` = rounds between the occurrences).
        """
        L = self._round_len
        protos: list[tuple[int, str, str, dict, tuple]] = []
        for r1, r2 in zip(r1s, r2s):
            if r1.category != r2.category or r1.source != r2.source:
                return None
            nrel = r2.time - B2 - phi2
            if nrel != r1.time - B1 - phi1:
                return None
            if not 0 <= nrel < L:
                return None
            dd1, dd2 = r1.detail, r2.detail
            if tuple(sorted(dd1)) != tuple(sorted(dd2)):
                return None
            strides: list[tuple[str, int, int]] = []
            for key, v2 in dd2.items():
                v1 = dd1[key]
                if v1 == v2:
                    continue
                if (key in STRIDE_KEYS and isinstance(v1, int)
                        and isinstance(v2, int) and (v2 - v1) % n == 0):
                    strides.append((key, v2, (v2 - v1) // n))
                else:
                    return None
            protos.append((nrel, r1.category, r1.source, dd2, tuple(strides)))
        return tuple(protos)

    # ------------------------------------------------------------------
    # quasi-periodic bank
    # ------------------------------------------------------------------
    def _fingerprint(self, B: int) -> tuple | None:
        """Participant fingerprint tuple at boundary ``B`` (None vetoes
        the boundary: the round runs live and is never recorded)."""
        L = self._round_len
        fps = []
        for fn in self._part_hooks[0]:
            v = fn(B, L)
            if v is None:
                return None
            fps.append(_canon(v))
        return tuple(fps)

    def _qp_key(self, B: int, near: tuple) -> tuple | None:
        fp = self._fingerprint(B)
        if fp is None:
            return None
        phi = near[0][0] - B if near else 0
        norm = tuple((tm - B - phi, pr, label) for tm, pr, label in near)
        return (norm, fp)

    def _successor_strides(self, near: tuple) -> list[int] | None:
        """Per-event heap advance for one replayed round, measured at the
        recorded round's *exit* boundary: each entry event's pending
        successor (same priority and label) minus its entry time.  None
        if any entry has no successor (one-shot chains) or ``(priority,
        label)`` is ambiguous."""
        want: dict[tuple[int, str], int] = {}
        for tm, pr, label in near:
            k = (pr, label)
            if k in want:
                return None  # ambiguous chain identity
            want[k] = tm
        succ: dict[tuple[int, str], int] = {}
        for tm2, pr2, _sq, ev in self.sim._queue._heap:
            if ev.cancelled:
                continue
            k = (pr2, ev.label)
            base = want.get(k)
            if base is None or tm2 <= base:
                continue
            cur = succ.get(k)
            if cur is None or tm2 < cur:
                succ[k] = tm2
        strides = []
        for tm, pr, label in near:
            s = succ.get((pr, label))
            if s is None:
                return None
            strides.append(s - tm)
        return strides

    def _qp_on_boundary(self, t: int) -> None:
        B = self._boundary
        L = self._round_len
        scan = self._scan(B)
        snap: dict | None = None
        prev = self._qp_prev
        self._qp_prev = None
        if prev is not None and scan is not None:
            key, psnap, entry_B = prev
            snap = self._snapshot(B, scan)
            if snap is not None:
                records = list(self._capture)
                delta = self._delta(psnap, snap, require_sig_match=False)
                if delta is not None:
                    self._qp_compile(key, psnap, delta, records, entry_B)
                else:
                    self.failed_recordings += 1
        self._capture.clear()
        if scan is None:
            self._boundary = B + L
            return
        near, far_min = scan
        key = self._qp_key(B, near)
        if key is None:
            self._boundary = B + L
            return
        tpl = self._bank.get(key)
        if tpl is not None:
            k = self._qp_replay(tpl, near, far_min, B, t)
            if k:
                self.rounds_replayed += k
                self.replays += 1
                self._boundary = B + k * L
                return
            # No whole-round headroom: run this round live (the
            # template stays banked for the next occurrence).
            self._boundary = B + L
            return
        if snap is None:
            snap = self._snapshot(B, scan)
        if snap is not None:
            self._qp_prev = (key, snap, B)
        self._boundary = B + L

    def _qp_compile(self, key: tuple, psnap: dict, delta: dict,
                    records: list, entry_B: int) -> None:
        """One fully observed round for ``key`` just completed (entry at
        ``entry_B``, exit now): compile it, or pair it with an earlier
        occurrence when record prototypes are needed."""
        L = self._round_len
        near = psnap["near"]
        strides = self._successor_strides(near)
        if strides is None:
            self.failed_recordings += 1
            return
        if strides:
            s0 = strides[0]
            uniform: int | None = s0 if all(s == s0 for s in strides) else None
        else:
            uniform = L
        phi = near[0][0] - entry_B if near else 0
        if not self.sim.trace.wants_records:
            # Counter-mode run: nothing to prototype — one observed
            # round whose delta passed every linearity check compiles
            # directly (the fingerprint guards hidden-state reuse).
            self._bank[key] = self._make_tpl(delta, (), entry_B, uniform,
                                             tuple(strides))
            self.recordings += 1
            self._dirty = True
            return
        cur = {"delta": delta, "records": records, "B": entry_B,
               "phi": phi, "uniform": uniform, "strides": list(strides)}
        cand = self._cands.get(key)
        if cand is None:
            self._cands[key] = cur
            return
        tpl = self._qp_pair(cand, cur)
        if tpl is None:
            self._cands[key] = cur  # drift toward the newer occurrence
            self.failed_recordings += 1
            return
        self._bank[key] = tpl
        del self._cands[key]
        self.recordings += 1
        self._dirty = True

    def _qp_pair(self, cand: dict, cur: dict) -> dict | None:
        """Pair two occurrences of the same bank key into a template."""
        d1, d2 = cand["delta"], cur["delta"]
        if (d1["ticks"] != d2["ticks"] or d1["counters"] != d2["counters"]
                or d1["hists"] != d2["hists"] or d1["events"] != d2["events"]
                or d1["parts"] != d2["parts"]):
            return None
        if (cand["uniform"] != cur["uniform"]
                or cand["strides"] != cur["strides"]):
            return None
        r1s, r2s = cand["records"], cur["records"]
        if len(r1s) != len(r2s):
            return None
        n = (cur["B"] - cand["B"]) // self._round_len
        if n < 1:
            return None
        protos = self._pair_records(r1s, r2s, cand["B"], cand["phi"],
                                    cur["B"], cur["phi"], n)
        if protos is None:
            return None
        u = cur["uniform"]
        if (protos and u is not None and u < self._round_len
                and max(p[0] for p in protos) >= u):
            # Shrinking-phase chains (s < L) whose records span past the
            # per-round stride would interleave across replayed rounds;
            # bulk emission could not keep them time-ordered.
            return None
        return self._make_tpl(d2, protos, cur["B"], cur["uniform"],
                              tuple(cur["strides"]))

    def _qp_replay(self, tpl: dict, near: tuple, far_min: int | None,
                   B: int, t: int) -> int:
        L = self._round_len
        k = (t - B) // L
        if far_min is not None:
            k = min(k, (far_min - B - 1) // L)
        if k < 1:
            return 0
        phi = near[0][0] - B if near else 0
        s = tpl["uniform"]
        if s is None:
            k = 1
        elif s > L:
            # Drifting chains gain (s - L) of phase per round; stop
            # before the earliest event would slip past the round end.
            k = min(k, (L - 1 - phi) // (s - L))
        elif s < L:
            # Phase shrinks by (L - s) per round; stop before an event
            # would fall behind its boundary (double-fire in one round).
            k = min(k, phi // (L - s))
        if k < 1:
            return 0
        # Model-driven participants bound how far extrapolation may run
        # past their last fingerprint check (rt_headroom); 0 forces the
        # round to run live.
        for fn in self._part_hooks[1]:
            h = fn(B, L)
            if h is not None and h < k:
                k = h
                if k < 1:
                    return 0
        self._apply(tpl, B, phi, k, near)
        return k

    # ------------------------------------------------------------------
    # replay (shared by both modes)
    # ------------------------------------------------------------------
    def _replay(self, B: int, t: int) -> None:
        L = self._round_len
        tpl = self._template
        sig = self._signature(B)
        if tpl is None or sig is None or sig[0] != tpl["sig"]:
            # The queue no longer matches the compiled round — invalidate.
            self._template = None
            self._fail()
            self._boundary = B + L
            return
        far_min = sig[1]
        k = (t - B) // L
        if far_min is not None:
            k = min(k, (far_min - B - 1) // L)
        if k < 1:
            # Not a whole template-safe round of headroom: run it live
            # (the template stays armed for the next boundary).
            self._boundary = B + L
            return
        self._apply(tpl, B, 0, k, None)
        self._boundary = B + k * L
        self.rounds_replayed += k
        self.replays += 1

    def _prep(self, tpl: dict) -> dict:
        """Preallocate the numpy buffers a template's bulk apply uses
        (cached on the template; never serialized)."""
        counters = tpl["counters"]
        cnames = tuple(counters)
        npd = {
            "nrel": np.asarray([p[0] for p in tpl["protos"]], dtype=np.int64),
            "cnames": cnames,
            "cdelta": np.asarray([counters[n] for n in cnames],
                                 dtype=np.int64),
            "hists": [
                (name, dc, dtot,
                 np.asarray([i for i, _ in bucket_delta], dtype=np.int64),
                 np.asarray([db for _, db in bucket_delta], dtype=np.int64))
                for name, (dc, dtot, bucket_delta) in tpl["hists"].items()
            ],
            # Participants whose delta is all-zero for this template
            # need no rt_advance call (every implementation is a strict
            # ``+= delta * k`` accumulator); precompute the survivors.
            # Registration changes drop the whole bank, so the pairing
            # with _eff_parts cannot go stale while "_np" lives.
            "padv": [
                (part, delta)
                for part, delta in zip(self._eff_parts, tpl["parts"])
                if any(delta.values())
            ],
        }
        tpl["_np"] = npd
        return npd

    def _apply(self, tpl: dict, B: int, phi: int, k: int,
               near: tuple | None) -> None:
        """Apply ``k`` rounds' worth of ``tpl`` starting at ``B`` with
        the observed boundary phase ``phi``."""
        from .kernel import PeriodicTask  # local import: kernel imports us

        sim = self.sim
        L = self._round_len
        trace = sim.trace
        npd = tpl.get("_np")
        if npd is None:
            npd = self._prep(tpl)

        # 1. trace records, byte-for-byte: the timestamp grid for all
        #    k rounds is one numpy outer sum (re-timestamped against the
        #    current phase), strided details re-derived exactly as live
        #    execution would have produced them.
        record_sinks = trace._record_sinks if trace.enabled else ()
        protos = tpl["protos"]
        if record_sinks and protos:
            # Each replayed round's records sit at its chains' phase:
            # uniform chains advance by the observed successor stride
            # per round (== L for perfectly periodic rounds, != L for
            # drifting producers), so the per-round base advances by
            # that stride, not by the round length.
            step = tpl["uniform"] if tpl["uniform"] is not None else L
            bases = B + phi + step * np.arange(k, dtype=np.int64)
            times = np.add.outer(bases, npd["nrel"]).tolist()
            m0 = (B - tpl["mbase"]) // L
            for j in range(k):
                row = times[j]
                m = m0 + j
                for i, (_nrel, category, source, detail,
                        strides) in enumerate(protos):
                    if strides:
                        detail = dict(detail)
                        for key, bval, stride in strides:
                            detail[key] = bval + stride * m
                    rec = TraceRecord(time=row[i], category=category,
                                      source=source, detail=detail)
                    for sink in record_sinks:
                        sink.emit(rec)

        # 2. tick counts (counter-mode sinks)
        if trace.enabled:
            for sink, dmap in zip(trace._tick_sinks, tpl["ticks"]):
                for cat, d in dmap.items():
                    if d:
                        sink.tick(cat, d * k)

        # 3. metrics (numpy delta vector + histogram bulk apply)
        if npd["cnames"]:
            vals = (npd["cdelta"] * k).tolist()
            counters = sim.metrics._counters
            for name, dv in zip(npd["cnames"], vals):
                if dv:
                    counters[name].value += dv
        hists = sim.metrics._histograms
        for name, dc, dtot, idx, db in npd["hists"]:
            if dc or dtot or idx.size:
                hists[name].bulk_apply(dc, dtot, idx, db, k)

        # 4. kernel accounting
        sim.events_executed += tpl["events"] * k

        # 5. participants (controllers, buses, guardians, VNs, gateways)
        for part, delta in npd["padv"]:
            part.rt_advance(delta, k)

        # 6. pending events advance by their observed successor strides:
        #    uniformly (one heap shift) when every chain advances by the
        #    same amount per round, per-event otherwise.
        queue = sim._queue
        horizon = B + L
        s = tpl["uniform"]
        if s is not None:
            shift = k * s
            for tm, _pr, _sq, ev in queue._heap:
                if ev.cancelled or tm >= horizon:
                    continue
                owner = getattr(ev.callback, "__self__", None)
                if isinstance(owner, PeriodicTask):
                    owner.next_time += shift
            queue.shift_span(horizon, shift)
        else:
            pending: dict[tuple[int, int, str], list[int]] = {}
            for (tm, pr, label), st in zip(near or (), tpl["strides"]):
                pending.setdefault((tm, pr, label), []).append(st * k)

            def _retime(tm: int, pr: int, ev: Any) -> int | None:
                lst = pending.get((tm, pr, ev.label))
                if not lst:
                    return None
                st = lst.pop(0)
                owner = getattr(ev.callback, "__self__", None)
                if isinstance(owner, PeriodicTask):
                    owner.next_time += st
                return tm + st

            queue.retime_span(horizon, _retime)
        # sim._now is deliberately left alone: the next executed event
        # (or the run_until tail) advances it, exactly as if the skipped
        # rounds had run.

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready engine statistics (for results and debugging)."""
        return {
            "active": self._active,
            "mode": "quasi-periodic" if self._quasi else "strict",
            "round_length_ns": self._round_len,
            "interleaving_sources": sorted(self._blockers()),
            "dynamic_sources": sorted(name for name, _obj in self._dynamics),
            "rounds_replayed": self.rounds_replayed,
            "replays": self.replays,
            "recordings": self.recordings,
            "failed_recordings": self.failed_recordings,
            "punctures": self.punctures,
            "bank_templates": len(self._bank),
            "templates_loaded": self.templates_loaded,
            "template_load_failures": self.template_load_failures,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "qp" if self._quasi else "strict"
        state = ("dormant" if not self._active
                 else "blocked" if self._blockers()
                 else ("idle", "rec1", "rec2", "armed")[self._state])
        return (f"<RoundTemplateEngine {mode}/{state} L={self._round_len} "
                f"replayed={self.rounds_replayed} bank={len(self._bank)}>")
