"""Pluggable execution runtimes for the simulation kernel.

One deterministic kernel, three notions of time:

================  ==========================================  ===========
``--runtime``     class                                       wall clock
================  ==========================================  ===========
``sim``           :class:`SimulatedRuntime` (default)         none
``realtime``      :class:`PacedRealTimeRuntime`               paced
``asyncio``       :class:`AsyncioBridgedRuntime`              event loop
================  ==========================================  ===========

See :mod:`repro.sim.runtime.base` for the interface contract.
"""

from __future__ import annotations

from ...errors import ConfigurationError
from .asyncio_bridge import AsyncioBridgedRuntime, AsyncPort
from .base import Runtime
from .paced import PacedRealTimeRuntime
from .simulated import SimulatedRuntime

__all__ = [
    "Runtime",
    "SimulatedRuntime",
    "PacedRealTimeRuntime",
    "AsyncioBridgedRuntime",
    "AsyncPort",
    "RUNTIME_NAMES",
    "make_runtime",
]

#: CLI-facing runtime names, in presentation order.
RUNTIME_NAMES = ("sim", "realtime", "asyncio")


def make_runtime(name: str, pace: float | None = None, **kw) -> Runtime:
    """Build a runtime from its CLI name.

    ``pace`` is sim-ns per wall-ns (``realtime``/``asyncio`` only;
    ``realtime`` defaults to 1.0, ``asyncio`` to unpaced).  Extra
    keyword arguments are forwarded to the runtime constructor.
    """
    if name == "sim":
        if pace is not None:
            raise ConfigurationError(
                "the simulated runtime is unpaced: --pace requires "
                "--runtime realtime or asyncio"
            )
        return SimulatedRuntime(**kw)
    if name == "realtime":
        return PacedRealTimeRuntime(pace=1.0 if pace is None else pace, **kw)
    if name == "asyncio":
        return AsyncioBridgedRuntime(pace=pace, **kw)
    raise ConfigurationError(
        f"unknown runtime {name!r} (choose from {RUNTIME_NAMES})"
    )
