"""Asyncio-bridged runtime: coroutines and subprocesses as partitions.

The simulated DECOS network stays fully deterministic in virtual time,
but the dispatch loop is driven *from inside an asyncio event loop*:
after every simulated event (configurable via ``yield_every``) control
is yielded to asyncio, so ordinary coroutines — or coroutines wrapping
``asyncio.create_subprocess_exec`` pipes — can run interleaved with the
simulation and act as software-in-the-loop partitions.

Partition coroutines talk to the simulated network through
:class:`AsyncPort`:

* ``port.deliver`` is a plain callable suitable for wiring as a job's
  ``on_message`` handler (or any delivery callback) — it enqueues the
  delivery for the coroutine side.
* ``await port.recv()`` waits for the next enqueued delivery.
* ``await port.send(vn, name, instance)`` injects an ET message into a
  virtual network and yields so the simulation can propagate it.
* ``await runtime.sleep(d)`` suspends the coroutine for ``d`` virtual
  nanoseconds (scheduled on the simulator, not the wall clock).

When ``pace`` is set the loop additionally gates virtual time against
the wall clock exactly like the paced runtime (``pace`` = sim-ns per
wall-ns); unpaced, the simulation runs as fast as the asyncio loop
allows while still yielding between events.  When the event queue goes
empty but the horizon has not been reached (partitions may still be
computing), virtual time advances in ``idle_quantum_ns`` hops so
virtual-time sleeps and timeouts keep their meaning.

Cancellation (``asyncio.CancelledError`` or KeyboardInterrupt) mid-run
flushes the simulator's trace sinks before propagating, mirroring the
CLI exit-path guarantee, and is counted in ``runtime.cancelled_runs``.

This module is sanctioned for wall-clock access in the determinism lint
(see :data:`repro.check.determinism.SANCTIONED_FILES`): bridging to a
wall-clock event loop is its entire purpose.
"""

from __future__ import annotations

import asyncio
from time import perf_counter_ns

from ...errors import ConfigurationError
from .base import Runtime

__all__ = ["AsyncioBridgedRuntime", "AsyncPort"]

#: Virtual-time hop used while the event queue is empty (1 ms): keeps
#: virtual time moving so partition-side timeouts stay meaningful.
DEFAULT_IDLE_QUANTUM_NS = 1_000_000


class AsyncPort:
    """Awaitable mailbox pairing a partition coroutine with the sim.

    Deliveries arrive via :meth:`deliver` (wired as a delivery callback
    inside the simulation) and are consumed with ``await recv()``;
    injections go the other way with ``await send(...)``.
    """

    def __init__(self, runtime: AsyncioBridgedRuntime) -> None:
        self._runtime = runtime
        self._queue: asyncio.Queue = asyncio.Queue()
        self.delivered = 0
        self.sent = 0

    # -- sim side ------------------------------------------------------
    def deliver(self, *args) -> None:
        """Delivery callback (e.g. assign to a job's ``on_message``)."""
        self.delivered += 1
        self._queue.put_nowait(args)

    # -- coroutine side ------------------------------------------------
    async def recv(self):
        """Await the next delivery; returns the callback's arg tuple."""
        return await self._queue.get()

    async def send(self, vn, name: str, instance, sender_job: str = "") -> bool:
        """Inject an ET message into ``vn`` and yield to the simulation."""
        ok = vn.send(name, instance, sender_job=sender_job)
        if ok:
            self.sent += 1
        # Yield so the dispatch loop can propagate the injection before
        # the caller awaits the response.
        await asyncio.sleep(0)
        return ok

    def pending(self) -> int:
        return self._queue.qsize()


class AsyncioBridgedRuntime(Runtime):
    """Drive the kernel from asyncio; coroutines act as partitions."""

    name = "asyncio"
    supports_round_templates = False

    def __init__(self, pace: float | None = None,
                 idle_quantum_ns: int = DEFAULT_IDLE_QUANTUM_NS,
                 yield_every: int = 1) -> None:
        if pace is not None and pace <= 0:
            raise ConfigurationError(f"pace must be positive, got {pace}")
        if idle_quantum_ns <= 0:
            raise ConfigurationError(
                f"idle quantum must be positive, got {idle_quantum_ns}"
            )
        if yield_every < 1:
            raise ConfigurationError(
                f"yield_every must be >= 1, got {yield_every}"
            )
        super().__init__()
        self.pace = pace
        self.idle_quantum_ns = idle_quantum_ns
        self.yield_every = yield_every
        self._partitions: list = []
        self._ports: list[AsyncPort] = []
        self._partition_error: BaseException | None = None
        # statistics ----------------------------------------------------
        self.yields = 0
        self.idle_hops = 0
        self.cancelled_runs = 0

    def bind(self, sim) -> None:
        super().bind(sim)
        self._m_cancelled = sim.metrics.counter("runtime.cancelled_runs")

    # ------------------------------------------------------------------
    # partition / port API
    # ------------------------------------------------------------------
    def add_partition(self, factory) -> None:
        """Register a partition: ``factory(runtime)`` must return a
        coroutine.  Partitions are spawned as tasks when the sync
        facade (:meth:`run_until`) starts its event loop, and cancelled
        when the run ends."""
        self._partitions.append(factory)

    def port(self) -> AsyncPort:
        """Create an :class:`AsyncPort` mailbox bound to this runtime."""
        p = AsyncPort(self)
        self._ports.append(p)
        return p

    async def sleep(self, d: int) -> None:
        """Suspend the calling coroutine for ``d`` virtual nanoseconds."""
        sim = self._bound()
        fut = asyncio.get_running_loop().create_future()

        def wake() -> None:
            if not fut.done():
                fut.set_result(None)

        sim.after(d, wake, label="runtime.asyncio.wake")
        await fut

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------
    async def run_until_async(self, t: int) -> None:
        """Async core: drive the kernel to ``t`` inside a running loop."""
        sim = self._bound()
        if t < sim._now:
            raise ConfigurationError(
                f"run_until({t}) is in the past (now={sim._now})"
            )
        sim._guard_reentry()
        queue = sim._queue
        step = sim.step
        anchor_wall = perf_counter_ns()
        anchor_sim = sim._now
        since_yield = 0
        try:
            while not sim._stopped:
                if self._partition_error is not None:
                    raise self._partition_error
                nxt = queue.peek_time()
                if nxt is None or nxt > t:
                    if sim._now >= t:
                        break
                    # Idle: the queue has nothing before the horizon but
                    # partitions may still be computing — hop virtual
                    # time forward and give asyncio a turn.
                    hop = min(sim._now + self.idle_quantum_ns,
                              nxt if nxt is not None else t, t)
                    sim._now = hop
                    self.idle_hops += 1
                    await self._breathe(hop, anchor_wall, anchor_sim)
                    continue
                if self.pace is not None:
                    deadline = anchor_wall + int((nxt - anchor_sim) / self.pace)
                    lag = deadline - perf_counter_ns()
                    if lag > 0:
                        await asyncio.sleep(lag / 1e9)
                step()
                since_yield += 1
                if since_yield >= self.yield_every:
                    since_yield = 0
                    self.yields += 1
                    await asyncio.sleep(0)
            if not sim._stopped and sim._now < t:
                sim._now = t
        except (asyncio.CancelledError, KeyboardInterrupt):
            self._on_cancel()
            raise
        finally:
            sim._running = False
            sim._stopped = False

    async def _breathe(self, hop_t: int, anchor_wall: int,
                       anchor_sim: int) -> None:
        """Yield during an idle hop (paced: sleep to the hop deadline)."""
        if self.pace is not None:
            deadline = anchor_wall + int((hop_t - anchor_sim) / self.pace)
            lag = deadline - perf_counter_ns()
            await asyncio.sleep(max(lag / 1e9, 0))
        else:
            await asyncio.sleep(0)

    def _on_cancel(self) -> None:
        """Mid-flight cancellation: flush trace sinks, count, propagate."""
        self.cancelled_runs += 1
        self._m_cancelled.inc()
        sim = self.sim
        if sim is not None:
            sim.trace.close()

    # ------------------------------------------------------------------
    # sync facade
    # ------------------------------------------------------------------
    def run_until(self, t: int) -> None:
        """Own an event loop: spawn registered partitions, drive the sim
        to ``t``, then cancel the partitions.  A partition that crashes
        aborts the run and its exception propagates."""
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            pass
        else:
            raise ConfigurationError(
                "an asyncio event loop is already running: await "
                "run_until_async() instead of calling run_until()"
            )
        asyncio.run(self._drive(t))

    def run(self, max_events: int | None = None) -> None:
        raise ConfigurationError(
            "the asyncio runtime has no open-ended run(): partitions need "
            "a horizon — use run_until()/run_for()"
        )

    async def _drive(self, t: int) -> None:
        self._partition_error = None
        tasks = [asyncio.ensure_future(factory(self))
                 for factory in self._partitions]

        def _observe(task: asyncio.Task) -> None:
            if task.cancelled():
                return
            exc = task.exception()
            if exc is not None and self._partition_error is None:
                self._partition_error = exc

        for task in tasks:
            task.add_done_callback(_observe)
        try:
            await self.run_until_async(t)
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "name": self.name,
            "pace": self.pace,
            "idle_quantum_ns": self.idle_quantum_ns,
            "yield_every": self.yield_every,
            "partitions": len(self._partitions),
            "ports": len(self._ports),
            "yields": self.yields,
            "idle_hops": self.idle_hops,
            "injected": sum(p.sent for p in self._ports),
            "delivered": sum(p.delivered for p in self._ports),
            "cancelled_runs": self.cancelled_runs,
        }
