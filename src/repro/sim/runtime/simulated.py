"""The simulated runtime: virtual time at maximum speed (the default).

This is the kernel's historical dispatch loop, factored out of
:class:`~repro.sim.kernel.Simulator` unchanged: tuple-heap batched
draining via :meth:`~repro.sim.events.EventQueue.pop_ready`, the
same-instant priority-preemption guard, and round-template
fast-forwarding at round boundaries.  Byte-for-byte trace parity with
the pre-refactor kernel is pinned by the golden-digest tests — this
module must stay a pure code move, not a behaviour change.
"""

from __future__ import annotations

from .base import Runtime

__all__ = ["SimulatedRuntime"]


class SimulatedRuntime(Runtime):
    """Advance virtual time as fast as the host executes callbacks."""

    name = "sim"
    #: Bulk round replay is only sound when nothing outside the event
    #: queue observes intermediate instants — true exactly here.
    supports_round_templates = True

    def run(self, max_events: int | None = None) -> None:
        """Drain the queue one event at a time (optional event budget —
        a runaway-loop backstop)."""
        sim = self._bound()
        sim._guard_reentry()
        try:
            budget = max_events
            step = sim.step
            while not sim._stopped:
                if budget is not None:
                    if budget <= 0:
                        break
                    budget -= 1
                if not step():
                    break
        finally:
            sim._running = False
            sim._stopped = False

    def run_until(self, t: int) -> None:
        """Run every event with ``time <= t`` and advance ``now`` to ``t``.

        Ready events are drained in batches
        (:meth:`~repro.sim.events.EventQueue.pop_ready`) so the hot loop
        pays one heap touch per event instead of the peek+pop pair.
        Execution order is identical to the one-at-a-time loop: if a
        callback schedules an event that precedes the rest of the batch
        — same instant, lower priority value — the remainder is handed
        back to the heap and re-drained in order.

        When the round-template engine is active (scenario runs), the
        drain bound is held at the next round boundary; each time the
        queue is drained up to a boundary the engine gets a chance to
        record or bulk-replay whole rounds — in strict mode from one
        compiled template, in quasi-periodic mode from a bank of
        phase-normalized templates that may have been preloaded from
        the persistent store (see :mod:`repro.sim.round_template`).  A
        dormant or disengaged engine leaves this loop byte-for-byte
        identical to plain batched execution.
        """
        sim = self._bound()
        sim._guard_reentry()
        queue = sim._queue
        # Safe to hold across callbacks: EventQueue.compact()/clear()
        # mutate the heap list in place, never rebind it.
        heap = queue._heap
        pop_ready = queue.pop_ready
        executed = 0
        engine = sim.round_template.begin(t)
        bound = t
        if engine is not None:
            nb = engine.next_boundary
            if nb <= t:
                bound = nb - 1
            else:
                engine = None
        try:
            while not sim._stopped:
                batch = pop_ready(bound)
                if not batch:
                    if engine is None:
                        break
                    # Queue drained up to (excluding) the boundary: let
                    # the engine observe/replay.  Flush the executed
                    # count first — snapshots read events_executed.
                    sim.events_executed += executed
                    executed = 0
                    engine.on_boundary(t)
                    nb = engine.next_boundary
                    if not engine.engaged or nb > t:
                        engine = None
                        bound = t
                    else:
                        bound = nb - 1
                    continue
                i = 0
                n = len(batch)
                try:
                    while i < n:
                        ev = batch[i]
                        i += 1
                        if ev.cancelled:
                            continue
                        sim._now = ev.time
                        executed += 1
                        if sim._profiling:
                            sim._profiled_call(ev)
                        else:
                            ev.callback()
                        if sim._stopped:
                            break
                        if i < n and heap:
                            # A callback may have scheduled an event that
                            # precedes the batch remainder (same instant,
                            # lower priority value): fall back to the heap.
                            head = heap[0]
                            nxt = batch[i]
                            if head[0] < nxt.time or (
                                head[0] == nxt.time and head[1] < nxt.priority
                            ):
                                break
                finally:
                    # Hand unexecuted events back (stop(), preemption, or
                    # a raising callback) — none may be lost.
                    if i < n:
                        queue.requeue(batch[i:])
            if not sim._stopped and sim._now < t:
                sim._now = t
        finally:
            sim.events_executed += executed
            sim._running = False
            sim._stopped = False
