"""The runtime interface: pluggable notions of time for one kernel.

A :class:`Runtime` owns the *dispatch loop* of a
:class:`~repro.sim.kernel.Simulator`: how the next event is chosen is
fixed by the deterministic event queue, but *when* it executes — as fast
as Python allows, gated against the wall clock, or interleaved with an
asyncio event loop — is the runtime's business.  The kernel keeps
everything else (virtual time, scheduling, RNG streams, trace, metrics)
and delegates ``run``/``run_until``/``run_for`` to its bound runtime.

Contract
--------
* A runtime is bound to exactly one simulator (:meth:`bind`); the
  kernel binds its runtime at construction or via
  :meth:`~repro.sim.kernel.Simulator.set_runtime`.
* ``run_until(t)`` must execute every pending event with ``time <= t``
  in exact ``(time, priority, seq)`` order and leave ``now == t`` —
  virtual-time behaviour (and therefore the trace digest) is identical
  across runtimes; only wall-clock pacing differs.
* Target validation (``t < now`` raises
  :class:`~repro.errors.ConfigurationError`) happens uniformly in the
  kernel facade, before any runtime is consulted.
* ``supports_round_templates`` declares whether the round-template
  fast-forward engine may arm under this runtime.  Only the simulated
  runtime says yes: bulk-replaying rounds is meaningless when sim time
  is gated against an external clock.
* A runtime whose loop can be cancelled mid-flight (KeyboardInterrupt,
  asyncio task cancellation) must flush the simulator's trace sinks
  before propagating, mirroring the CLI exit-path guarantee.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel import Simulator

__all__ = ["Runtime"]


class Runtime:
    """Base class for kernel execution runtimes (see module docs)."""

    #: Short identifier used by the CLI/factory (``--runtime <name>``).
    name: str = "abstract"
    #: May :class:`~repro.sim.round_template.RoundTemplateEngine` arm?
    supports_round_templates: bool = False

    def __init__(self) -> None:
        self.sim: Simulator | None = None

    # ------------------------------------------------------------------
    def bind(self, sim: Simulator) -> None:
        """Attach to ``sim``; a runtime serves exactly one simulator."""
        if self.sim is not None and self.sim is not sim:
            raise ConfigurationError(
                f"runtime {self.name!r} is already bound to another simulator"
            )
        self.sim = sim

    def _bound(self) -> Simulator:
        if self.sim is None:
            raise ConfigurationError(
                f"runtime {self.name!r} is not bound to a simulator"
            )
        return self.sim

    # ------------------------------------------------------------------
    # the dispatch loop (implemented by subclasses)
    # ------------------------------------------------------------------
    def run(self, max_events: int | None = None) -> None:
        """Run until the event queue drains (or ``max_events`` executed)."""
        raise NotImplementedError

    def run_until(self, t: int) -> None:
        """Execute every event with ``time <= t``; leave ``now == t``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-ready runtime statistics (overridden by subclasses)."""
        return {"name": self.name}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"
