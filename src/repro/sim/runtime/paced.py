"""Paced real-time runtime: virtual time gated against the wall clock.

Every event keeps its exact virtual-time semantics — identical order,
identical trace digest — but execution is *paced*: before dispatching an
event at virtual instant ``T`` the runtime sleeps until the wall clock
reaches ``anchor + (T - anchor_sim) / pace``.  ``pace`` is the ratio of
virtual to wall time: ``1.0`` is real time, ``100.0`` advances 100
simulated seconds per wall second (the CI smoke setting), ``0.5`` runs
at half speed for demonstrations.

Deadline accounting
-------------------
A callback that overruns (or a loaded host) makes the next event late.
Lateness beyond ``miss_tolerance_ns`` is a **deadline miss**, counted in
the ``runtime.deadline_misses`` metric with the observed lag in the
``runtime.lag_ns`` histogram.  What happens next is the catch-up policy:

``slip`` (default)
    The wall anchor is re-based at the miss, so the whole schedule
    slips and one long stall counts once.  This is the ``tolerant``
    middleware behaviour: cadence matters, absolute wall alignment
    does not.
``hurry``
    The original anchor is kept: the runtime dispatches late events
    back-to-back (no sleeping) until it has caught up, counting every
    event that individually missed its deadline.  This is the strict
    interpretation: lateness is visible until the backlog clears.

Cancellation (KeyboardInterrupt) mid-run flushes the simulator's trace
sinks before propagating, mirroring the CLI exit-path guarantee, and is
counted in ``runtime.cancelled_runs``.

This module is sanctioned for wall-clock access in the determinism lint
(see :data:`repro.check.determinism.SANCTIONED_FILES`): pacing against
``perf_counter_ns`` is its entire purpose.  Virtual-time behaviour stays
deterministic; only the ``runtime.*`` metrics are wall-clock-tainted.
"""

from __future__ import annotations

from time import perf_counter_ns, sleep

from ...errors import ConfigurationError
from .base import Runtime

__all__ = ["PacedRealTimeRuntime", "CATCH_UP_POLICIES"]

#: Recognized catch-up policies (see module docs).
CATCH_UP_POLICIES = ("slip", "hurry")

#: Lateness below this threshold is scheduling noise, not a miss (1 ms).
DEFAULT_MISS_TOLERANCE_NS = 1_000_000


class PacedRealTimeRuntime(Runtime):
    """Dispatch events against the wall clock at a configurable ratio."""

    name = "realtime"
    supports_round_templates = False

    def __init__(self, pace: float = 1.0,
                 miss_tolerance_ns: int = DEFAULT_MISS_TOLERANCE_NS,
                 catch_up: str = "slip") -> None:
        if pace <= 0:
            raise ConfigurationError(f"pace must be positive, got {pace}")
        if catch_up not in CATCH_UP_POLICIES:
            raise ConfigurationError(
                f"unknown catch-up policy {catch_up!r} "
                f"(choose from {CATCH_UP_POLICIES})"
            )
        if miss_tolerance_ns < 0:
            raise ConfigurationError(
                f"miss tolerance must be >= 0, got {miss_tolerance_ns}"
            )
        super().__init__()
        self.pace = float(pace)
        self.miss_tolerance_ns = miss_tolerance_ns
        self.catch_up = catch_up
        # statistics ----------------------------------------------------
        self.deadline_misses = 0
        self.max_lag_ns = 0
        self.slept_ns = 0
        self.cancelled_runs = 0
        self._anchor_wall = 0
        self._anchor_sim = 0

    def bind(self, sim) -> None:
        super().bind(sim)
        m = sim.metrics
        self._m_misses = m.counter("runtime.deadline_misses")
        self._m_lag = m.histogram("runtime.lag_ns")
        self._m_cancelled = m.counter("runtime.cancelled_runs")

    # ------------------------------------------------------------------
    # pacing
    # ------------------------------------------------------------------
    def _pace_to(self, sim_t: int) -> None:
        """Sleep until the wall deadline for virtual instant ``sim_t``;
        account a deadline miss (and apply the catch-up policy) if the
        deadline has already passed by more than the tolerance."""
        deadline = self._anchor_wall + int((sim_t - self._anchor_sim) / self.pace)
        now = perf_counter_ns()
        if now < deadline:
            sleep((deadline - now) / 1e9)
            self.slept_ns += deadline - now
            return
        lag = now - deadline
        if lag > self.miss_tolerance_ns:
            self.deadline_misses += 1
            self._m_misses.inc()
            self._m_lag.observe(lag)
            if lag > self.max_lag_ns:
                self.max_lag_ns = lag
            if self.catch_up == "slip":
                # Re-base: future deadlines are measured from the missed
                # instant, so one long stall is one miss, not a cascade.
                self._anchor_wall = now
                self._anchor_sim = sim_t

    def _rebase(self) -> None:
        """Anchor wall time to the current virtual instant (run start)."""
        self._anchor_wall = perf_counter_ns()
        self._anchor_sim = self._bound()._now

    def _on_cancel(self) -> None:
        """Mid-flight cancellation: flush trace sinks, count, propagate."""
        self.cancelled_runs += 1
        self._m_cancelled.inc()
        sim = self.sim
        if sim is not None:
            sim.trace.close()

    # ------------------------------------------------------------------
    # the dispatch loop
    # ------------------------------------------------------------------
    def run_until(self, t: int) -> None:
        sim = self._bound()
        sim._guard_reentry()
        self._rebase()
        queue = sim._queue
        step = sim.step
        try:
            while not sim._stopped:
                nxt = queue.peek_time()
                if nxt is None or nxt > t:
                    break
                self._pace_to(nxt)
                step()
            if not sim._stopped and sim._now < t:
                # Idle tail: the horizon itself is a deadline too.
                self._pace_to(t)
                sim._now = t
        except KeyboardInterrupt:
            self._on_cancel()
            raise
        finally:
            sim._running = False
            sim._stopped = False

    def run(self, max_events: int | None = None) -> None:
        sim = self._bound()
        sim._guard_reentry()
        self._rebase()
        queue = sim._queue
        step = sim.step
        try:
            budget = max_events
            while not sim._stopped:
                if budget is not None:
                    if budget <= 0:
                        break
                    budget -= 1
                nxt = queue.peek_time()
                if nxt is None:
                    break
                self._pace_to(nxt)
                step()
        except KeyboardInterrupt:
            self._on_cancel()
            raise
        finally:
            sim._running = False
            sim._stopped = False

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "name": self.name,
            "pace": self.pace,
            "catch_up": self.catch_up,
            "miss_tolerance_ns": self.miss_tolerance_ns,
            "deadline_misses": self.deadline_misses,
            "max_lag_ns": self.max_lag_ns,
            "slept_ns": self.slept_ns,
            "cancelled_runs": self.cancelled_runs,
        }
